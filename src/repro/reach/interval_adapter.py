"""Interval labeling exposed through the reachability-index protocol.

SpaReach-INT plugs the paper's interval-based labeling into the
spatial-first pipeline; this adapter provides the uniform interface.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.labeling.construction import build_labeling
from repro.labeling.labeling import IntervalLabeling


class IntervalReach:
    """``GReach`` via the interval-based labeling of Section 3."""

    name = "interval"

    def __init__(
        self,
        dag: DiGraph,
        labeling: IntervalLabeling | None = None,
        mode: str = "subtree",
    ) -> None:
        self._labeling = labeling if labeling is not None else build_labeling(dag, mode=mode)

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling

    def reaches(self, source: int, target: int) -> bool:
        return self._labeling.greach(source, target)

    def size_bytes(self) -> int:
        return self._labeling.size_bytes()
