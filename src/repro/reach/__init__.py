"""Graph-reachability indexes.

``GReach(G, v, u)`` baselines used by the spatial-first methods:

* :class:`BfsReach` — no index, plain BFS (the correctness reference);
* :class:`TransitiveClosureReach` — full TC bitsets, O(1) queries
  (ground truth for tests, impractical at scale, as the paper notes);
* :class:`BflReach` — Bloom-Filter Labeling (Su et al. 2017), the
  reachability index behind SpaReach-BFL;
* :class:`IntervalReach` — adapter exposing the paper's interval-based
  labeling through the same protocol (SpaReach-INT);
* :class:`PllReach` — pruned 2-hop landmark labeling (Label-Only family);
* :class:`GrailReach` — GRAIL-style multi-tree interval labels with a
  pruned-DFS fallback (Label+G family);
* :class:`FelineReach` — two topological orders + pruned DFS, the second
  scheme the original GeoReach paper plugged into SpaReach;
* :class:`ChainCoverReach` — greedy chain decomposition with per-chain
  first-reach positions (the classic compressed-closure scheme).

All of them implement :class:`ReachabilityIndex` and are interchangeable
inside :class:`repro.core.SpaReach`.
"""

from repro.reach.base import ReachabilityIndex
from repro.reach.bfs import BfsReach
from repro.reach.transitive_closure import TransitiveClosureReach
from repro.reach.bfl import BflReach
from repro.reach.chain_cover import ChainCoverReach
from repro.reach.feline import FelineReach
from repro.reach.interval_adapter import IntervalReach
from repro.reach.pll import PllReach
from repro.reach.grail import GrailReach

__all__ = [
    "ReachabilityIndex",
    "BfsReach",
    "TransitiveClosureReach",
    "BflReach",
    "ChainCoverReach",
    "FelineReach",
    "IntervalReach",
    "PllReach",
    "GrailReach",
]
