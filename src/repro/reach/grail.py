"""GRAIL-style reachability: randomized multi-interval labels + pruned DFS.

A Label+G scheme from the paper's related-work section.  Each of ``k``
randomized DFS traversals assigns every vertex an interval
``[low_i(v), rank_i(v)]`` such that reachability *implies* containment
(``u`` reachable from ``v`` ⇒ ``L_i(u) ⊆ L_i(v)`` for every ``i``).  A
failed containment is a definite negative; otherwise a DFS pruned by the
same test decides.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph
from repro.graph.traversal import topological_order


class GrailReach:
    """GRAIL reachability over a DAG."""

    name = "grail"

    def __init__(self, dag: DiGraph, num_traversals: int = 3, seed: int = 11) -> None:
        if num_traversals < 1:
            raise ValueError("need at least one traversal")
        self._graph = dag
        self._k = num_traversals
        n = dag.num_vertices
        rng = random.Random(seed)
        topo = topological_order(dag)

        self._rank: list[list[int]] = []
        self._low: list[list[int]] = []
        for _ in range(num_traversals):
            rank = self._random_postorder(dag, rng)
            # low(v) = min over *all* successors (not just tree children),
            # computed in reverse topological order; this is what makes
            # containment a necessary condition for reachability.
            low = rank[:]
            for v in reversed(topo):
                lo = rank[v]
                for u in dag.successors(v):
                    if low[u] < lo:
                        lo = low[u]
                low[v] = lo
            self._rank.append(rank)
            self._low.append(low)

    @staticmethod
    def _random_postorder(dag: DiGraph, rng: random.Random) -> list[int]:
        """Assign 1-based post-order ranks from a DFS with shuffled children."""
        n = dag.num_vertices
        rank = [0] * n
        visited = [False] * n
        counter = 0
        roots = [v for v in dag.vertices() if dag.in_degree(v) == 0]
        rng.shuffle(roots)
        all_roots = roots + [v for v in dag.vertices() if dag.in_degree(v) != 0]
        for root in all_roots:
            if visited[root]:
                continue
            visited[root] = True
            stack: list[tuple[int, list[int], int]] = []
            children = list(dag.successors(root))
            rng.shuffle(children)
            stack.append((root, children, 0))
            while stack:
                v, succ, idx = stack[-1]
                advanced = False
                while idx < len(succ):
                    u = succ[idx]
                    idx += 1
                    if not visited[u]:
                        visited[u] = True
                        stack[-1] = (v, succ, idx)
                        grand = list(dag.successors(u))
                        rng.shuffle(grand)
                        stack.append((u, grand, 0))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    counter += 1
                    rank[v] = counter
        return rank

    # ------------------------------------------------------------------
    def _contained(self, source: int, target: int) -> bool:
        """True iff target's intervals nest inside source's in all traversals."""
        for i in range(self._k):
            if not (
                self._low[i][source] <= self._low[i][target]
                and self._rank[i][target] <= self._rank[i][source]
            ):
                return False
        return True

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if not self._contained(source, target):
            return False
        # Containment can be a false positive; confirm with a pruned DFS.
        visited = set()
        stack = [source]
        while stack:
            v = stack.pop()
            for u in self._graph.successors(v):
                if u == target:
                    return True
                if u in visited:
                    continue
                visited.add(u)
                if self._contained(u, target):
                    stack.append(u)
        return False

    def size_bytes(self) -> int:
        """Two 4-byte rank values per traversal per vertex."""
        return self._graph.num_vertices * self._k * 8
