"""The reachability-index protocol."""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class ReachabilityIndex(Protocol):
    """Answers ``GReach(G, v, u)`` queries over a fixed DAG.

    Implementations are constructed from a :class:`repro.graph.DiGraph`
    (which must be acyclic) and expose:

    * :meth:`reaches` — the reachability test itself;
    * :meth:`size_bytes` — analytic index footprint for Table 4;
    * ``name`` — short identifier used in benchmark output.
    """

    name: str

    def reaches(self, source: int, target: int) -> bool:
        """Return True iff the DAG contains a path ``source -> target``."""
        ...

    def size_bytes(self) -> int:
        """Return the analytic size of the index structures in bytes."""
        ...
