"""Full transitive closure as per-vertex bitsets."""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.traversal import topological_order


class TransitiveClosureReach:
    """Materialized transitive closure with O(1) queries.

    Bitsets are Python integers (vertex ``u`` reachable from ``v`` iff bit
    ``u`` of ``closure[v]`` is set), computed in one reverse-topological
    sweep.  Quadratic space — exactly the impractical-but-exact baseline
    the paper dismisses, and our tests' ground truth.
    """

    name = "tc"

    def __init__(self, dag: DiGraph) -> None:
        n = dag.num_vertices
        closure = [0] * n
        for v in reversed(topological_order(dag)):
            bits = 1 << v
            for u in dag.successors(v):
                bits |= closure[u]
            closure[v] = bits
        self._closure = closure

    def reaches(self, source: int, target: int) -> bool:
        return (self._closure[source] >> target) & 1 == 1

    def descendants(self, source: int) -> list[int]:
        """Return all vertices reachable from ``source`` (incl. itself)."""
        bits = self._closure[source]
        out: list[int] = []
        v = 0
        while bits:
            if bits & 1:
                out.append(v)
            bits >>= 1
            v += 1
        return out

    def num_descendants(self, source: int) -> int:
        return self._closure[source].bit_count()

    def size_bytes(self) -> int:
        n = len(self._closure)
        return n * ((n + 7) // 8)
