"""Index-free reachability via BFS."""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.traversal import path_exists


class BfsReach:
    """Answers every query by a fresh BFS; zero offline cost.

    The "no offline cost, O(|V| + |E|) per query" extreme of the
    space/time spectrum discussed in the paper's related-work section, and
    the correctness oracle used by the test suite.
    """

    name = "bfs"

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def reaches(self, source: int, target: int) -> bool:
        return path_exists(self._graph, source, target)

    def size_bytes(self) -> int:
        return 0
