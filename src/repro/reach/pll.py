"""Pruned landmark labeling (2-hop cover) for reachability.

A Label-Only scheme from the family the paper surveys (TF-Label, TOL,
BLL all build on this idea): every vertex stores two sorted landmark
lists and ``u -> v`` holds iff the lists share a landmark.  Landmarks are
processed in descending degree order with pruned BFS, which keeps labels
small on social-network-like inputs.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph
from repro.graph.traversal import is_acyclic


class PllReach:
    """Pruned 2-hop landmark labeling over a DAG.

    ``l ∈ out_labels[v]`` means ``v`` reaches landmark ``l``;
    ``l ∈ in_labels[v]`` means landmark ``l`` reaches ``v``.  Both lists
    always contain the vertex itself, so the intersection test alone is
    complete once every vertex has been processed as a landmark.
    """

    name = "pll"

    def __init__(self, dag: DiGraph) -> None:
        if not is_acyclic(dag):
            raise ValueError("PLL labeling requires a DAG")
        n = dag.num_vertices
        # Rank vertices by total degree, densest first: high-degree hubs
        # cover the most paths, which is what makes pruning effective.
        rank_order = sorted(
            dag.vertices(),
            key=lambda v: -(dag.out_degree(v) + dag.in_degree(v)),
        )
        rank = [0] * n
        for r, v in enumerate(rank_order):
            rank[v] = r

        # Labels store landmark *ranks* so the intersection test can walk
        # two sorted lists.
        self._in_labels: list[list[int]] = [[] for _ in range(n)]
        self._out_labels: list[list[int]] = [[] for _ in range(n)]
        in_labels, out_labels = self._in_labels, self._out_labels

        def covered(u: int, v: int) -> bool:
            """2-hop test with the labels built so far (u -> v?)."""
            a, b = out_labels[u], in_labels[v]
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i] == b[j]:
                    return True
                if a[i] < b[j]:
                    i += 1
                else:
                    j += 1
            return False

        for landmark in rank_order:
            lrank = rank[landmark]
            # Forward pruned BFS: landmark reaches w => lrank joins in(w).
            queue: deque[int] = deque([landmark])
            seen = {landmark}
            while queue:
                w = queue.popleft()
                if w != landmark and covered(landmark, w):
                    continue  # already answerable; prune the subtree
                in_labels[w].append(lrank)
                for nxt in dag.successors(w):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            # Backward pruned BFS: w reaches landmark => lrank joins out(w).
            queue = deque([landmark])
            seen = {landmark}
            while queue:
                w = queue.popleft()
                if w != landmark and covered(w, landmark):
                    continue
                out_labels[w].append(lrank)
                for nxt in dag.predecessors(w):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        a, b = self._out_labels[source], self._in_labels[target]
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] == b[j]:
                return True
            if a[i] < b[j]:
                i += 1
            else:
                j += 1
        return False

    def num_labels(self) -> int:
        """Total landmark entries across both directions."""
        return sum(len(ls) for ls in self._in_labels) + sum(
            len(ls) for ls in self._out_labels
        )

    def size_bytes(self) -> int:
        """4 bytes per landmark entry plus two 8-byte list headers."""
        n = len(self._in_labels)
        return self.num_labels() * 4 + n * 16
