"""Feline reachability index (Veloso et al.).

The second reachability scheme Sarwat & Sun plugged into SpaReach
("SpaReach-Feline" in the paper's Section 2.2.1).  Feline assigns every
vertex a point in a two-dimensional *dominance* space built from two
topological orders:

* ``x(v)`` — position in a plain topological order;
* ``y(v)`` — position in a second topological order taken with reversed
  tie-breaking, so unrelated vertices tend to disagree in one coordinate.

If ``u`` is reachable from ``v`` then ``x(v) < x(u)`` and ``y(v) < y(u)``
(dominance is a *necessary* condition).  A failed dominance test is a
definite negative; an inconclusive one falls back to a DFS pruned by the
same test — the Label+G recipe.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph


class FelineReach:
    """Feline: two topological orders + pruned DFS fallback."""

    name = "feline"

    def __init__(self, dag: DiGraph) -> None:
        self._graph = dag
        self._x = self._topo_positions(dag, prefer_low_id=True)
        self._y = self._topo_positions(dag, prefer_low_id=False)

    @staticmethod
    def _topo_positions(dag: DiGraph, prefer_low_id: bool) -> list[int]:
        """Kahn's algorithm with an id-ordered frontier.

        ``prefer_low_id`` picks which end of the frontier is consumed,
        producing two orders that differ exactly where the DAG leaves
        freedom — the heart of Feline's pruning power.

        Raises:
            ValueError: if the graph has a cycle.
        """
        import heapq

        n = dag.num_vertices
        in_deg = [dag.in_degree(v) for v in dag.vertices()]
        heap = [
            (v if prefer_low_id else -v)
            for v in dag.vertices()
            if in_deg[v] == 0
        ]
        heapq.heapify(heap)
        position = [0] * n
        seen = 0
        while heap:
            key = heapq.heappop(heap)
            v = key if prefer_low_id else -key
            position[v] = seen
            seen += 1
            for u in dag.successors(v):
                in_deg[u] -= 1
                if in_deg[u] == 0:
                    heapq.heappush(heap, (u if prefer_low_id else -u))
        if seen != n:
            raise ValueError("Feline requires a DAG")
        return position

    # ------------------------------------------------------------------
    def _dominates(self, source: int, target: int) -> bool:
        """Necessary condition: source precedes target in both orders."""
        return (
            self._x[source] <= self._x[target]
            and self._y[source] <= self._y[target]
        )

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if not self._dominates(source, target):
            return False
        # Dominance can be a false positive; confirm with a pruned DFS.
        visited = set()
        stack = [source]
        while stack:
            v = stack.pop()
            for u in self._graph.successors(v):
                if u == target:
                    return True
                if u in visited:
                    continue
                visited.add(u)
                if self._dominates(u, target):
                    stack.append(u)
        return False

    def size_bytes(self) -> int:
        """Two 4-byte coordinates per vertex."""
        return self._graph.num_vertices * 8
