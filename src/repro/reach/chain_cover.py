"""Chain-cover reachability (Jagadish-style compressed closure).

The oldest Label-Only family in the paper's related-work survey:
"compress TC by a minimal number of pair-wise disjoint vertex chains".
The DAG's vertices are partitioned into chains (paths); every vertex then
stores, per chain, the *highest* (earliest-position) vertex of that chain
it can reach.  Reachability is two array lookups:

``u`` reaches ``v``  iff  ``first_reach[u][chain(v)] <= position(v)``.

Index size is O(|V| * #chains), so quality hinges on a small chain cover;
we use the classic greedy decomposition along the topological order,
which is near-minimal on the shallow, wide DAGs geosocial condensations
produce.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.traversal import topological_order

_UNREACHABLE = 1 << 30


class ChainCoverReach:
    """Chain-cover reachability over a DAG."""

    name = "chain"

    def __init__(self, dag: DiGraph) -> None:
        self._graph = dag
        n = dag.num_vertices
        order = topological_order(dag)  # raises on cycles

        # Greedy chain decomposition: walk the topological order; extend
        # the chain ending at some predecessor when possible, else open a
        # new chain.
        chain_of = [-1] * n
        pos_in_chain = [0] * n
        chain_tail: list[int] = []  # chain id -> current tail vertex
        for v in order:
            extended = False
            for p in dag.predecessors(v):
                c = chain_of[p]
                if c >= 0 and chain_tail[c] == p:
                    chain_of[v] = c
                    pos_in_chain[v] = pos_in_chain[p] + 1
                    chain_tail[c] = v
                    extended = True
                    break
            if not extended:
                chain_of[v] = len(chain_tail)
                pos_in_chain[v] = 0
                chain_tail.append(v)
        num_chains = len(chain_tail)

        # first_reach[v][c] = smallest position in chain c reachable from
        # v (including v itself), computed in reverse topological order.
        first_reach = [None] * n
        for v in reversed(order):
            row = [_UNREACHABLE] * num_chains
            row[chain_of[v]] = pos_in_chain[v]
            for u in dag.successors(v):
                child = first_reach[u]
                for c in range(num_chains):
                    if child[c] < row[c]:
                        row[c] = child[c]
            first_reach[v] = row

        self._chain_of = chain_of
        self._pos = pos_in_chain
        self._first_reach = first_reach
        self._num_chains = num_chains

    # ------------------------------------------------------------------
    def reaches(self, source: int, target: int) -> bool:
        return (
            self._first_reach[source][self._chain_of[target]]
            <= self._pos[target]
        )

    @property
    def num_chains(self) -> int:
        return self._num_chains

    def size_bytes(self) -> int:
        """One 4-byte position per (vertex, chain) plus chain ids."""
        n = self._graph.num_vertices
        return n * self._num_chains * 4 + n * 8
