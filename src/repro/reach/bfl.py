"""Bloom-Filter Labeling (BFL) reachability index.

Reimplementation of the scheme the paper uses inside SpaReach-BFL
(Su et al., "Reachability querying: can it be even faster?").  Each vertex
carries:

* a DFS subtree interval ``[index(v), post(v)]`` — containment of the
  target's post-order number gives a definite positive;
* an out-filter: an ``s``-bit Bloom set over the hashes of all vertices
  reachable from ``v``;
* an in-filter: the same over all vertices that reach ``v``.

``u -> v`` requires ``out(v) ⊆ out(u)`` and ``in(u) ⊆ in(v)``; a violated
subset test is a definite negative.  Inconclusive queries fall back to a
DFS guided (pruned) by the same tests — the Label+G behaviour of BFL.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph
from repro.graph.traversal import dfs_forest, topological_order


class BflReach:
    """BFL reachability over a DAG."""

    name = "bfl"

    def __init__(self, dag: DiGraph, filter_bits: int = 256, seed: int = 7) -> None:
        if filter_bits < 8:
            raise ValueError("filter must have at least 8 bits")
        self._graph = dag
        self._bits = filter_bits
        n = dag.num_vertices

        forest = dfs_forest(dag)
        self._post = forest.post
        self._min_post = forest.min_post

        rng = random.Random(seed)
        hashes = [1 << rng.randrange(filter_bits) for _ in range(n)]

        order = topological_order(dag)
        out_filter = [0] * n
        for v in reversed(order):
            bits = hashes[v]
            for u in dag.successors(v):
                bits |= out_filter[u]
            out_filter[v] = bits
        in_filter = [0] * n
        for v in order:
            bits = hashes[v]
            for u in dag.predecessors(v):
                bits |= in_filter[u]
            in_filter[v] = bits
        self._out = out_filter
        self._in = in_filter

    # ------------------------------------------------------------------
    # Persistence hooks (used by repro.store)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Return the index's computed state as plain Python values.

        The DFS intervals and the two filter columns fully determine
        query behaviour; the DAG itself is not included (it is persisted
        separately and passed back to :meth:`from_state`).
        """
        return {
            "filter_bits": self._bits,
            "post": list(self._post),
            "min_post": list(self._min_post),
            "out_filters": list(self._out),
            "in_filters": list(self._in),
        }

    @classmethod
    def from_state(
        cls,
        dag: DiGraph,
        *,
        filter_bits: int,
        post: list[int],
        min_post: list[int],
        out_filters: list[int],
        in_filters: list[int],
    ) -> "BflReach":
        """Rebuild an index from :meth:`state` values without any DFS.

        ``dag`` must be the graph the state was computed over — the
        pruned-DFS fallback walks its adjacency at query time.
        """
        n = dag.num_vertices
        if not (
            len(post) == len(min_post) == len(out_filters)
            == len(in_filters) == n
        ):
            raise ValueError("BFL state arrays disagree with the DAG size")
        if filter_bits < 8:
            raise ValueError("filter must have at least 8 bits")
        self = cls.__new__(cls)
        self._graph = dag
        self._bits = filter_bits
        self._post = post
        self._min_post = min_post
        self._out = out_filters
        self._in = in_filters
        return self

    # ------------------------------------------------------------------
    def _definitely_reaches(self, source: int, target: int) -> bool:
        """Subtree-interval test: target inside source's DFS subtree."""
        return self._min_post[source] <= self._post[target] <= self._post[source]

    def _filters_rule_out(self, source: int, target: int) -> bool:
        """Return True iff the Bloom subset conditions refute the path."""
        if self._out[target] & ~self._out[source]:
            return True
        if self._in[source] & ~self._in[target]:
            return True
        return False

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if self._definitely_reaches(source, target):
            return True
        if self._filters_rule_out(source, target):
            return False
        # Pruned DFS fallback: only descend into vertices whose filters
        # could still lead to the target.
        target_out = self._out[target]
        visited = set()
        stack = [source]
        while stack:
            v = stack.pop()
            for u in self._graph.successors(v):
                if u == target:
                    return True
                if u in visited:
                    continue
                visited.add(u)
                if self._definitely_reaches(u, target):
                    return True
                if target_out & ~self._out[u]:
                    continue
                if self._in[u] & ~self._in[target]:
                    continue
                stack.append(u)
        return False

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Two s-bit filters plus two 4-byte interval endpoints per vertex."""
        n = self._graph.num_vertices
        return n * (2 * self._bits // 8 + 8)
