"""Point-probe kernels over :class:`~repro.geosocial.columnar.SpatialColumns`.

These batch the ``Rect.any_contained`` / ``Rect.first_contained`` scans
that back SpaReach-MBR / 3DReach-MBR candidate verification
(``component_hits_region``) and GeoReach's member-point checks.  The
MBR short-circuits stay scalar (they are O(1)); only the coordinate
scan itself is dispatched to the backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.geometry import Rect
from repro.geosocial.columnar import SpatialColumns
from repro.kernels.backend import KernelBase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geosocial.scc_handling import CondensedNetwork


class _PointKernelBase(KernelBase):
    __slots__ = ("_columns",)

    def __init__(self, backend: str, columns: SpatialColumns) -> None:
        super().__init__("points", backend)
        self._columns = columns

    @property
    def columns(self) -> SpatialColumns:
        return self._columns

    def component_hits_region(
        self, network: "CondensedNetwork", component: int, region: Rect
    ) -> bool:
        """Backend-routed twin of ``CondensedNetwork.component_hits_region``."""
        mbr = network.mbr_of(component)
        if mbr is None or not region.intersects(mbr):
            return False
        if region.contains_rect(mbr):
            return True
        lo, hi = self._columns.slice_of(component)
        return self.any_contained(region, lo, hi)

    def any_contained(self, region: Rect, lo: int, hi: int) -> bool:
        raise NotImplementedError

    def first_contained(self, region: Rect, lo: int, hi: int) -> int:
        raise NotImplementedError


class PythonPointKernel(_PointKernelBase):
    """Oracle twin: the pure-python ``Rect`` scans, unchanged."""

    __slots__ = ()

    def __init__(self, columns: SpatialColumns) -> None:
        super().__init__("python", columns)

    def any_contained(self, region: Rect, lo: int, hi: int) -> bool:
        self._count()
        return region.any_contained(self._columns.xs, self._columns.ys, lo, hi)

    def first_contained(self, region: Rect, lo: int, hi: int) -> int:
        self._count()
        return region.first_contained(self._columns.xs, self._columns.ys, lo, hi)


class NumpyPointKernel(_PointKernelBase):
    __slots__ = ("_np", "_xs", "_ys")

    def __init__(self, columns: SpatialColumns) -> None:
        super().__init__("numpy", columns)
        import numpy as np

        self._np = np
        self._xs = np.frombuffer(columns.xs, dtype=np.float64)
        self._ys = np.frombuffer(columns.ys, dtype=np.float64)

    def _mask(self, region: Rect, lo: int, hi: int):
        xs = self._xs[lo:hi]
        ys = self._ys[lo:hi]
        return (
            (xs >= region.xlo)
            & (xs <= region.xhi)
            & (ys >= region.ylo)
            & (ys <= region.yhi)
        )

    def any_contained(self, region: Rect, lo: int, hi: int) -> bool:
        self._count()
        if hi <= lo:
            return False
        return bool(self._mask(region, lo, hi).any())

    def first_contained(self, region: Rect, lo: int, hi: int) -> int:
        self._count()
        if hi <= lo:
            return -1
        hits = self._np.flatnonzero(self._mask(region, lo, hi))
        if hits.size == 0:
            return -1
        return int(hits[0]) + lo


def make_point_kernel(backend: str, columns: SpatialColumns) -> _PointKernelBase:
    if backend == "numpy":
        return NumpyPointKernel(columns)
    return PythonPointKernel(columns)
