"""Kernel backend selection and the shared instrumentation base.

Resolution order (first match wins):

1. An explicit ``kernels="numpy"|"python"`` argument.
2. The ``REPRO_KERNELS`` environment variable.
3. ``numpy`` when the module imports, ``python`` otherwise.

Unknown values raise :class:`ValueError` naming the accepted backends;
explicitly requesting ``numpy`` on an interpreter without it is also an
error (the implicit default silently falls back instead).
"""

from __future__ import annotations

import os

from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled

#: Accepted values for the ``kernels=`` knob, in fallback order.
BACKENDS = ("python", "numpy")

_ENV_VAR = "REPRO_KERNELS"

_numpy_ok: bool | None = None


def numpy_available() -> bool:
    """True when ``import numpy`` succeeds (checked once per process)."""
    global _numpy_ok
    if _numpy_ok is None:
        try:
            import numpy  # noqa: F401

            _numpy_ok = True
        except Exception:  # pragma: no cover - numpy-less interpreter
            _numpy_ok = False
    return _numpy_ok


def _validated(value: object, source: str) -> str:
    backend = str(value).strip().lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {value!r} (from {source}): "
            f"expected one of {', '.join(BACKENDS)}"
        )
    if backend == "numpy" and not numpy_available():
        raise ValueError(
            f"kernel backend 'numpy' requested via {source} "
            "but numpy is not importable"
        )
    return backend


def default_backend() -> str:
    """The backend used when no explicit ``kernels=`` is given."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return _validated(env, source=f"${_ENV_VAR}")
    return "numpy" if numpy_available() else "python"


def resolve_backend(kernels: str | None) -> str:
    """Resolve the ``kernels=`` knob to a concrete backend name.

    Also flips the ``repro_kernel_backend`` gauge for the resolved
    backend so ``/metrics`` shows which backends have served traffic.
    """
    if kernels is None:
        backend = default_backend()
    else:
        backend = _validated(kernels, source="kernels=")
    if _obs_enabled():
        _inst.KERNEL_BACKEND.labels(backend=backend).set(1)
    return backend


class KernelBase:
    """Shared bookkeeping: backend name + per-kernel invocation counter."""

    __slots__ = ("backend", "_invocations")

    def __init__(self, kernel: str, backend: str) -> None:
        self.backend = backend
        self._invocations = _inst.KERNEL_INVOCATIONS.labels(
            kernel=kernel, backend=backend
        )

    def _count(self) -> None:
        if _obs_enabled():
            self._invocations.inc()
