"""Batched BFL reachability checks over :class:`~repro.reach.bfl.BflReach`.

SpaReach's candidate loop asks "does the source reach *any* of these
components?".  The numpy kernel answers most candidates without touching
python: the post-order interval test (definitely-reachable) and the
Bloom-filter set-containment rule-out are both vectorized over the whole
candidate batch; only the survivors — candidates neither proven nor
ruled out — fall back to the pruned-DFS ``BflReach.reaches``, exactly
like the scalar path.  Answers are therefore identical to the python
twin by construction.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.backend import KernelBase
from repro.reach.bfl import BflReach


class PythonBflKernel(KernelBase):
    """Oracle twin: the scalar ``BflReach.reaches`` loop, unchanged."""

    __slots__ = ("_reach",)

    def __init__(self, reach: BflReach) -> None:
        super().__init__("bfl", "python")
        self._reach = reach

    @property
    def reach(self) -> BflReach:
        return self._reach

    def any_reaches(self, source: int, targets: Sequence[int]) -> bool:
        self._count()
        reaches = self._reach.reaches
        return any(reaches(source, target) for target in targets)

    def reaches_many(self, source: int, targets: Sequence[int]) -> list[bool]:
        self._count()
        reaches = self._reach.reaches
        return [reaches(source, target) for target in targets]


class NumpyBflKernel(KernelBase):
    """Vectorized interval + filter tests; DFS fallback for survivors."""

    __slots__ = ("_reach", "_np", "_post", "_min_post", "_out", "_in")

    def __init__(self, reach: BflReach) -> None:
        super().__init__("bfl", "numpy")
        import numpy as np

        self._reach = reach
        self._np = np
        state = reach.state()
        self._post = np.asarray(state["post"], dtype=np.int64)
        self._min_post = np.asarray(state["min_post"], dtype=np.int64)
        words = (int(state["filter_bits"]) + 63) // 64
        self._out = self._pack(state["out_filters"], words)
        self._in = self._pack(state["in_filters"], words)

    @property
    def reach(self) -> BflReach:
        return self._reach

    def _pack(self, filters: Sequence[int], words: int):
        np = self._np
        mask = (1 << 64) - 1
        packed = np.empty((len(filters), words), dtype=np.uint64)
        for i, value in enumerate(filters):
            for w in range(words):
                packed[i, w] = (value >> (64 * w)) & mask
        return packed

    def _survivors(self, source: int, targets):
        """(definitely_reaches_mask, undecided_target_array)."""
        np = self._np
        posts = self._post[targets]
        definite = (posts >= self._min_post[source]) & (posts <= self._post[source])
        ruled_out = np.bitwise_and(self._out[targets], ~self._out[source]).any(
            axis=1
        ) | np.bitwise_and(self._in[source], ~self._in[targets]).any(axis=1)
        return definite, targets[~definite & ~ruled_out]

    def any_reaches(self, source: int, targets: Sequence[int]) -> bool:
        self._count()
        np = self._np
        batch = np.asarray(targets, dtype=np.int64)
        if batch.size == 0:
            return False
        definite, undecided = self._survivors(source, batch)
        if bool(definite.any()):
            return True
        reaches = self._reach.reaches
        return any(reaches(source, int(target)) for target in undecided)

    def reaches_many(self, source: int, targets: Sequence[int]) -> list[bool]:
        self._count()
        np = self._np
        batch = np.asarray(targets, dtype=np.int64)
        if batch.size == 0:
            return []
        definite, undecided = self._survivors(source, batch)
        answers = definite.copy()
        if undecided.size:
            reaches = self._reach.reaches
            resolved = {
                int(target): reaches(source, int(target)) for target in undecided
            }
            for i, target in enumerate(batch):
                if not answers[i] and int(target) in resolved:
                    answers[i] = resolved[int(target)]
        return [bool(a) for a in answers]


def make_bfl_kernel(backend: str, reach: BflReach):
    if backend == "numpy":
        return NumpyBflKernel(reach)
    return PythonBflKernel(reach)
