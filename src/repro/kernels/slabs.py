"""Slab-scan kernels over :class:`~repro.geosocial.columnar.PostOrderSlabs`.

The slab kernel answers the question every interval-labeled method
reduces to: *does some member point inside a contiguous post-order slot
range fall in the query rectangle?*  It serves

* SocReach's descendant scans (``any_in_flat`` / ``first_in_flat`` over
  the flat range a label covers), and
* the 3DReach / engine cuboid sweep (``any_in_zrange``): a cuboid
  ``(region.xlo, region.ylo, lo, region.xhi, region.yhi, hi)`` contains
  a point iff the point lies in ``region`` and its slot falls in the
  slot range of ``[lo, hi]`` — the same slot arithmetic SocReach uses.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.geosocial.columnar import PostOrderSlabs
from repro.kernels.backend import KernelBase


class _SlabKernelBase(KernelBase):
    """Slot/flat-range arithmetic shared by both backends."""

    __slots__ = ("_slabs", "_stride", "num_slots")

    def __init__(self, backend: str, slabs: PostOrderSlabs, stride: int) -> None:
        super().__init__("slab", backend)
        self._slabs = slabs
        self._stride = int(stride)
        self.num_slots = slabs.num_slots

    @property
    def slabs(self) -> PostOrderSlabs:
        return self._slabs

    @property
    def stride(self) -> int:
        return self._stride

    def slot_range(self, lo: int, hi: int) -> tuple[int, int]:
        """1-based inclusive slot range fully covered by post range [lo, hi].

        ``end < start`` means the range covers no whole slot.
        """
        stride = self._stride
        start = (lo + stride - 1) // stride
        end = min(hi // stride, self.num_slots)
        return max(start, 1), end

    def flat_range(self, start: int, end: int) -> tuple[int, int]:
        """Flat coordinate range owned by inclusive 1-based slots [start, end]."""
        offsets = self._slabs.offsets
        return offsets[start - 1], offsets[end]

    def any_in_zrange(self, region: Rect, lo: int, hi: int) -> bool:
        """True iff the cuboid (region x [lo, hi]) contains a member point."""
        start, end = self.slot_range(lo, hi)
        if end < start:
            return False
        a, b = self.flat_range(start, end)
        return self.any_in_flat(region, a, b)

    def any_in_flat(self, region: Rect, lo: int, hi: int) -> bool:
        raise NotImplementedError

    def first_in_flat(self, region: Rect, lo: int, hi: int) -> int:
        raise NotImplementedError


class PythonSlabKernel(_SlabKernelBase):
    """Oracle twin: delegates to the pure-python ``Rect`` scans."""

    __slots__ = ()

    def __init__(self, slabs: PostOrderSlabs, stride: int) -> None:
        super().__init__("python", slabs, stride)

    def any_in_flat(self, region: Rect, lo: int, hi: int) -> bool:
        self._count()
        return region.any_contained(self._slabs.xs, self._slabs.ys, lo, hi)

    def first_in_flat(self, region: Rect, lo: int, hi: int) -> int:
        self._count()
        return region.first_contained(self._slabs.xs, self._slabs.ys, lo, hi)


class NumpySlabKernel(_SlabKernelBase):
    """Vectorized scans over zero-copy views of the slab columns."""

    __slots__ = ("_np", "_xs", "_ys")

    def __init__(self, slabs: PostOrderSlabs, stride: int) -> None:
        super().__init__("numpy", slabs, stride)
        import numpy as np

        self._np = np
        self._xs = np.frombuffer(slabs.xs, dtype=np.float64)
        self._ys = np.frombuffer(slabs.ys, dtype=np.float64)

    def _mask(self, region: Rect, lo: int, hi: int):
        xs = self._xs[lo:hi]
        ys = self._ys[lo:hi]
        return (
            (xs >= region.xlo)
            & (xs <= region.xhi)
            & (ys >= region.ylo)
            & (ys <= region.yhi)
        )

    def any_in_flat(self, region: Rect, lo: int, hi: int) -> bool:
        self._count()
        if hi <= lo:
            return False
        return bool(self._mask(region, lo, hi).any())

    def first_in_flat(self, region: Rect, lo: int, hi: int) -> int:
        self._count()
        if hi <= lo:
            return -1
        hits = self._np.flatnonzero(self._mask(region, lo, hi))
        if hits.size == 0:
            return -1
        return int(hits[0]) + lo


def make_slab_kernel(
    backend: str, slabs: PostOrderSlabs, stride: int
) -> _SlabKernelBase:
    if backend == "numpy":
        return NumpySlabKernel(slabs, stride)
    return PythonSlabKernel(slabs, stride)
