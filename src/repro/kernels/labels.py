"""Batched interval-label coverage tests over an ``IntervalLabeling``.

``GeosocialQueryEngine.reaches`` answers "does super-vertex ``su``
reach ``sv``?" as ``su == sv or intervals_cover(labels[su],
post[sv])``.  The labels of one source are sorted, disjoint intervals,
so a whole batch of targets resolves with one ``searchsorted`` — this
backs ``reaches_many`` (engine, database, and the sharded boundary
graph's exit-set probes).
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.backend import KernelBase
from repro.labeling import IntervalLabeling


class PythonLabelKernel(KernelBase):
    """Oracle twin: scalar ``greach`` probes, unchanged."""

    __slots__ = ("_labeling",)

    def __init__(self, labeling: IntervalLabeling) -> None:
        super().__init__("labels", "python")
        self._labeling = labeling

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling

    def covers_many(
        self, source_super: int, target_supers: Sequence[int]
    ) -> list[bool]:
        self._count()
        labeling = self._labeling
        return [
            target == source_super or labeling.greach(source_super, target)
            for target in target_supers
        ]


class NumpyLabelKernel(KernelBase):
    __slots__ = ("_labeling", "_np", "_post")

    def __init__(self, labeling: IntervalLabeling) -> None:
        super().__init__("labels", "numpy")
        import numpy as np

        self._labeling = labeling
        self._np = np
        self._post = np.asarray(
            [labeling.post_of(v) for v in range(labeling.num_vertices)],
            dtype=np.int64,
        )

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling

    def covers_many(
        self, source_super: int, target_supers: Sequence[int]
    ) -> list[bool]:
        self._count()
        np = self._np
        targets = np.asarray(target_supers, dtype=np.int64)
        if targets.size == 0:
            return []
        same = targets == source_super
        labels = self._labeling.labels_of(source_super)
        if not labels:
            return [bool(s) for s in same]
        los = np.asarray([lo for lo, _ in labels], dtype=np.int64)
        his = np.asarray([hi for _, hi in labels], dtype=np.int64)
        posts = self._post[targets]
        # Labels are sorted and disjoint: the only interval that can
        # cover ``post`` is the last one starting at or before it.
        idx = np.searchsorted(los, posts, side="right") - 1
        covered = (idx >= 0) & (posts <= his[idx.clip(0)])
        return [bool(c) for c in (covered | same)]


def make_label_kernel(backend: str, labeling: IntervalLabeling):
    if backend == "numpy":
        return NumpyLabelKernel(labeling)
    return PythonLabelKernel(labeling)
