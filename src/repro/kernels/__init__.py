"""Vectorized twins of the hot pure-python inner loops.

The columnar core (CSR columns, post-order slabs, flattened label
arrays) is exactly the shape that vectorizes: every method bottoms out
in a handful of scans — slab interval scans, ``Rect`` containment
probes over point columns, cuboid containment sweeps, BFL
set-containment filter checks, and interval-label coverage tests.
This package provides two interchangeable implementations of each:

* ``python`` — thin wrappers over the existing pure-python scans.
  This is the behavioral oracle: it delegates to the exact same code
  (``Rect.any_contained``, ``BflReach.reaches``,
  ``intervals_cover``, ...) the methods ran before the kernel layer
  existed.
* ``numpy`` — batched array kernels over zero-copy views of the same
  columnar buffers.  Answers are bit-identical to the python twins;
  only the evaluation strategy (and therefore some *work counters*)
  differs.

The backend is selected per :class:`~repro.pipeline.BuildContext` /
method via the ``kernels="numpy"|"python"`` knob, the
``REPRO_KERNELS`` environment variable, or — by default — ``numpy``
whenever the module imports.  See :mod:`repro.kernels.backend`.
"""

from repro.kernels.backend import (
    BACKENDS,
    default_backend,
    numpy_available,
    resolve_backend,
)
from repro.kernels.bfl import make_bfl_kernel
from repro.kernels.labels import make_label_kernel
from repro.kernels.points import make_point_kernel
from repro.kernels.segments import make_segment_kernel
from repro.kernels.slabs import make_slab_kernel

__all__ = [
    "BACKENDS",
    "default_backend",
    "numpy_available",
    "resolve_backend",
    "make_bfl_kernel",
    "make_label_kernel",
    "make_point_kernel",
    "make_segment_kernel",
    "make_slab_kernel",
]
