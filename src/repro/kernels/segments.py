"""Segment-sweep kernels for 3DReach-Rev.

3DReach-Rev stores, per member point of a component ``c`` and per
*reversed* label ``[lo, hi]`` of ``c``, the vertical segment ``(x, y,
lo)–(x, y, hi)``; a query intersects the horizontal slab at ``z =
post_rev(source)`` with the query rectangle.  The kernel flattens those
segments into four parallel columns and answers the slab probe with one
mask sweep: ``zlo <= z <= zhi`` and ``(x, y)`` in region.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.geometry import Rect
from repro.kernels.backend import KernelBase
from repro.labeling import IntervalLabeling

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geosocial.scc_handling import CondensedNetwork


def _flatten(
    network: "CondensedNetwork", labeling: IntervalLabeling
) -> tuple[array, array, array, array]:
    xs = array("d")
    ys = array("d")
    zlo = array("q")
    zhi = array("q")
    for point, component in network.replicate_entries():
        for lo, hi in labeling.labels_of(component):
            xs.append(point.x)
            ys.append(point.y)
            zlo.append(lo)
            zhi.append(hi)
    return xs, ys, zlo, zhi


class PythonSegmentKernel(KernelBase):
    """Oracle twin: scalar sweep over the same flattened segments."""

    __slots__ = ("_xs", "_ys", "_zlo", "_zhi")

    def __init__(
        self, network: "CondensedNetwork", labeling: IntervalLabeling
    ) -> None:
        super().__init__("segments", "python")
        self._xs, self._ys, self._zlo, self._zhi = _flatten(network, labeling)

    @property
    def num_segments(self) -> int:
        return len(self._xs)

    def any_at(self, region: Rect, z: int) -> bool:
        self._count()
        zlo, zhi = self._zlo, self._zhi
        xs, ys = self._xs, self._ys
        for i in range(len(xs)):
            if (
                zlo[i] <= z <= zhi[i]
                and region.xlo <= xs[i] <= region.xhi
                and region.ylo <= ys[i] <= region.yhi
            ):
                return True
        return False


class NumpySegmentKernel(KernelBase):
    __slots__ = ("_np", "_xs", "_ys", "_zlo", "_zhi")

    def __init__(
        self, network: "CondensedNetwork", labeling: IntervalLabeling
    ) -> None:
        super().__init__("segments", "numpy")
        import numpy as np

        self._np = np
        xs, ys, zlo, zhi = _flatten(network, labeling)
        self._xs = np.frombuffer(xs, dtype=np.float64)
        self._ys = np.frombuffer(ys, dtype=np.float64)
        self._zlo = np.frombuffer(zlo, dtype=np.int64)
        self._zhi = np.frombuffer(zhi, dtype=np.int64)

    @property
    def num_segments(self) -> int:
        return len(self._xs)

    def any_at(self, region: Rect, z: int) -> bool:
        self._count()
        if not len(self._xs):
            return False
        mask = (
            (self._zlo <= z)
            & (z <= self._zhi)
            & (self._xs >= region.xlo)
            & (self._xs <= region.xhi)
            & (self._ys >= region.ylo)
            & (self._ys <= region.yhi)
        )
        return bool(mask.any())


def make_segment_kernel(
    backend: str, network: "CondensedNetwork", labeling: IntervalLabeling
):
    if backend == "numpy":
        return NumpySegmentKernel(network, labeling)
    return PythonSegmentKernel(network, labeling)
