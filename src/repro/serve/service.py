"""Transport-agnostic request handling for the network query service.

:class:`QueryService` turns a :class:`~repro.system.GeosocialDatabase`
into a long-running serving component:

* **admission control** — a bounded in-flight counter; a request beyond
  ``max_inflight`` is rejected immediately (HTTP 429) instead of
  queueing without bound behind the database lock;
* **serialized writes, batched reads** — the database is not
  thread-safe, so every operation holds one lock; batches still win
  because they run vectorized (and optionally through a
  :class:`~repro.exec.ParallelExecutor`, whose worker threads
  parallelize *inside* the locked batch);
* **deadline propagation** — a batch deadline travels through
  ``range_reach_many`` into the executor; an expired deadline surfaces
  as :class:`~repro.exec.BatchTimeoutError` which the HTTP layer maps
  to 504 with the completed/total chunk counts;
* **drain** — :meth:`begin_drain` flips the service into draining mode
  (new requests get 503), :meth:`close` optionally persists the
  snapshot so a restart warm-starts from the drained state.

The HTTP front-end lives in :mod:`repro.serve.http`; this module knows
nothing about sockets so the same service object is unit-testable and
reusable behind other transports.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exec import ParallelExecutor
from repro.geometry import Rect
from repro.obs import instruments as _inst
from repro.obs import render_prometheus
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOMonitor
from repro.obs.trace import Trace
from repro.obs.trace import span as _tspan
from repro.system import GeosocialDatabase

DEFAULT_MAX_INFLIGHT = 64

#: Read operations /query accepts, mapped to database methods.
_READ_OPS = ("reach", "count", "witnesses")

#: Mutations /write accepts (also the /v1 write methods).
_WRITE_OPS = (
    "add_user",
    "add_venue",
    "add_follow",
    "add_checkin",
    "remove_follow",
    "remove_checkin",
)

#: The /v1 envelope: every request is ``{"op": ..., "method": ...}``
#: plus the fields its (op, method) pair allows — nothing else.
_V1_OPS = ("query", "batch", "write")
_V1_COMMON_FIELDS = frozenset({"op", "method", "deadline_ms", "shard_hint"})
_V1_METHOD_FIELDS: dict[tuple[str, str], frozenset[str]] = {
    **{("query", m): frozenset({"vertex", "region"}) for m in _READ_OPS},
    ("batch", "reach"): frozenset({"queries"}),
    ("write", "add_user"): frozenset(),
    ("write", "add_venue"): frozenset({"x", "y"}),
    ("write", "add_follow"): frozenset({"follower", "followee"}),
    ("write", "remove_follow"): frozenset({"follower", "followee"}),
    ("write", "add_checkin"): frozenset({"user", "venue"}),
    ("write", "remove_checkin"): frozenset({"user", "venue"}),
}


class ServiceError(Exception):
    """Base class of request failures; ``status`` is the HTTP code."""

    status = 500


class BadRequestError(ServiceError):
    """Malformed or semantically invalid request payload (400)."""

    status = 400


class OverloadedError(ServiceError):
    """Admission control rejected the request (429)."""

    status = 429


class DrainingError(ServiceError):
    """The service is shutting down and accepts no new work (503)."""

    status = 503


def _require(payload: dict, key: str):
    if not isinstance(payload, dict) or key not in payload:
        raise BadRequestError(f"missing field {key!r}")
    return payload[key]


def _as_int(value, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"{what} must be an integer, got {value!r}")
    return value


def _as_number(value, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"{what} must be a number, got {value!r}")
    return float(value)


def parse_region(raw) -> Rect:
    """Parse any accepted region form: a :class:`Rect` (passed through),
    a ``[xlo, ylo, xhi, yhi]`` list/tuple, or the CLI-style string
    ``"xlo,ylo,xhi,yhi"``."""
    if isinstance(raw, Rect):
        return raw
    if isinstance(raw, str):
        try:
            raw = [float(part) for part in raw.split(",")]
        except ValueError:
            raise BadRequestError(
                f"region string must be 'xlo,ylo,xhi,yhi', got {raw!r}"
            ) from None
    if not isinstance(raw, (list, tuple)) or len(raw) != 4:
        raise BadRequestError(
            f"region must be [xlo, ylo, xhi, yhi], got {raw!r}"
        )
    xlo, ylo, xhi, yhi = (_as_number(c, "region coordinate") for c in raw)
    if xhi < xlo or yhi < ylo:
        raise BadRequestError(f"region {raw!r} has negative extent")
    return Rect(xlo, ylo, xhi, yhi)


class QueryService:
    """The serving facade over one :class:`GeosocialDatabase`.

    Args:
        database: the store to serve; all access is serialized on an
            internal lock (the database is not thread-safe).
        executor: optional :class:`ParallelExecutor` for batch requests.
            Owned by the service: :meth:`close` closes it.
        max_inflight: admission-control bound on concurrently admitted
            requests; the bound is the queue, exceeding it is a 429.
        default_timeout: per-batch deadline (seconds) applied when a
            batch request does not carry its own ``timeout`` field.
        recorder: flight recorder behind ``/debug/*``; a default-sized
            one is created when omitted.  Owned: :meth:`close` closes it.
        slo: SLO monitor behind the ``repro_slo_*`` gauges and the
            ``slo`` block of ``/healthz``; default objectives when
            omitted.  Pass ``slo=False`` (or ``recorder=False``) to
            disable the component entirely.
        tracing: when False the HTTP layer skips per-request tracing
            (request ids still flow) — the knob the overhead benchmark
            flips.
    """

    def __init__(
        self,
        database: GeosocialDatabase,
        *,
        executor: ParallelExecutor | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        default_timeout: float | None = None,
        recorder: FlightRecorder | None | bool = None,
        slo: SLOMonitor | None | bool = None,
        tracing: bool = True,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError("default_timeout must be positive")
        self._database = database
        self._executor = executor
        self._max_inflight = max_inflight
        self._default_timeout = default_timeout
        if recorder is None or recorder is True:
            recorder = FlightRecorder()
        self._recorder = recorder if recorder else None
        if slo is None or slo is True:
            slo = SLOMonitor()
        self._slo = slo if slo else None
        self._tracing = tracing
        self._db_lock = threading.Lock()
        self._gate = threading.Lock()  # admission counter + obs flushes
        self._inflight = 0
        self._served = 0
        self._rejected = 0
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def recorder(self) -> FlightRecorder | None:
        return self._recorder

    @property
    def slo(self) -> SLOMonitor | None:
        return self._slo

    @property
    def tracing_enabled(self) -> bool:
        return self._tracing

    @contextmanager
    def admit(self):
        """Admit one request or raise Overloaded/Draining immediately.

        The in-flight counter bounds the queue of requests waiting on
        the database lock: beyond ``max_inflight`` a caller gets a 429
        *now* rather than a response after an unbounded wait.
        """
        with _tspan("admit"), self._gate:
            if self._draining:
                self._rejected += 1
                if _obs_enabled():
                    _inst.SERVE_REJECTED.inc()
                raise DrainingError("service is draining")
            if self._inflight >= self._max_inflight:
                self._rejected += 1
                if _obs_enabled():
                    _inst.SERVE_REJECTED.inc()
                raise OverloadedError(
                    f"{self._inflight} requests in flight "
                    f"(max {self._max_inflight})"
                )
            self._inflight += 1
            if _obs_enabled():
                _inst.SERVE_INFLIGHT.set(self._inflight)
        started = time.perf_counter()
        try:
            yield
        finally:
            # Same stage name as the entry span: stage_seconds() sums
            # them, so admission bookkeeping is attributed, not a gap.
            with _tspan("admit"), self._gate:
                self._inflight -= 1
                self._served += 1
                if _obs_enabled():
                    _inst.SERVE_INFLIGHT.set(self._inflight)
                    _inst.SERVE_REQUEST_SECONDS.observe(
                        time.perf_counter() - started
                    )

    @contextmanager
    def _locked(self):
        """Hold the database lock; time spent waiting is ``queue.wait``.

        Splitting the wait from the work keeps the trace's stage
        attribution honest: under contention a request's wall time is
        dominated by the lock queue, not the query itself.
        """
        with _tspan("queue.wait"):
            self._db_lock.acquire()
        try:
            yield
        finally:
            self._db_lock.release()

    # ------------------------------------------------------------------
    # Request handlers (admitted requests)
    # ------------------------------------------------------------------
    def single(self, payload: dict) -> dict:
        """``POST /query`` — one read: reach (default), count, witnesses."""
        with _tspan("parse"):
            vertex = _as_int(_require(payload, "vertex"), "vertex")
            region = parse_region(_require(payload, "region"))
            op = payload.get("op", "reach")
            if op not in _READ_OPS:
                raise BadRequestError(
                    f"unknown op {op!r}; known: {', '.join(_READ_OPS)}"
                )
        database = self._database
        with self._locked(), _tspan("exec"):
            try:
                if op == "reach":
                    answer = database.range_reach(vertex, region)
                elif op == "count":
                    answer = database.count_reachable(vertex, region)
                else:
                    answer = database.reachable_venues(vertex, region)
            except (IndexError, ValueError) as exc:
                raise BadRequestError(str(exc)) from None
        return {"op": op, "answer": answer}

    def batch(self, payload: dict) -> dict:
        """``POST /batch`` — many reach queries, one deadline.

        The deadline (request ``timeout`` field, else the service
        default) propagates into the executor; expiry raises
        :class:`BatchTimeoutError` for the transport to map to 504.
        """
        with _tspan("parse"):
            queries = _require(payload, "queries")
            if not isinstance(queries, list):
                raise BadRequestError("queries must be a list")
            pairs = []
            for i, entry in enumerate(queries):
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    raise BadRequestError(
                        f"queries[{i}] must be [vertex, region]"
                    )
                pairs.append((
                    _as_int(entry[0], f"queries[{i}] vertex"),
                    parse_region(entry[1]),
                ))
            timeout = self._default_timeout
            if "timeout" in payload and payload["timeout"] is not None:
                timeout = _as_number(payload["timeout"], "timeout")
                if timeout <= 0:
                    raise BadRequestError("timeout must be positive")
        answers = self._execute_batch(pairs, timeout)
        return {"answers": answers, "count": len(answers)}

    def _execute_batch(
        self, pairs, timeout, shard_hint: int | None = None
    ) -> list[bool]:
        database = self._database
        kwargs = {}
        if shard_hint is not None and hasattr(database, "num_shards"):
            kwargs["shard_hint"] = shard_hint
        with self._locked(), _tspan("exec"):
            try:
                if self._executor is not None:
                    answers = database.range_reach_many(
                        pairs, self._executor, timeout=timeout, **kwargs
                    )
                elif timeout is not None:
                    # No pool: enforce the deadline with a one-shot
                    # sequential executor (chunked deadline checks).
                    with ParallelExecutor(workers=1) as sequential:
                        answers = database.range_reach_many(
                            pairs, sequential, timeout=timeout, **kwargs
                        )
                else:
                    answers = database.range_reach_many(pairs, **kwargs)
            except (IndexError, ValueError) as exc:
                raise BadRequestError(str(exc)) from None
        return answers

    def write(
        self, payload: dict, *, shard_hint: int | None = None
    ) -> dict:
        """``POST /write`` — one mutation against the live store.

        ``shard_hint`` (from the /v1 envelope) routes ``add_user`` to a
        specific shard of a sharded database; it is ignored elsewhere.
        """
        op = _require(payload, "op")
        database = self._database
        try:
            with self._locked(), _tspan("exec"):
                if op == "add_user":
                    if shard_hint is not None and hasattr(
                        database, "num_shards"
                    ):
                        vertex = database.add_user(shard_hint=shard_hint)
                    else:
                        vertex = database.add_user()
                    return {"op": op, "vertex": vertex}
                if op == "add_venue":
                    vertex = database.add_venue(
                        _as_number(_require(payload, "x"), "x"),
                        _as_number(_require(payload, "y"), "y"),
                    )
                    return {"op": op, "vertex": vertex}
                if op == "add_follow":
                    added = database.add_follow(
                        _as_int(_require(payload, "follower"), "follower"),
                        _as_int(_require(payload, "followee"), "followee"),
                    )
                    return {"op": op, "added": added}
                if op == "add_checkin":
                    added = database.add_checkin(
                        _as_int(_require(payload, "user"), "user"),
                        _as_int(_require(payload, "venue"), "venue"),
                    )
                    return {"op": op, "added": added}
                if op == "remove_follow":
                    database.remove_follow(
                        _as_int(_require(payload, "follower"), "follower"),
                        _as_int(_require(payload, "followee"), "followee"),
                    )
                    return {"op": op, "removed": True}
                if op == "remove_checkin":
                    database.remove_checkin(
                        _as_int(_require(payload, "user"), "user"),
                        _as_int(_require(payload, "venue"), "venue"),
                    )
                    return {"op": op, "removed": True}
        except (IndexError, ValueError) as exc:
            raise BadRequestError(str(exc)) from None
        raise BadRequestError(
            f"unknown write op {op!r}; known: {', '.join(_WRITE_OPS)}"
        )

    # ------------------------------------------------------------------
    # The /v1 unified envelope
    # ------------------------------------------------------------------
    def v1(self, payload: dict, *, duplicates=()) -> dict:
        """``POST /v1`` — the one versioned envelope over all three ops.

        ``{"op": "query"|"batch"|"write", "method": ..., ...}`` with two
        optional cross-cutting fields: ``deadline_ms`` (batch deadline in
        milliseconds; advisory elsewhere) and ``shard_hint`` (preferred
        shard for query planning and ``add_user`` placement on a sharded
        database; advisory on a monolithic one).  The envelope is
        strict: an unknown field for the (op, method) pair — or a field
        the transport saw twice (``duplicates``) — is a 400 naming the
        offending field(s), never a silent ignore.
        """
        with _tspan("parse"):
            if duplicates:
                raise BadRequestError(
                    "duplicate field(s): "
                    + ", ".join(sorted(set(duplicates)))
                )
            op = _require(payload, "op")
            if op not in _V1_OPS:
                raise BadRequestError(
                    f"unknown op {op!r}; known: {', '.join(_V1_OPS)}"
                )
            if op == "write":
                method = _require(payload, "method")
            else:
                method = payload.get("method", "reach")
            if (op, method) not in _V1_METHOD_FIELDS:
                known = sorted(
                    m for o, m in _V1_METHOD_FIELDS if o == op
                )
                raise BadRequestError(
                    f"unknown method {method!r} for op {op!r}; "
                    f"known: {', '.join(known)}"
                )
            allowed = _V1_COMMON_FIELDS | _V1_METHOD_FIELDS[(op, method)]
            unknown = sorted(k for k in payload if k not in allowed)
            if unknown:
                raise BadRequestError(
                    f"unknown field(s) for {op}/{method}: "
                    + ", ".join(unknown)
                )
            shard_hint = payload.get("shard_hint")
            if shard_hint is not None:
                shard_hint = _as_int(shard_hint, "shard_hint")
                num_shards = getattr(self._database, "num_shards", None)
                if num_shards is not None and not (
                    0 <= shard_hint < num_shards
                ):
                    raise BadRequestError(
                        f"shard_hint {shard_hint} out of range "
                        f"(0..{num_shards - 1})"
                    )
            deadline_ms = payload.get("deadline_ms")
            if deadline_ms is not None:
                deadline_ms = _as_number(deadline_ms, "deadline_ms")
                if deadline_ms <= 0:
                    raise BadRequestError("deadline_ms must be positive")
        if op == "query":
            return self._v1_query(payload, method, shard_hint)
        if op == "batch":
            return self._v1_batch(payload, deadline_ms, shard_hint)
        result = self.write(
            {
                "op": method,
                **{
                    k: payload[k]
                    for k in _V1_METHOD_FIELDS[("write", method)]
                    if k in payload
                },
            },
            shard_hint=shard_hint,
        )
        result["op"] = "write"
        result["method"] = method
        return result

    def _v1_query(
        self, payload: dict, method: str, shard_hint: int | None
    ) -> dict:
        with _tspan("parse"):
            vertex = _as_int(_require(payload, "vertex"), "vertex")
            region = parse_region(_require(payload, "region"))
        database = self._database
        hinted = shard_hint is not None and hasattr(database, "num_shards")
        with self._locked(), _tspan("exec"):
            try:
                if method == "reach":
                    if hinted:
                        answer = database.range_reach(
                            vertex, region, shard_hint=shard_hint
                        )
                    else:
                        answer = database.range_reach(vertex, region)
                elif method == "count":
                    answer = database.count_reachable(vertex, region)
                else:
                    answer = database.reachable_venues(vertex, region)
            except (IndexError, ValueError) as exc:
                raise BadRequestError(str(exc)) from None
        return {"op": "query", "method": method, "answer": answer}

    def _v1_batch(
        self, payload: dict, deadline_ms, shard_hint: int | None
    ) -> dict:
        with _tspan("parse"):
            queries = _require(payload, "queries")
            if not isinstance(queries, list):
                raise BadRequestError("queries must be a list")
            pairs = []
            for i, entry in enumerate(queries):
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    raise BadRequestError(
                        f"queries[{i}] must be [vertex, region]"
                    )
                pairs.append((
                    _as_int(entry[0], f"queries[{i}] vertex"),
                    parse_region(entry[1]),
                ))
            timeout = (
                deadline_ms / 1000.0
                if deadline_ms is not None
                else self._default_timeout
            )
        answers = self._execute_batch(pairs, timeout, shard_hint)
        return {
            "op": "batch",
            "method": "reach",
            "answers": answers,
            "count": len(answers),
        }

    # ------------------------------------------------------------------
    # Per-request observation (called by the transport after each
    # traced request finishes, success or error)
    # ------------------------------------------------------------------
    def observe_request(
        self,
        endpoint: str,
        status: int,
        trace: Trace | None,
        *,
        duration: float | None = None,
        started: float | None = None,
        error: str | None = None,
    ) -> None:
        """Flush one finished request into histograms, recorder and SLO.

        ``trace`` is the request's closed span tree (None when tracing
        is off — the latency SLI then needs an explicit ``duration``).
        ``started`` is the wall-clock epoch the request began, for the
        recorder.
        """
        if duration is None and trace is not None:
            duration = trace.duration
        if _obs_enabled() and duration is not None:
            _inst.SERVE_ENDPOINT_SECONDS.labels(endpoint=endpoint).observe(
                duration
            )
        if trace is not None:
            if _obs_enabled():
                for stage, seconds in trace.stage_seconds().items():
                    _inst.SERVE_STAGE_SECONDS.labels(
                        endpoint=endpoint, stage=stage
                    ).observe(seconds)
            if self._recorder is not None:
                self._recorder.record_trace(
                    trace,
                    endpoint=endpoint,
                    status=status,
                    started=time.time() if started is None else started,
                    error=error,
                )
        if self._slo is not None:
            self._slo.tick()

    # ------------------------------------------------------------------
    # Introspection endpoints (never admission-controlled)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        out = {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
        }
        if self._slo is not None:
            out["slo"] = self._slo.evaluate()
        if self._recorder is not None:
            out["recorder"] = self._recorder.stats()
        return out

    def stats(self) -> dict:
        with self._db_lock:
            database = self._database.stats()
        return {
            "database": database,
            "serve": {
                "inflight": self._inflight,
                "served": self._served,
                "rejected": self._rejected,
                "max_inflight": self._max_inflight,
                "draining": self._draining,
            },
        }

    def metrics_text(self) -> str:
        """The live Prometheus exposition of the process registry."""
        if self._slo is not None:
            # Refresh the repro_slo_* gauges so a scrape always sees
            # burn rates for "now", not for the last served request.
            self._slo.evaluate()
        return render_prometheus()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Build the index snapshot before taking traffic (optional)."""
        with self._db_lock:
            if self._database.is_stale:
                self._database.refresh()

    def begin_drain(self) -> None:
        """Stop admitting requests; in-flight ones run to completion."""
        with self._gate:
            if not self._draining:
                self._draining = True
                if _obs_enabled():
                    _inst.SERVE_DRAINS.inc()

    def close(self, *, persist: bool = True) -> bool:
        """Release resources; returns True when a snapshot was persisted.

        With ``persist`` and a database configured with ``snapshot_dir``,
        state that diverged from the persisted snapshot (pending delta or
        a dropped snapshot) is rebuilt and written out so the next start
        is warm.  Safe to call more than once.
        """
        if self._closed:
            return False
        self._closed = True
        self.begin_drain()
        persisted = False
        if persist and self._database.snapshot_dir is not None:
            with self._db_lock:
                database = self._database
                if database.is_stale or database.delta_size > 0:
                    try:
                        database.refresh()
                        persisted = True
                    except ValueError:
                        pass  # no venues yet: nothing worth persisting
        if self._executor is not None:
            self._executor.close()
        if self._recorder is not None:
            self._recorder.close()
        return persisted
