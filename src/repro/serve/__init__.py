"""Long-running network query service over a GeosocialDatabase.

Split by transport boundary:

* :mod:`repro.serve.service` — request semantics (admission control,
  query/batch/write handling, drain), no sockets;
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer``
  front-end with graceful SIGTERM drain;
* :mod:`repro.serve.loadgen` — deterministic open-loop load generation
  and oracle-backed answer verification.
"""

from repro.serve.http import QueryHTTPServer, run_server, start_server
from repro.serve.service import (
    DEFAULT_MAX_INFLIGHT,
    BadRequestError,
    DrainingError,
    OverloadedError,
    QueryService,
    ServiceError,
    parse_region,
)

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "BadRequestError",
    "DrainingError",
    "OverloadedError",
    "QueryHTTPServer",
    "QueryService",
    "ServiceError",
    "parse_region",
    "run_server",
    "start_server",
]
