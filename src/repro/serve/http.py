"""Stdlib HTTP front-end for :class:`~repro.serve.service.QueryService`.

One :class:`~http.server.ThreadingHTTPServer` exposes the service as
JSON endpoints:

========  ==========  ====================================================
method    path        semantics
========  ==========  ====================================================
GET       /healthz    liveness (200 while serving, 503 once draining)
GET       /stats      database + serving counters
GET       /metrics    Prometheus text exposition of the process registry
POST      /query      one read query (reach / count / witnesses)
POST      /batch      many reach queries under one deadline (504 on expiry)
POST      /write      one mutation (add/remove follow/check-in, vertices)
========  ==========  ====================================================

Status codes: 400 malformed request, 404 unknown path, 405 wrong
method, 429 admission control, 503 draining, 504 batch deadline.

**Graceful drain.**  :func:`run_server` installs SIGTERM/SIGINT
handlers; on the first signal the server stops accepting connections,
idle keep-alive connections are shut down, in-flight requests run to
completion (their handler threads are joined), and the snapshot is
persisted when the service's database has a ``snapshot_dir``.  A
request that was being processed when the signal arrived always gets
its response — only connections with *no request in progress* are cut.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exec import BatchTimeoutError
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.serve.service import QueryService, ServiceError

__all__ = ["QueryHTTPServer", "run_server", "start_server"]

#: Grace period between stopping the accept loop and cutting idle
#: connections: a request parsed just before shutdown gets to flip its
#: handler to busy first.
_DRAIN_GRACE_SECONDS = 0.05


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the service; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    server: "QueryHTTPServer"

    # Set while a parsed request is being served; the drain logic never
    # cuts a connection whose handler is busy.
    busy = False

    def setup(self) -> None:
        super().setup()
        self.server._track(self)

    def finish(self) -> None:
        self.server._untrack(self)
        super().finish()

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.busy = True
        try:
            endpoint = self.path.split("?", 1)[0]
            service = self.server.service
            route = _ROUTES.get(endpoint)
            if route is None:
                self._send_json(404, {"error": f"unknown path {endpoint!r}"},
                                endpoint="unknown")
                return
            expected_method, handler = route
            if method != expected_method:
                self._send_json(
                    405,
                    {"error": f"{endpoint} expects {expected_method}"},
                    endpoint=endpoint,
                )
                return
            handler(self, service, endpoint)
        finally:
            self.busy = False
            if self.server.draining:
                # Drained connections close after their last response.
                self.close_connection = True

    # -- endpoint handlers ---------------------------------------------
    def _get_healthz(self, service: QueryService, endpoint: str) -> None:
        payload = service.health()
        code = 503 if payload["status"] == "draining" else 200
        self._send_json(code, payload, endpoint=endpoint)

    def _get_stats(self, service: QueryService, endpoint: str) -> None:
        self._send_json(200, service.stats(), endpoint=endpoint)

    def _get_metrics(self, service: QueryService, endpoint: str) -> None:
        body = service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._count(endpoint, 200)

    def _post_query(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.single)

    def _post_batch(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.batch)

    def _post_write(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.write)

    def _admitted(self, service: QueryService, endpoint: str, op) -> None:
        try:
            payload = self._read_json()
            with service.admit():
                result = op(payload)
        except BatchTimeoutError as exc:
            self._send_json(
                504,
                {
                    "error": str(exc),
                    "completed_chunks": exc.completed,
                    "total_chunks": exc.total,
                },
                endpoint=endpoint,
            )
        except ServiceError as exc:
            body = {"error": str(exc)}
            headers = {}
            if exc.status in (429, 503):
                headers["Retry-After"] = "1"
            self._send_json(exc.status, body, endpoint=endpoint,
                            headers=headers)
        else:
            self._send_json(200, result, endpoint=endpoint)

    # -- plumbing ------------------------------------------------------
    def _read_json(self) -> dict:
        from repro.serve.service import BadRequestError

        length = self.headers.get("Content-Length")
        try:
            nbytes = int(length) if length is not None else 0
        except ValueError:
            raise BadRequestError("bad Content-Length") from None
        if nbytes <= 0:
            raise BadRequestError("request body required")
        raw = self.rfile.read(nbytes)
        try:
            payload = json.loads(raw)
        except ValueError:
            raise BadRequestError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    def _send_json(
        self,
        code: int,
        payload: dict,
        *,
        endpoint: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)
        self._count(endpoint, code)

    def _count(self, endpoint: str, code: int) -> None:
        if _obs_enabled():
            _inst.SERVE_REQUESTS.labels(
                endpoint=endpoint, code=str(code)
            ).inc()


_ROUTES = {
    "/healthz": ("GET", _Handler._get_healthz),
    "/stats": ("GET", _Handler._get_stats),
    "/metrics": ("GET", _Handler._get_metrics),
    "/query": ("POST", _Handler._post_query),
    "/batch": ("POST", _Handler._post_batch),
    "/write": ("POST", _Handler._post_write),
}


class QueryHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`QueryService`.

    ``block_on_close`` (the ThreadingMixIn default) makes
    ``server_close`` join every live handler thread, which is exactly
    the drain guarantee: responses in flight are written before the
    process exits.
    """

    daemon_threads = True  # never block interpreter exit on a stuck peer
    allow_reuse_address = True
    # The socketserver default backlog (5) resets connections under a
    # synchronized burst before admission control ever sees them; the
    # bounded in-flight gate is the real limit, so accept generously.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        *,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.draining = False
        self._handlers_lock = threading.Lock()
        self._handlers: set[_Handler] = set()
        super().__init__(address, _Handler)

    # -- connection registry -------------------------------------------
    def _track(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def _untrack(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- graceful shutdown ---------------------------------------------
    def drain(self, *, persist: bool = True) -> dict:
        """Stop accepting, cut idle connections, finish in-flight work.

        Returns a summary dict (in-flight count at drain start, whether
        a snapshot was persisted).  Must not be called from a handler
        thread.
        """
        self.draining = True
        self.service.begin_drain()
        inflight = self.service.inflight
        self.shutdown()  # stop the accept loop (blocks until it exits)
        time.sleep(_DRAIN_GRACE_SECONDS)
        with self._handlers_lock:
            idle = [h for h in self._handlers if not h.busy]
        for handler in idle:
            # Unblock the keep-alive readline; the handler loop sees EOF
            # and exits.  A request racing this shutdown is, by
            # definition, not in flight yet.
            try:
                handler.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()  # joins handler threads: in-flight finishes
        persisted = self.service.close(persist=persist)
        return {"inflight_at_drain": inflight, "persisted": persisted}


def start_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> QueryHTTPServer:
    """Start a server on a background thread (tests, benchmarks).

    ``port=0`` binds an ephemeral port; read it back from
    ``server.port``.  Stop with ``server.drain()``.
    """
    server = QueryHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
    ready=None,
) -> int:
    """Serve in the foreground until SIGTERM/SIGINT, then drain.

    The CLI entry point: installs signal handlers, announces readiness
    (``ready`` callback or a line on stdout), blocks in the accept
    loop, and performs the graceful drain on the first signal.  Returns
    0 after a clean drain.
    """
    server = QueryHTTPServer((host, port), service, verbose=verbose)
    drained: dict = {}
    done = threading.Event()

    def _drain_in_background() -> None:
        drained.update(server.drain())
        done.set()

    def _on_signal(signum, frame) -> None:
        # shutdown() deadlocks if called on the thread running
        # serve_forever (the signal handler runs on the main thread),
        # so the drain runs on a helper thread.
        if not server.draining:
            threading.Thread(
                target=_drain_in_background, name="repro-serve-drain",
                daemon=True,
            ).start()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    try:
        if ready is not None:
            ready(server)
        else:
            print(
                f"serving on http://{host}:{server.port} "
                f"(max_inflight={service.max_inflight})",
                flush=True,
            )
        server.serve_forever()
        done.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(
        f"drained: {drained.get('inflight_at_drain', 0)} in flight, "
        f"snapshot_persisted={drained.get('persisted', False)}",
        file=sys.stderr,
        flush=True,
    )
    return 0
