"""Stdlib HTTP front-end for :class:`~repro.serve.service.QueryService`.

One :class:`~http.server.ThreadingHTTPServer` exposes the service as
JSON endpoints:

========  =============  =================================================
method    path           semantics
========  =============  =================================================
GET       /healthz       liveness + SLO burn rates (503 once draining)
GET       /stats         database + serving counters
GET       /metrics       Prometheus text exposition of the process registry
GET       /debug/traces  flight recorder: recent/sampled traces, ``?id=``
                         looks one request up by its id
GET       /debug/slow    the K slowest retained requests, slowest first
GET       /debug/errors  retained errored requests, newest first
POST      /v1            the versioned envelope: query / batch / write
POST      /query         deprecated alias of ``/v1`` op=query
POST      /batch         deprecated alias of ``/v1`` op=batch (504)
POST      /write         deprecated alias of ``/v1`` op=write
========  =============  =================================================

Status codes: 400 malformed request, 404 unknown path, 405 wrong
method, 429 admission control, 503 draining, 504 batch deadline.

**The /v1 envelope.**  ``POST /v1`` takes one JSON object
``{"op": "query"|"batch"|"write", "method": ..., ...}`` (see
:meth:`QueryService.v1`) and is *strict*: unknown fields for the
(op, method) pair and fields appearing twice in the JSON body are 400s
naming the offending field(s).  The pre-/v1 endpoints remain as thin
aliases; every response through them carries ``Deprecation: true``
plus a ``Link: </v1>; rel="successor-version"`` pointer and bumps
``repro_http_deprecated_requests_total``.

**Request ids.**  Every request gets an id: the trace-id of an incoming
W3C ``traceparent`` header, else a well-formed ``X-Request-Id`` header,
else a freshly generated 32-hex id.  Every response — success, error,
404, even ``/metrics`` — echoes it in the ``X-Request-Id`` header;
error bodies carry it as ``"request_id"`` so a failing client log line
can be joined against the server's flight recorder
(``/debug/traces?id=...``) without header plumbing.  The three query
endpoints run under a trace rooted at the endpoint name whose id *is*
the request id; stages (``parse`` / ``admit`` / ``queue.wait`` /
``exec`` / ``encode``) and the executor's per-chunk worker subtrees are
stitched into that tree.

**Graceful drain.**  :func:`run_server` installs SIGTERM/SIGINT
handlers; on the first signal the server stops accepting connections,
idle keep-alive connections are shut down, in-flight requests run to
completion (their handler threads are joined), and the snapshot is
persisted when the service's database has a ``snapshot_dir``.  A
request that was being processed when the signal arrived always gets
its response — only connections with *no request in progress* are cut.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.exec import BatchTimeoutError
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import (
    new_trace_id,
    parse_traceparent,
    span as _tspan,
    trace as _trace,
    valid_request_id,
)
from repro.serve.service import QueryService, ServiceError

__all__ = ["QueryHTTPServer", "run_server", "start_server"]

#: Grace period between stopping the accept loop and cutting idle
#: connections: a request parsed just before shutdown gets to flip its
#: handler to busy first.
_DRAIN_GRACE_SECONDS = 0.05


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the service; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    server: "QueryHTTPServer"

    # Set while a parsed request is being served; the drain logic never
    # cuts a connection whose handler is busy.
    busy = False
    # Per-request id, assigned at dispatch; echoed on every response.
    request_id = ""
    # Per-request flags (handlers persist across keep-alive requests,
    # so _dispatch resets them): strict JSON parsing collects duplicate
    # object keys, deprecated routes stamp their responses.
    _strict_json = False
    _duplicate_fields: tuple[str, ...] = ()
    _deprecated = False

    def setup(self) -> None:
        super().setup()
        self.server._track(self)

    def finish(self) -> None:
        self.server._untrack(self)
        super().finish()

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.busy = True
        try:
            endpoint, _, query = self.path.partition("?")
            self._query = parse_qs(query) if query else {}
            self.request_id = self._extract_request_id()
            self._strict_json = False
            self._duplicate_fields = ()
            self._deprecated = endpoint in _DEPRECATED_ROUTES
            if self._deprecated and _obs_enabled():
                _inst.HTTP_DEPRECATED.labels(endpoint=endpoint).inc()
            service = self.server.service
            route = _ROUTES.get(endpoint)
            if route is None:
                self._send_json(
                    404,
                    {
                        "error": f"unknown path {endpoint!r}",
                        "request_id": self.request_id,
                    },
                    endpoint="unknown",
                )
                return
            expected_method, handler = route
            if method != expected_method:
                self._send_json(
                    405,
                    {
                        "error": f"{endpoint} expects {expected_method}",
                        "request_id": self.request_id,
                    },
                    endpoint=endpoint,
                )
                return
            handler(self, service, endpoint)
        finally:
            self.busy = False
            if self.server.draining:
                # Drained connections close after their last response.
                self.close_connection = True

    # -- endpoint handlers ---------------------------------------------
    def _get_healthz(self, service: QueryService, endpoint: str) -> None:
        payload = service.health()
        code = 503 if payload["status"] == "draining" else 200
        self._send_json(code, payload, endpoint=endpoint)

    def _get_stats(self, service: QueryService, endpoint: str) -> None:
        self._send_json(200, service.stats(), endpoint=endpoint)

    def _get_metrics(self, service: QueryService, endpoint: str) -> None:
        body = service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)
        self._count(endpoint, 200)

    def _post_query(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.single)

    def _post_batch(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.batch)

    def _post_write(self, service: QueryService, endpoint: str) -> None:
        self._admitted(service, endpoint, service.write)

    def _post_v1(self, service: QueryService, endpoint: str) -> None:
        self._strict_json = True
        self._admitted(
            service,
            endpoint,
            lambda payload: service.v1(
                payload, duplicates=self._duplicate_fields
            ),
        )

    def _admitted(self, service: QueryService, endpoint: str, op) -> None:
        started_wall = time.time()
        t0 = time.perf_counter()
        finished_trace = None
        if service.tracing_enabled:
            with _trace(
                endpoint, trace_id=self.request_id, counters=False
            ) as tr:
                status, error = self._run_admitted(service, endpoint, op)
            finished_trace = tr
        else:
            status, error = self._run_admitted(service, endpoint, op)
        service.observe_request(
            endpoint,
            status,
            finished_trace,
            duration=time.perf_counter() - t0,
            started=started_wall,
            error=error,
        )

    def _run_admitted(
        self, service: QueryService, endpoint: str, op
    ) -> tuple[int, str | None]:
        """Parse, admit, execute, respond; returns (status, error)."""
        try:
            with _tspan("parse"):
                payload = self._read_json()
            with service.admit():
                result = op(payload)
        except BatchTimeoutError as exc:
            self._send_json(
                504,
                {
                    "error": str(exc),
                    "completed_chunks": exc.completed,
                    "total_chunks": exc.total,
                    "request_id": self.request_id,
                },
                endpoint=endpoint,
            )
            return 504, str(exc)
        except ServiceError as exc:
            body = {"error": str(exc), "request_id": self.request_id}
            headers = {}
            if exc.status in (429, 503):
                headers["Retry-After"] = "1"
            self._send_json(exc.status, body, endpoint=endpoint,
                            headers=headers)
            return exc.status, str(exc)
        else:
            self._send_json(200, result, endpoint=endpoint)
            return 200, None

    # -- flight-recorder debug endpoints --------------------------------
    def _recorder_or_404(self, service: QueryService, endpoint: str):
        recorder = service.recorder
        if recorder is None:
            self._send_json(
                404,
                {
                    "error": "flight recorder disabled",
                    "request_id": self.request_id,
                },
                endpoint=endpoint,
            )
        return recorder

    def _query_param(self, name: str) -> str | None:
        values = self._query.get(name)
        return values[0] if values else None

    def _limit_param(self) -> int | None:
        raw = self._query_param("n")
        if raw is None:
            return None
        try:
            return max(1, int(raw))
        except ValueError:
            return None

    def _get_debug_traces(self, service: QueryService, endpoint: str) -> None:
        recorder = self._recorder_or_404(service, endpoint)
        if recorder is None:
            return
        trace_id = self._query_param("id")
        if trace_id:
            entry = recorder.find(trace_id)
            if entry is None:
                self._send_json(
                    404,
                    {
                        "error": f"no retained trace with id {trace_id!r}",
                        "request_id": self.request_id,
                    },
                    endpoint=endpoint,
                )
            else:
                self._send_json(200, {"trace": entry}, endpoint=endpoint)
            return
        limit = self._limit_param()
        self._send_json(
            200,
            {
                "recent": recorder.recent(limit),
                "sampled": recorder.sampled(limit),
                "stats": recorder.stats(),
            },
            endpoint=endpoint,
        )

    def _get_debug_slow(self, service: QueryService, endpoint: str) -> None:
        recorder = self._recorder_or_404(service, endpoint)
        if recorder is None:
            return
        self._send_json(
            200,
            {"slowest": recorder.slowest(self._limit_param())},
            endpoint=endpoint,
        )

    def _get_debug_errors(self, service: QueryService, endpoint: str) -> None:
        recorder = self._recorder_or_404(service, endpoint)
        if recorder is None:
            return
        self._send_json(
            200,
            {"errors": recorder.errors(self._limit_param())},
            endpoint=endpoint,
        )

    # -- plumbing ------------------------------------------------------
    def _extract_request_id(self) -> str:
        """The request's id: traceparent > X-Request-Id > generated."""
        trace_id = parse_traceparent(self.headers.get("traceparent"))
        if trace_id is not None:
            return trace_id
        token = self.headers.get("X-Request-Id")
        if token is not None and valid_request_id(token):
            return token
        return new_trace_id()

    def _read_json(self) -> dict:
        from repro.serve.service import BadRequestError

        length = self.headers.get("Content-Length")
        try:
            nbytes = int(length) if length is not None else 0
        except ValueError:
            raise BadRequestError("bad Content-Length") from None
        if nbytes <= 0:
            raise BadRequestError("request body required")
        raw = self.rfile.read(nbytes)
        try:
            if self._strict_json:
                duplicates: list[str] = []

                def _no_duplicates(pairs):
                    out: dict = {}
                    for key, value in pairs:
                        if key in out:
                            duplicates.append(key)
                        out[key] = value
                    return out

                payload = json.loads(raw, object_pairs_hook=_no_duplicates)
                self._duplicate_fields = tuple(duplicates)
            else:
                payload = json.loads(raw)
        except ValueError:
            raise BadRequestError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    def _send_json(
        self,
        code: int,
        payload: dict,
        *,
        endpoint: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        # No-op outside a traced request; inside one, serialization and
        # the response write are the trace's ``encode`` stage.
        with _tspan("encode"):
            body = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self.request_id:
                self.send_header("X-Request-Id", self.request_id)
            if self._deprecated:
                self.send_header("Deprecation", "true")
                self.send_header("Link", '</v1>; rel="successor-version"')
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
            self._count(endpoint, code)

    def _count(self, endpoint: str, code: int) -> None:
        if _obs_enabled():
            _inst.SERVE_REQUESTS.labels(
                endpoint=endpoint, code=str(code)
            ).inc()


_ROUTES = {
    "/healthz": ("GET", _Handler._get_healthz),
    "/stats": ("GET", _Handler._get_stats),
    "/metrics": ("GET", _Handler._get_metrics),
    "/debug/traces": ("GET", _Handler._get_debug_traces),
    "/debug/slow": ("GET", _Handler._get_debug_slow),
    "/debug/errors": ("GET", _Handler._get_debug_errors),
    "/v1": ("POST", _Handler._post_v1),
    "/query": ("POST", _Handler._post_query),
    "/batch": ("POST", _Handler._post_batch),
    "/write": ("POST", _Handler._post_write),
}

#: Pre-/v1 endpoints kept as thin aliases: responses carry a
#: ``Deprecation`` header and count into
#: ``repro_http_deprecated_requests_total``.
_DEPRECATED_ROUTES = frozenset({"/query", "/batch", "/write"})


class QueryHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`QueryService`.

    ``block_on_close`` (the ThreadingMixIn default) makes
    ``server_close`` join every live handler thread, which is exactly
    the drain guarantee: responses in flight are written before the
    process exits.
    """

    daemon_threads = True  # never block interpreter exit on a stuck peer
    allow_reuse_address = True
    # The socketserver default backlog (5) resets connections under a
    # synchronized burst before admission control ever sees them; the
    # bounded in-flight gate is the real limit, so accept generously.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        *,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.draining = False
        self._handlers_lock = threading.Lock()
        self._handlers: set[_Handler] = set()
        super().__init__(address, _Handler)

    # -- connection registry -------------------------------------------
    def _track(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def _untrack(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- graceful shutdown ---------------------------------------------
    def drain(self, *, persist: bool = True) -> dict:
        """Stop accepting, cut idle connections, finish in-flight work.

        Returns a summary dict (in-flight count at drain start, whether
        a snapshot was persisted).  Must not be called from a handler
        thread.
        """
        self.draining = True
        self.service.begin_drain()
        inflight = self.service.inflight
        self.shutdown()  # stop the accept loop (blocks until it exits)
        time.sleep(_DRAIN_GRACE_SECONDS)
        with self._handlers_lock:
            idle = [h for h in self._handlers if not h.busy]
        for handler in idle:
            # Unblock the keep-alive readline; the handler loop sees EOF
            # and exits.  A request racing this shutdown is, by
            # definition, not in flight yet.
            try:
                handler.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()  # joins handler threads: in-flight finishes
        persisted = self.service.close(persist=persist)
        return {"inflight_at_drain": inflight, "persisted": persisted}


def start_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> QueryHTTPServer:
    """Start a server on a background thread (tests, benchmarks).

    ``port=0`` binds an ephemeral port; read it back from
    ``server.port``.  Stop with ``server.drain()``.
    """
    server = QueryHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
    ready=None,
) -> int:
    """Serve in the foreground until SIGTERM/SIGINT, then drain.

    The CLI entry point: installs signal handlers, announces readiness
    (``ready`` callback or a line on stdout), blocks in the accept
    loop, and performs the graceful drain on the first signal.  Returns
    0 after a clean drain.
    """
    server = QueryHTTPServer((host, port), service, verbose=verbose)
    drained: dict = {}
    done = threading.Event()

    def _drain_in_background() -> None:
        drained.update(server.drain())
        done.set()

    def _on_signal(signum, frame) -> None:
        # shutdown() deadlocks if called on the thread running
        # serve_forever (the signal handler runs on the main thread),
        # so the drain runs on a helper thread.
        if not server.draining:
            threading.Thread(
                target=_drain_in_background, name="repro-serve-drain",
                daemon=True,
            ).start()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    try:
        if ready is not None:
            ready(server)
        else:
            print(
                f"serving on http://{host}:{server.port} "
                f"(max_inflight={service.max_inflight})",
                flush=True,
            )
        server.serve_forever()
        done.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(
        f"drained: {drained.get('inflight_at_drain', 0)} in flight, "
        f"snapshot_persisted={drained.get('persisted', False)}",
        file=sys.stderr,
        flush=True,
    )
    return 0
