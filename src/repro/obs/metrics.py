"""Dependency-free metrics: counters, gauges, log-bucket histograms.

One process-wide :class:`MetricsRegistry` (:data:`REGISTRY`) collects the
work counters the paper's evaluation reasons about — label probes, R-tree
node accesses, candidate verifications — so queries can be compared on
*work done*, not only wall-clock.  Design constraints:

* **No dependencies.**  Everything here is stdlib-only; the exporters
  (:mod:`repro.obs.export`) emit JSON and Prometheus text without a
  client library.
* **Near-zero overhead when disabled.**  Hot paths keep counting in local
  variables (they must anyway, for early-exit loops) and flush once per
  query guarded by the module-level :func:`enabled` flag; a disabled
  process pays one boolean check per query, not per unit of work.
* **Get-or-create registration.**  Asking for an existing metric name
  returns the existing instrument, so modules can declare instruments at
  import time in any order.

Instruments are plain objects (``inc``/``set``/``observe``) and labelled
*families* (:class:`CounterFamily`) whose children are resolved once —
e.g. at method-construction time — so the per-query path is a bound
``Counter.inc``.  The registry is not thread-safe; like the rest of the
reproduction it assumes single-threaded query serving.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "escape_label_value",
    "estimate_quantile",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "REGISTRY",
    "enabled",
    "enable",
    "disable",
    "observability",
    "get_registry",
]

# ----------------------------------------------------------------------
# Global on/off switch (module-level no-op fast path)
# ----------------------------------------------------------------------
_ENABLED = True


def enabled() -> bool:
    """Return True iff instrumentation flushes are active."""
    return _ENABLED


def enable() -> None:
    """Turn observability on (the default)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn observability off: hot paths skip every metrics flush."""
    global _ENABLED
    _ENABLED = False


class observability:
    """Context manager forcing observability on or off within a block."""

    def __init__(self, on: bool) -> None:
        self._on = on
        self._previous = True

    def __enter__(self) -> "observability":
        self._previous = _ENABLED
        (enable if self._on else disable)()
        return self

    def __exit__(self, *exc_info) -> bool:
        (enable if self._previous else disable)()
        return False


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sample_key(name: str, labels: Mapping[str, str] | None) -> str:
    """Render the canonical sample key, e.g. ``name{method="3dreach"}``.

    Label values are escaped here, once, so every consumer of sample
    keys (the Prometheus renderer, ``counter_samples`` diffs, traces)
    sees well-formed exposition syntax even for values containing
    ``"``, ``\\`` or newlines.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        self._value = 0

    @property
    def sample_key(self) -> str:
        return _sample_key(self.name, self.labels)


class Gauge:
    """A value that can go up and down (e.g. current delta-log size)."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._value = 0

    def set(self, value: int | float) -> None:
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        self._value = 0

    @property
    def sample_key(self) -> str:
        return _sample_key(self.name, self.labels)


# Default histogram buckets: 1us .. ~16s in factors of 2, a range wide
# enough for both query latencies and snapshot rebuild durations.
DEFAULT_HISTOGRAM_START = 1e-6
DEFAULT_HISTOGRAM_FACTOR = 2.0
DEFAULT_HISTOGRAM_BUCKETS = 25


class Histogram:
    """A fixed log-bucket histogram (upper bounds ``start * factor**i``).

    Observations above the last bound land in the implicit ``+Inf``
    bucket.  The bucket layout is fixed at construction, so ``observe``
    is one bisect plus two adds.
    """

    __slots__ = ("name", "help", "labels", "_bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        start: float = DEFAULT_HISTOGRAM_START,
        factor: float = DEFAULT_HISTOGRAM_FACTOR,
        buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> None:
        if start <= 0:
            raise ValueError("histogram start bound must be positive")
        if factor <= 1.0:
            raise ValueError("histogram factor must be > 1")
        if buckets < 1:
            raise ValueError("histogram needs at least one bucket")
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._bounds = [start * factor**i for i in range(buckets)]
        self._counts = [0] * (buckets + 1)  # trailing slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> tuple[float, ...]:
        return tuple(self._bounds)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def raw_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; trailing slot is +Inf."""
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (``q`` in [0, 1]) from the buckets.

        See :func:`estimate_quantile` for the estimator and its error
        bound (relative error ≤ ``sqrt(factor) - 1`` inside the bucketed
        range — ~41% for the default factor-2 layout).
        """
        return estimate_quantile(self._bounds, self._counts, q)

    def _reset(self) -> None:
        self._counts = [0] * len(self._counts)
        self._sum = 0.0
        self._count = 0

    @property
    def sample_key(self) -> str:
        return _sample_key(self.name, self.labels)


def estimate_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Nearest-rank quantile estimate over log-bucket counts.

    ``bounds`` are the finite bucket upper bounds; ``counts`` are the
    per-bucket (non-cumulative) counts with one trailing +Inf slot
    (``len(counts) == len(bounds) + 1``).  The estimator returns the
    **geometric midpoint** of the bucket holding the nearest-rank
    element: for bucket ``(lo, hi]`` that is ``hi / sqrt(factor)`` where
    ``factor = hi / lo``.  Because the true value lies in ``(lo, hi]``,
    the estimate is off by at most a factor of ``sqrt(factor)`` either
    way — a bounded *relative* error of ``sqrt(factor) - 1`` (~41.4%
    for factor 2, ~22.5% for factor 1.5).  Observations in the +Inf
    overflow bucket degrade to the last finite bound (an underestimate;
    widen the histogram if overflow is common).  Returns 0.0 when the
    histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    # Nearest-rank: the ceil(q * total)-th smallest observation (1-based).
    rank = min(total, max(1, ceil(q * total - 1e-9)))
    running = 0
    for i, count in enumerate(counts):
        running += count
        if running >= rank:
            if i >= len(bounds):  # +Inf overflow bucket
                return bounds[-1]
            hi = bounds[i]
            lo = bounds[i - 1] if i > 0 else None
            if lo is None:
                # First bucket: synthesize the geometric lower edge from
                # the layout's factor so the midpoint rule stays uniform.
                factor = bounds[1] / bounds[0] if len(bounds) > 1 else 2.0
                lo = hi / factor
            return (lo * hi) ** 0.5
    return bounds[-1]  # unreachable (running == total >= rank)


class _Family:
    """Shared plumbing for labelled metric families."""

    child_type: type = Counter

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        if not label_names:
            raise ValueError("a family needs at least one label name")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _new_child(self, label_values: Mapping[str, str]):
        return self.child_type(self.name, self.help, label_values)

    def labels(self, **labels: str):
        """Resolve (creating if needed) the child for one label set."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._new_child(dict(zip(self.label_names, key)))
            self._children[key] = child
        return child

    def children(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self._children.values()

    def _reset(self) -> None:
        for child in self._children.values():
            child._reset()


class CounterFamily(_Family):
    """A counter with labels; ``labels(method=...)`` returns a Counter."""

    child_type = Counter


class GaugeFamily(_Family):
    """A gauge with labels; ``labels(...)`` returns a Gauge."""

    child_type = Gauge


class HistogramFamily(_Family):
    """A log-bucket histogram with labels; ``labels(...)`` → Histogram.

    Bucket layout options (``start``/``factor``/``buckets``) are fixed
    family-wide at registration, so every child shares one layout and
    windowed diffs across children stay comparable.
    """

    child_type = Histogram

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        **bucket_opts,
    ) -> None:
        super().__init__(name, help, label_names)
        self._bucket_opts = dict(bucket_opts)

    def _new_child(self, label_values: Mapping[str, str]) -> Histogram:
        return Histogram(self.name, self.help, label_values,
                         **self._bucket_opts)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Name -> instrument switchboard with snapshot/reset semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, tuple[str, object]] = {}

    # -- registration (get-or-create) ----------------------------------
    def _get_or_create(self, kind: str, name: str, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            existing_kind, metric = existing
            if existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"not {kind}"
                )
            return metric
        metric = factory()
        self._metrics[name] = (kind, metric)
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "", **bucket_opts) -> Histogram:
        return self._get_or_create(
            "histogram", name, lambda: Histogram(name, help, **bucket_opts)
        )

    def counter_family(
        self, name: str, help: str = "", label_names: Sequence[str] = ("method",)
    ) -> CounterFamily:
        return self._get_or_create(
            "counter_family", name, lambda: CounterFamily(name, help, label_names)
        )

    def gauge_family(
        self, name: str, help: str = "", label_names: Sequence[str] = ("method",)
    ) -> GaugeFamily:
        return self._get_or_create(
            "gauge_family", name, lambda: GaugeFamily(name, help, label_names)
        )

    def histogram_family(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = ("method",),
        **bucket_opts,
    ) -> HistogramFamily:
        return self._get_or_create(
            "histogram_family",
            name,
            lambda: HistogramFamily(name, help, label_names, **bucket_opts),
        )

    # -- reading -------------------------------------------------------
    def _flat(self, base: str) -> Iterator[Counter | Gauge]:
        """Iterate scalar samples of one base kind, families flattened."""
        for kind, metric in self._metrics.values():
            if kind == base:
                yield metric  # type: ignore[misc]
            elif kind == base + "_family":
                yield from metric.children()  # type: ignore[union-attr]

    def counter_samples(self) -> dict[str, int | float]:
        """Flat ``sample_key -> value`` view of every counter sample.

        The tracer and the benchmark harness diff two of these maps to
        attribute work counters to one query or one timed batch.
        """
        return {s.sample_key: s.value for s in self._flat("counter")}

    def value(self, name: str, **labels: str) -> int | float:
        """Return one sample's current value (0 if never touched)."""
        entry = self._metrics.get(name)
        if entry is None:
            return 0
        kind, metric = entry
        if kind in ("counter", "gauge"):
            return metric.value  # type: ignore[union-attr]
        if kind in ("counter_family", "gauge_family"):
            key = tuple(
                str(labels[n]) for n in metric.label_names if n in labels
            )
            if len(key) != len(metric.label_names):
                raise ValueError(
                    f"{name} expects labels {metric.label_names}"
                )
            child = metric._children.get(key)
            return 0 if child is None else child.value
        raise ValueError(f"{name} is a histogram; read snapshot() instead")

    def snapshot(self) -> dict[str, dict]:
        """Deep-copied point-in-time view of every sample.

        The returned structure shares no state with the registry: later
        updates never mutate an existing snapshot.
        """
        counters = {s.sample_key: s.value for s in self._flat("counter")}
        gauges = {s.sample_key: s.value for s in self._flat("gauge")}
        histograms = {}
        for histogram in self._flat("histogram"):
            histograms[histogram.sample_key] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "buckets": [
                    [bound, count]
                    for bound, count in histogram.bucket_counts()
                ],
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Zero every instrument (registrations and children survive)."""
        for _, metric in self._metrics.values():
            metric._reset()  # type: ignore[union-attr]

    def describe(self) -> list[tuple[str, str, str]]:
        """Return ``(name, kind, help)`` for every registered metric."""
        return [
            (name, kind, metric.help)  # type: ignore[union-attr]
            for name, (kind, metric) in sorted(self._metrics.items())
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: The process-wide registry every instrumented module writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide registry (mirrors prometheus_client)."""
    return REGISTRY
