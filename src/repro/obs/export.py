"""Registry exporters: JSON snapshot and Prometheus text exposition.

Both render from :meth:`MetricsRegistry.snapshot`, so an export is as
isolated as a snapshot — later updates never leak into an emitted
document.  The Prometheus renderer follows the text exposition format
(``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
histogram series with cumulative ``le`` buckets) without requiring the
client library.
"""

from __future__ import annotations

import json

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["render_json", "render_prometheus"]


def render_json(registry: MetricsRegistry | None = None, indent: int = 2) -> str:
    """Serialize the registry snapshot as a JSON document."""
    registry = REGISTRY if registry is None else registry
    snapshot = registry.snapshot()
    # JSON has no Infinity literal; name the overflow bucket explicitly.
    for histogram in snapshot["histograms"].values():
        histogram["buckets"] = [
            ["+Inf" if bound == float("inf") else bound, count]
            for bound, count in histogram["buckets"]
        ]
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _format_value(value: int | float) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value.is_integer():
            return str(int(value))
    return str(value)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _split_key(sample_key: str) -> tuple[str, str]:
    """Split ``name{labels}`` into ``(name, "{labels}" or "")``."""
    brace = sample_key.find("{")
    if brace < 0:
        return sample_key, ""
    return sample_key[:brace], sample_key[brace:]


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry = REGISTRY if registry is None else registry
    help_by_name = {name: help for name, _, help in registry.describe()}
    snapshot = registry.snapshot()
    lines: list[str] = []
    emitted_headers: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name in emitted_headers:
            return
        emitted_headers.add(name)
        help_text = help_by_name.get(name, "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for sample_key, value in sorted(snapshot["counters"].items()):
        name, labels = _split_key(sample_key)
        header(name, "counter")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for sample_key, value in sorted(snapshot["gauges"].items()):
        name, labels = _split_key(sample_key)
        header(name, "gauge")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for sample_key, data in sorted(snapshot["histograms"].items()):
        name, labels = _split_key(sample_key)
        header(name, "histogram")
        base_labels = labels[1:-1] if labels else ""
        for bound, count in data["buckets"]:
            le = "+Inf" if bound == float("inf") else repr(bound)
            label_body = f'le="{le}"'
            if base_labels:
                label_body = f"{base_labels},{label_body}"
            lines.append(f"{name}_bucket{{{label_body}}} {count}")
        lines.append(f"{name}_sum{labels} {data['sum']}")
        lines.append(f"{name}_count{labels} {data['count']}")
    return "\n".join(lines) + "\n"
