"""repro.obs — unified observability: metrics registry + query tracer.

The package gives every layer of the reproduction one switchboard for
the internal work counts the paper's evaluation is built on (label
probes, R-tree node accesses, candidate verifications) plus a per-query
span tracer:

* :mod:`repro.obs.metrics` — counters, gauges, fixed log-bucket
  histograms, and the process-wide :data:`REGISTRY`;
* :mod:`repro.obs.instruments` — the named instruments the hot paths
  flush into (the metric naming scheme lives there);
* :mod:`repro.obs.trace` — span trees with monotonic timings and
  counter deltas (``with obs.trace(...)`` / ``obs.span(...)``), W3C
  trace-id helpers, and cross-thread handoff (:func:`capture`);
* :mod:`repro.obs.recorder` — the bounded slow-query flight recorder
  behind the service's ``/debug/*`` endpoints;
* :mod:`repro.obs.slo` — per-endpoint objectives, multi-window burn
  rates and error budgets (``repro_slo_*`` gauges, ``/healthz``);
* :mod:`repro.obs.export` — JSON and Prometheus-text exporters.

Quick tour::

    from repro import obs

    obs.enable()                      # on by default
    answer = method.query(v, region)
    print(obs.render_prometheus())    # repro_method_queries_total{...} 1

    with obs.measure() as delta:      # per-call counter attribution
        method.query(v, region)
    print(delta["repro_rtree_nodes_visited_total"])

    with obs.trace("query") as t:     # per-query span breakdown
        method.query(v, region)
    print(t.format())

``obs.disable()`` turns every flush into a module-level no-op check, so
an observability-free run pays one boolean test per query.
"""

from __future__ import annotations

from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    estimate_quantile,
    get_registry,
    observability,
)
from repro.obs.recorder import FlightRecorder, RecordedRequest
from repro.obs.slo import Objective, SLOMonitor, default_objectives
from repro.obs.trace import (
    Span,
    Trace,
    TraceContext,
    active_trace,
    capture,
    new_trace_id,
    parse_traceparent,
    record_span,
    span,
    trace,
    tracing,
    valid_request_id,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "CounterFamily",
    "FlightRecorder",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "Objective",
    "RecordedRequest",
    "SLOMonitor",
    "Span",
    "Trace",
    "TraceContext",
    "active_trace",
    "capture",
    "default_objectives",
    "disable",
    "enable",
    "enabled",
    "estimate_quantile",
    "get_registry",
    "measure",
    "new_trace_id",
    "observability",
    "parse_traceparent",
    "record_span",
    "render_json",
    "render_prometheus",
    "span",
    "trace",
    "tracing",
    "valid_request_id",
]


class measure:
    """Collect counter deltas for the enclosed block.

    Yields a dict that is filled on exit with every counter sample that
    changed (``sample_key -> delta``)::

        with obs.measure() as delta:
            method.query(v, region)
        probes = delta.get("repro_method_label_probes_total"
                           "{method=\\"3dreach\\"}", 0)
    """

    def __init__(self) -> None:
        self._delta: dict[str, int | float] = {}
        self._before: dict[str, int | float] = {}

    def __enter__(self) -> dict[str, int | float]:
        self._before = REGISTRY.counter_samples()
        return self._delta

    def __exit__(self, *exc_info) -> bool:
        after = REGISTRY.counter_samples()
        before = self._before
        self._delta.update(
            (key, value - before.get(key, 0))
            for key, value in after.items()
            if value != before.get(key, 0)
        )
        return False
