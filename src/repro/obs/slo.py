"""SLO monitoring: objectives, burn rates and error budgets.

Turns the serving stack's cumulative instruments into the two questions
an operator actually asks:

* *Are we meeting the objective right now?* — per-endpoint **burn
  rates** over multiple trailing windows (Google-SRE style).  A burn
  rate of 1.0 spends the error budget exactly at the rate the objective
  allows; > 1 is on track to miss it.
* *How much slack is left?* — **error budget remaining** over the
  longest window, as a fraction in [0, 1].

Two SLIs per endpoint:

* **latency** — the fraction of requests finishing under the
  objective's threshold, measured from the per-endpoint log-bucket
  histogram ``repro_serve_endpoint_seconds``.  The good count is
  *conservative*: only requests in buckets whose upper bound is ≤ the
  threshold count as good, so bucketing error can never hide a miss.
* **availability** — the fraction of requests answered without a server
  error (status < 500), from ``repro_serve_requests_total``.

:class:`SLOMonitor` snapshots the cumulative counters on every
:meth:`~SLOMonitor.tick` (rate-limited; the serving path calls it after
each request) and :meth:`~SLOMonitor.evaluate` diffs the newest snapshot
against the oldest one inside each window.  Multi-window **fast burn**
(burning faster than ``fast_burn_factor`` in *every* window) is the
page-now condition: a short window alone pages on blips, a long window
alone pages hours late; requiring both means the problem is real *and*
current.  Everything is exported through the ``repro_slo_*`` gauge
families and the ``slo`` block of ``/healthz``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.obs import instruments as _inst

__all__ = [
    "Objective",
    "SLOMonitor",
    "default_objectives",
    "DEFAULT_WINDOWS",
    "FAST_BURN_FACTOR",
]

#: Trailing windows burn rates are computed over: (name, seconds).
DEFAULT_WINDOWS: tuple[tuple[str, float], ...] = (("5m", 300.0), ("1h", 3600.0))

#: A 14.4x burn spends a 30-day budget in ~2 days — the classic
#: fast-burn paging threshold.
FAST_BURN_FACTOR = 14.4


@dataclass(frozen=True)
class Objective:
    """One endpoint's service-level objective.

    ``latency_target`` is the fraction of requests that must finish
    under ``latency_threshold_s`` (e.g. 0.99 → "p99 under threshold");
    ``availability_target`` is the fraction that must not 5xx.
    """

    endpoint: str
    latency_threshold_s: float
    latency_target: float = 0.99
    availability_target: float = 0.999

    def __post_init__(self) -> None:
        if self.latency_threshold_s <= 0:
            raise ValueError("latency threshold must be positive")
        for target in (self.latency_target, self.availability_target):
            if not 0.0 < target < 1.0:
                raise ValueError("SLO targets must be in (0, 1)")

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "latency_threshold_s": self.latency_threshold_s,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
        }


def default_objectives() -> tuple[Objective, ...]:
    """The serving stack's default objectives.

    Thresholds follow each endpoint's work profile: a single
    reachability query is label probes plus an R-tree walk (fast), a
    batch fans out across the executor pool (slow), a write may trigger
    a bounded delta-BFS or a rebuild check (in between).
    """
    return (
        Objective("/query", latency_threshold_s=0.1),
        Objective("/batch", latency_threshold_s=1.0),
        Objective("/write", latency_threshold_s=0.5),
    )


# One cumulative observation of an endpoint's counters:
# (total, bad_availability, latency_total, latency_good)
_Counts = tuple[int, int, int, int]


class SLOMonitor:
    """Windowed burn-rate evaluation over the serving instruments.

    Thread-safe; ``tick()`` is cheap enough to call once per finished
    request (it no-ops within ``min_tick_interval`` of the previous
    snapshot).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        objectives: Sequence[Objective] | None = None,
        *,
        windows: Sequence[tuple[str, float]] = DEFAULT_WINDOWS,
        fast_burn_factor: float = FAST_BURN_FACTOR,
        min_tick_interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("SLOMonitor needs at least one window")
        self._objectives = tuple(
            objectives if objectives is not None else default_objectives()
        )
        self._windows = tuple((str(n), float(s)) for n, s in windows)
        self._horizon = max(s for _, s in self._windows)
        self._fast_burn_factor = fast_burn_factor
        self._min_tick_interval = min_tick_interval
        self._clock = clock
        self._lock = threading.Lock()
        # Snapshots: (timestamp, {endpoint: _Counts}), oldest first.
        self._snapshots: list[tuple[float, dict[str, _Counts]]] = []
        self.tick(force=True)

    @property
    def objectives(self) -> tuple[Objective, ...]:
        return self._objectives

    @property
    def windows(self) -> tuple[tuple[str, float], ...]:
        return self._windows

    # ------------------------------------------------------------------
    # Reading the cumulative instruments
    # ------------------------------------------------------------------
    @staticmethod
    def _good_latency_count(hist, threshold: float) -> tuple[int, int]:
        """(good, total) from one endpoint histogram, conservatively.

        Good = observations in buckets whose upper bound ≤ threshold;
        the bucket straddling the threshold counts as bad, so the
        log-bucket quantization can only under-report compliance.
        """
        counts = hist.raw_counts()
        good = 0
        for bound, count in zip(hist.bounds, counts):
            if bound <= threshold:
                good += count
            else:
                break
        return good, hist.count

    def _observe(self) -> dict[str, _Counts]:
        by_endpoint: dict[str, _Counts] = {}
        for obj in self._objectives:
            total = 0
            bad_avail = 0
            for child in _inst.SERVE_REQUESTS.children():
                labels = child.labels or {}
                if labels.get("endpoint") != obj.endpoint:
                    continue
                total += child.value
                try:
                    code = int(labels.get("code", "0"))
                except ValueError:
                    code = 0
                if code >= 500:
                    bad_avail += child.value
            lat_good = lat_total = 0
            for child in _inst.SERVE_ENDPOINT_SECONDS.children():
                if (child.labels or {}).get("endpoint") != obj.endpoint:
                    continue
                good, seen = self._good_latency_count(
                    child, obj.latency_threshold_s
                )
                lat_good += good
                lat_total += seen
            by_endpoint[obj.endpoint] = (total, bad_avail, lat_total, lat_good)
        return by_endpoint

    # ------------------------------------------------------------------
    # Snapshotting and evaluation
    # ------------------------------------------------------------------
    def tick(self, *, force: bool = False) -> bool:
        """Snapshot the cumulative counters; True if one was taken."""
        now = self._clock()
        with self._lock:
            if (
                not force
                and self._snapshots
                and now - self._snapshots[-1][0] < self._min_tick_interval
            ):
                return False
            self._snapshots.append((now, self._observe()))
            # Keep one snapshot older than the horizon as the diff base.
            cutoff = now - self._horizon
            drop = 0
            while (
                drop + 1 < len(self._snapshots)
                and self._snapshots[drop + 1][0] <= cutoff
            ):
                drop += 1
            if drop:
                del self._snapshots[:drop]
            return True

    @staticmethod
    def _window_delta(
        newest: Mapping[str, _Counts],
        oldest: Mapping[str, _Counts],
        endpoint: str,
    ) -> _Counts:
        new = newest.get(endpoint, (0, 0, 0, 0))
        old = oldest.get(endpoint, (0, 0, 0, 0))
        return tuple(max(0, n - o) for n, o in zip(new, old))  # type: ignore[return-value]

    @staticmethod
    def _burn(bad: int, total: int, target: float) -> float:
        """Burn rate: observed bad fraction over the allowed bad fraction."""
        if total <= 0:
            return 0.0
        return (bad / total) / (1.0 - target)

    def evaluate(self, *, tick: bool = True) -> dict:
        """Burn rates, budgets and fast-burn flags; updates the gauges."""
        if tick:
            self.tick()
        with self._lock:
            now_ts, newest = self._snapshots[-1]
            bases: list[tuple[str, float, Mapping[str, _Counts]]] = []
            for name, seconds in self._windows:
                cutoff = now_ts - seconds
                base = self._snapshots[0][1]
                for ts, counts in self._snapshots:
                    if ts <= cutoff:
                        base = counts
                    else:
                        break
                bases.append((name, seconds, base))
        longest = max(bases, key=lambda b: b[1])
        endpoints: dict[str, dict] = {}
        for obj in self._objectives:
            lat_burns: dict[str, float] = {}
            avail_burns: dict[str, float] = {}
            for name, _, base in bases:
                total, bad_avail, lat_total, lat_good = self._window_delta(
                    newest, base, obj.endpoint
                )
                lat_burns[name] = self._burn(
                    lat_total - lat_good, lat_total, obj.latency_target
                )
                avail_burns[name] = self._burn(
                    bad_avail, total, obj.availability_target
                )
            total, bad_avail, lat_total, lat_good = self._window_delta(
                newest, longest[2], obj.endpoint
            )
            lat_budget = max(
                0.0,
                1.0
                - self._burn(
                    lat_total - lat_good, lat_total, obj.latency_target
                ),
            )
            avail_budget = max(
                0.0,
                1.0 - self._burn(bad_avail, total, obj.availability_target),
            )
            fast = bool(
                all(b > self._fast_burn_factor for b in lat_burns.values())
                or all(
                    b > self._fast_burn_factor for b in avail_burns.values()
                )
            )
            endpoints[obj.endpoint] = {
                "objective": obj.to_dict(),
                "requests": total,
                "latency": {
                    "burn_rates": lat_burns,
                    "budget_remaining": lat_budget,
                },
                "availability": {
                    "burn_rates": avail_burns,
                    "budget_remaining": avail_budget,
                },
                "fast_burn": fast,
            }
            for name, burn in lat_burns.items():
                _inst.SLO_BURN_RATE.labels(
                    endpoint=obj.endpoint, sli="latency", window=name
                ).set(burn)
            for name, burn in avail_burns.items():
                _inst.SLO_BURN_RATE.labels(
                    endpoint=obj.endpoint, sli="availability", window=name
                ).set(burn)
            _inst.SLO_BUDGET_REMAINING.labels(
                endpoint=obj.endpoint, sli="latency"
            ).set(lat_budget)
            _inst.SLO_BUDGET_REMAINING.labels(
                endpoint=obj.endpoint, sli="availability"
            ).set(avail_budget)
            _inst.SLO_FAST_BURN.labels(endpoint=obj.endpoint).set(
                1 if fast else 0
            )
        return {
            "windows": [
                {"name": name, "seconds": seconds}
                for name, seconds in self._windows
            ],
            "fast_burn_factor": self._fast_burn_factor,
            "endpoints": endpoints,
        }
