"""The instruments every hot path in the reproduction flushes into.

Declared in one place so the metric naming scheme stays coherent:

* ``repro_method_*`` — per-RangeReach-method work, labelled by the
  method's registry/display name (``method="3dreach-rev"`` etc.).  The
  three cross-method counters mirror the access counts the paper's
  evaluation compares: interval/reachability **label probes**, spatial
  **candidates verified**, and queries served (with the TRUE share).
* ``repro_<method>_*`` — method-specific internals (GeoReach expansion
  and grid-cell classifications, SocReach descendant scans, 3DReach
  cuboid and slab queries).
* ``repro_rtree_*`` — R-tree traversal work: nodes visited, leaves
  scanned, entry intersection tests, per search call.
* ``repro_db_*`` — mutable-store serving: overlay vs. snapshot queries,
  delta-BFS expansions, rebuild counts and durations.  These aggregate
  over every :class:`~repro.system.database.GeosocialDatabase` in the
  process; per-instance numbers stay available via ``stats()``.
* ``repro_pipeline_*`` — shared build pipeline: artifact-cache hits and
  misses labelled by artifact kind (``condense``, ``labeling``, ``feed``,
  ``rtree``, ...) plus one build-seconds histogram per kind.  A
  build-all-methods run that shares artifacts shows up directly as the
  hit/miss ratio; per-context numbers stay available via
  :meth:`repro.pipeline.BuildContext.stats`.

Counters use the Prometheus ``_total`` suffix convention; durations are
log-bucket histograms in seconds.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY

# ----------------------------------------------------------------------
# Cross-method query counters (labelled by method name)
# ----------------------------------------------------------------------
METHOD_QUERIES = REGISTRY.counter_family(
    "repro_method_queries_total",
    "RangeReach queries evaluated, by method.",
)
METHOD_POSITIVES = REGISTRY.counter_family(
    "repro_method_positives_total",
    "RangeReach queries answered TRUE, by method.",
)
METHOD_LABEL_PROBES = REGISTRY.counter_family(
    "repro_method_label_probes_total",
    "Reachability-label probes (interval labels, BFL tests, ...), by method.",
)
METHOD_CANDIDATES_VERIFIED = REGISTRY.counter_family(
    "repro_method_candidates_verified_total",
    "Spatial candidates verified against the query predicate, by method.",
)

# ----------------------------------------------------------------------
# Method-specific internals
# ----------------------------------------------------------------------
SPAREACH_CANDIDATES = REGISTRY.counter_family(
    "repro_spareach_candidates_total",
    "Spatial range-query candidates produced (SRange step), by variant.",
)
GEOREACH_EXPANDED = REGISTRY.counter(
    "repro_georeach_vertices_expanded_total",
    "SPA-graph vertices expanded by the pruned BFS.",
)
GEOREACH_PRUNED = REGISTRY.counter(
    "repro_georeach_vertices_pruned_total",
    "SPA-graph vertices pruned by the B/R/G class tests.",
)
GEOREACH_CELL_TESTS = REGISTRY.counter(
    "repro_georeach_cell_tests_total",
    "ReachGrid cells classified against the query region (G-vertices).",
)
SOCREACH_DESCENDANTS = REGISTRY.counter_family(
    "repro_socreach_descendants_scanned_total",
    "Descendant slots scanned during post-order range evaluation.",
)
THREEDREACH_CUBOIDS = REGISTRY.counter(
    "repro_threedreach_cuboid_queries_total",
    "3-D cuboid range queries issued (one per label, early exit).",
)
THREEDREACH_REV_SLABS = REGISTRY.counter(
    "repro_threedreach_rev_slab_queries_total",
    "3-D slab queries issued (one per RangeReach query).",
)

# ----------------------------------------------------------------------
# R-tree traversal
# ----------------------------------------------------------------------
RTREE_SEARCHES = REGISTRY.counter(
    "repro_rtree_searches_total",
    "Range searches started (any_intersecting/search_all included).",
)
RTREE_NODES_VISITED = REGISTRY.counter(
    "repro_rtree_nodes_visited_total",
    "R-tree nodes (inner + leaf) whose bounds were examined.",
)
RTREE_LEAVES_SCANNED = REGISTRY.counter(
    "repro_rtree_leaves_scanned_total",
    "Leaf nodes whose entry lists were scanned.",
)
RTREE_ITEMS_TESTED = REGISTRY.counter(
    "repro_rtree_items_tested_total",
    "Leaf entries tested for intersection with the query box.",
)

# ----------------------------------------------------------------------
# Mutable store (GeosocialDatabase) serving
# ----------------------------------------------------------------------
DB_SNAPSHOT_QUERIES = REGISTRY.counter(
    "repro_db_snapshot_queries_total",
    "Queries served directly from the indexed snapshot (no delta).",
)
DB_OVERLAY_QUERIES = REGISTRY.counter(
    "repro_db_overlay_queries_total",
    "Queries served as base snapshot union delta overlay.",
)
DB_DELTA_EXPANSIONS = REGISTRY.counter(
    "repro_db_delta_bfs_expansions_total",
    "Vertices expanded by the overlay's bounded delta BFS.",
)
DB_REBUILDS = REGISTRY.counter(
    "repro_db_rebuilds_total",
    "Snapshot (re)builds, lazy or eager.",
)
DB_REMOVAL_REFRESHES = REGISTRY.counter(
    "repro_db_removal_refreshes_total",
    "Snapshots invalidated by a snapshot-edge removal.",
)
DB_THRESHOLD_REFRESHES = REGISTRY.counter(
    "repro_db_threshold_refreshes_total",
    "Snapshots dropped because the delta log exceeded refresh_threshold.",
)
DB_REBUILD_SECONDS = REGISTRY.histogram(
    "repro_db_rebuild_seconds",
    "Snapshot rebuild duration (condensation + labeling + R-tree).",
)
DB_DELTA_OPS = REGISTRY.gauge(
    "repro_db_delta_ops",
    "Operations currently logged against the live snapshot.",
)
DB_DELTA_EDGES = REGISTRY.gauge(
    "repro_db_delta_edges",
    "Edges currently in the delta log.",
)

# ----------------------------------------------------------------------
# Batched / parallel query execution (repro.exec)
# ----------------------------------------------------------------------
EXEC_BATCHES = REGISTRY.counter_family(
    "repro_exec_batches_total",
    "Query batches executed, by execution mode (sequential/parallel).",
    label_names=("mode",),
)
EXEC_BATCH_QUERIES = REGISTRY.counter(
    "repro_exec_batch_queries_total",
    "Individual queries answered through the batch execution engine.",
)
EXEC_CHUNKS = REGISTRY.counter_family(
    "repro_exec_chunks_total",
    "Batch chunks executed, by worker thread and kernel backend.",
    label_names=("worker", "backend"),
)
EXEC_FALLBACKS = REGISTRY.counter(
    "repro_exec_sequential_fallbacks_total",
    "Parallel batches degraded to sequential (pool unavailable).",
)
EXEC_TIMEOUTS = REGISTRY.counter(
    "repro_exec_batch_timeouts_total",
    "Batches aborted by the per-batch deadline.",
)
EXEC_BATCH_SECONDS = REGISTRY.histogram(
    "repro_exec_batch_seconds",
    "Wall-clock duration of one executed batch.",
)

# ----------------------------------------------------------------------
# Network query service (repro.serve)
# ----------------------------------------------------------------------
SERVE_REQUESTS = REGISTRY.counter_family(
    "repro_serve_requests_total",
    "HTTP requests served, by endpoint and response status code.",
    label_names=("endpoint", "code"),
)
SERVE_REJECTED = REGISTRY.counter(
    "repro_serve_rejected_total",
    "Requests rejected by admission control (429 overload / 503 drain).",
)
SERVE_INFLIGHT = REGISTRY.gauge(
    "repro_serve_inflight",
    "Requests currently admitted and executing.",
)
SERVE_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_serve_request_seconds",
    "Wall-clock service time of one admitted request.",
)
SERVE_DRAINS = REGISTRY.counter(
    "repro_serve_drains_total",
    "Graceful shutdowns begun (SIGTERM/SIGINT drains).",
)
SERVE_ENDPOINT_SECONDS = REGISTRY.histogram_family(
    "repro_serve_endpoint_seconds",
    "End-to-end request wall time by endpoint (the SLO latency signal).",
    label_names=("endpoint",),
)
SERVE_STAGE_SECONDS = REGISTRY.histogram_family(
    "repro_serve_stage_seconds",
    "Per-request wall time by endpoint and stage "
    "(parse / admit / queue.wait / exec / encode).",
    label_names=("endpoint", "stage"),
)
HTTP_DEPRECATED = REGISTRY.counter_family(
    "repro_http_deprecated_requests_total",
    "Requests served through the deprecated pre-/v1 endpoints.",
    label_names=("endpoint",),
)

# ----------------------------------------------------------------------
# Sharded scatter-gather serving (repro.shard)
# ----------------------------------------------------------------------
SHARD_PLANS = REGISTRY.counter(
    "repro_shard_plans_total",
    "Scatter-gather query plans produced (one per planned RangeReach).",
)
SHARD_SCATTER_BATCHES = REGISTRY.counter(
    "repro_shard_scatter_batches_total",
    "Batches planned and scattered across the shards.",
)
SHARD_SUBQUERIES = REGISTRY.counter_family(
    "repro_shard_subqueries_total",
    "Per-shard sub-queries dispatched by the scatter-gather planner.",
    label_names=("shard",),
)
SHARD_REGION_PRUNED = REGISTRY.counter(
    "repro_shard_region_pruned_total",
    "Shards skipped because their venue MBR misses the query region.",
)
SHARD_SOURCE_PRUNED = REGISTRY.counter(
    "repro_shard_source_pruned_total",
    "Shards skipped because the boundary graph proves them unreachable.",
)
SHARD_TOUCHED = REGISTRY.counter(
    "repro_shard_touched_total",
    "Shards that survived pruning and received a sub-query.",
)
SHARD_DELTA_OPS = REGISTRY.gauge_family(
    "repro_shard_delta_ops",
    "Operations currently logged against each shard's live snapshot.",
    label_names=("shard",),
)
SHARD_BOUNDARY_PROBES = REGISTRY.counter(
    "repro_shard_boundary_probes_total",
    "Exit-set reachability probes issued by the boundary-graph planner.",
)

# ----------------------------------------------------------------------
# Vectorized kernels (repro.kernels)
# ----------------------------------------------------------------------
KERNEL_BACKEND = REGISTRY.gauge_family(
    "repro_kernel_backend",
    "1 for every kernel backend that has been resolved in this process.",
    label_names=("backend",),
)
KERNEL_INVOCATIONS = REGISTRY.counter_family(
    "repro_kernel_invocations_total",
    "Kernel probe invocations, by kernel kind and backend.",
    label_names=("kernel", "backend"),
)

# ----------------------------------------------------------------------
# Flight recorder (repro.obs.recorder)
# ----------------------------------------------------------------------
RECORDER_REQUESTS = REGISTRY.counter(
    "repro_recorder_requests_total",
    "Request traces offered to the flight recorder.",
)
RECORDER_ERRORS = REGISTRY.counter(
    "repro_recorder_errors_total",
    "Errored request traces retained by the flight recorder.",
)

# ----------------------------------------------------------------------
# SLO monitoring (repro.obs.slo)
# ----------------------------------------------------------------------
SLO_BURN_RATE = REGISTRY.gauge_family(
    "repro_slo_burn_rate",
    "Error-budget burn rate by endpoint, SLI (latency/availability) and "
    "window; 1.0 spends exactly the budget, >1 is on track to miss.",
    label_names=("endpoint", "sli", "window"),
)
SLO_BUDGET_REMAINING = REGISTRY.gauge_family(
    "repro_slo_error_budget_remaining",
    "Fraction of the error budget left over the longest burn window, "
    "by endpoint and SLI (1 = untouched, 0 = exhausted).",
    label_names=("endpoint", "sli"),
)
SLO_FAST_BURN = REGISTRY.gauge_family(
    "repro_slo_fast_burn",
    "1 while an endpoint burns budget faster than the alert factor in "
    "every window (the page-now condition), else 0.",
    label_names=("endpoint",),
)

# ----------------------------------------------------------------------
# Snapshot store (repro.store) persistence
# ----------------------------------------------------------------------
STORE_SAVES = REGISTRY.counter(
    "repro_store_saves_total",
    "Snapshots written to disk (atomic manifest + parts directories).",
)
STORE_LOADS = REGISTRY.counter(
    "repro_store_loads_total",
    "Snapshots loaded and verified from disk (warm starts).",
)
STORE_SAVE_BYTES = REGISTRY.counter(
    "repro_store_save_bytes_total",
    "Artifact part bytes written by snapshot saves.",
)
STORE_LOAD_BYTES = REGISTRY.counter(
    "repro_store_load_bytes_total",
    "Artifact part bytes read and checksum-verified by snapshot loads.",
)
STORE_SAVE_SECONDS = REGISTRY.histogram(
    "repro_store_save_seconds",
    "Wall-clock duration of one snapshot save (encode + fsync + rename).",
)
STORE_LOAD_SECONDS = REGISTRY.histogram(
    "repro_store_load_seconds",
    "Wall-clock duration of one snapshot load (verify + decode + seed).",
)

# ----------------------------------------------------------------------
# Shared build pipeline (BuildContext artifact cache)
# ----------------------------------------------------------------------
PIPELINE_CACHE_HITS = REGISTRY.counter_family(
    "repro_pipeline_cache_hits_total",
    "BuildContext artifact-cache hits, by artifact kind.",
    label_names=("artifact",),
)
PIPELINE_CACHE_MISSES = REGISTRY.counter_family(
    "repro_pipeline_cache_misses_total",
    "BuildContext artifact-cache misses (= actual constructions), "
    "by artifact kind.",
    label_names=("artifact",),
)


def pipeline_build_seconds(artifact: str):
    """Get-or-create the build-duration histogram of one artifact kind.

    Kinds are open-ended (``condense``, ``labeling``, ``feed``, ``rtree``,
    ``slabs``, ``columns``); the registry's get-or-create semantics make
    this safe to call on every cache miss.
    """
    return REGISTRY.histogram(
        f"repro_pipeline_{artifact}_build_seconds",
        f"Wall-clock seconds spent building {artifact} artifacts "
        "(cache misses only).",
    )
