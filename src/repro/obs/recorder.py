"""Slow-query flight recorder: bounded retention of request traces.

The recorder is the serving stack's black box.  Every finished request
offers its :class:`~repro.obs.trace.Trace` (plus endpoint, status and
wall-clock start) and the recorder retains, under one lock and hard
memory bounds:

* the **K slowest** requests seen so far (a min-heap on duration) —
  the population ``/debug/slow`` serves;
* **errored** requests (status >= 400 or a transport error), newest
  first in a bounded ring — ``/debug/errors``;
* the **most recent** requests in a bounded ring, plus a deterministic
  **1-in-N sample** retained in a second ring so the sample window
  stretches ``sample_every`` times further back than the recent ring —
  ``/debug/traces``.

Retention is by *serialized* span tree (:meth:`Trace.to_dict` with a
span budget), so one entry's memory is bounded no matter how large the
batch behind it was, and lookups return JSON-ready dicts.  An optional
**JSONL access log** appends one line per request with the per-stage
wall-time attribution (queue-wait / exec / encode ...), without the
span tree — the greppable long-term record.

All methods are thread-safe; the serving threads of
:class:`~repro.serve.http.QueryHTTPServer` record concurrently.
"""

from __future__ import annotations

import heapq
import io
import json
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import Trace

__all__ = ["FlightRecorder", "RecordedRequest"]

#: Span budget applied when serializing a trace into an entry; keeps one
#: retained entry's memory bounded regardless of batch size.
DEFAULT_MAX_SPANS = 256


@dataclass
class RecordedRequest:
    """One finished request, as retained by the recorder."""

    trace_id: str
    endpoint: str
    status: int
    started: float  # wall-clock epoch seconds at request start
    duration: float  # server-side wall seconds (trace root duration)
    stages: dict[str, float] = field(default_factory=dict)  # name -> seconds
    unattributed: float = 0.0  # root time not covered by stage spans
    trace: dict = field(default_factory=dict)  # serialized span tree
    error: str | None = None

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        *,
        endpoint: str,
        status: int,
        started: float,
        error: str | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> "RecordedRequest":
        stages = trace.stage_seconds()
        duration = trace.duration
        return cls(
            trace_id=trace.trace_id,
            endpoint=endpoint,
            status=status,
            started=started,
            duration=duration,
            stages=stages,
            unattributed=max(0.0, duration - sum(stages.values())),
            trace=trace.to_dict(max_spans=max_spans),
            error=error,
        )

    def to_dict(self, *, include_trace: bool = True) -> dict:
        out = {
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "status": self.status,
            "started": self.started,
            "duration_s": self.duration,
            "stages_s": {k: v for k, v in sorted(self.stages.items())},
            "unattributed_s": self.unattributed,
        }
        if self.error is not None:
            out["error"] = self.error
        if include_trace:
            out["trace"] = self.trace
        return out


class FlightRecorder:
    """Bounded, thread-safe retention of recent/slow/errored requests.

    Args:
        slow_k: how many slowest requests to retain (min-heap eviction:
            a new entry displaces the fastest retained one).
        recent_n: ring size for the most recent requests and for the
            deterministic sample.
        errors_n: ring size for errored requests.
        sample_every: retain every Nth request in the sample ring (a
            counter, not a coin flip — deterministic under replay).
        access_log: path (or open text file) for the JSONL access log;
            None disables it.  Lines carry stage attribution but no span
            tree.
    """

    def __init__(
        self,
        *,
        slow_k: int = 32,
        recent_n: int = 256,
        errors_n: int = 64,
        sample_every: int = 16,
        max_spans: int = DEFAULT_MAX_SPANS,
        access_log=None,
    ) -> None:
        if slow_k < 1 or recent_n < 1 or errors_n < 1:
            raise ValueError("retention bounds must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._slow_k = slow_k
        self._max_spans = max_spans
        self._sample_every = sample_every
        self._lock = threading.Lock()
        self._seq = 0
        # (duration, seq) min-heap of the K slowest; seq breaks ties.
        self._slow: list[tuple[float, int, RecordedRequest]] = []
        self._recent: deque[RecordedRequest] = deque(maxlen=recent_n)
        self._sampled: deque[RecordedRequest] = deque(maxlen=recent_n)
        self._errors: deque[RecordedRequest] = deque(maxlen=errors_n)
        self._errors_seen = 0
        self._log_handle: io.TextIOBase | None = None
        self._owns_log = False
        if access_log is not None:
            if hasattr(access_log, "write"):
                self._log_handle = access_log
            else:
                self._log_handle = open(access_log, "a", encoding="utf-8")
                self._owns_log = True

    # ------------------------------------------------------------------
    @property
    def recorded(self) -> int:
        """Requests offered to the recorder so far."""
        return self._seq

    def record_trace(
        self,
        trace: Trace,
        *,
        endpoint: str,
        status: int,
        started: float,
        error: str | None = None,
    ) -> RecordedRequest:
        """Serialize and retain one finished request's trace."""
        entry = RecordedRequest.from_trace(
            trace,
            endpoint=endpoint,
            status=status,
            started=started,
            error=error,
            max_spans=self._max_spans,
        )
        self.record(entry)
        return entry

    def record(self, entry: RecordedRequest) -> None:
        """Retain one entry (thread-safe; all bounds enforced here)."""
        errored = entry.status >= 400 or entry.error is not None
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._recent.append(entry)
            if seq % self._sample_every == 0:
                self._sampled.append(entry)
            if errored:
                self._errors_seen += 1
                self._errors.append(entry)
            if len(self._slow) < self._slow_k:
                heapq.heappush(self._slow, (entry.duration, seq, entry))
            elif entry.duration > self._slow[0][0]:
                heapq.heapreplace(self._slow, (entry.duration, seq, entry))
            log = self._log_handle
            if log is not None:
                line = json.dumps(
                    entry.to_dict(include_trace=False), sort_keys=True
                )
                try:
                    log.write(line + "\n")
                    log.flush()
                except (OSError, ValueError):
                    # A dead log sink must never fail request serving.
                    self._log_handle = None
        if _obs_enabled():
            _inst.RECORDER_REQUESTS.inc()
            if errored:
                _inst.RECORDER_ERRORS.inc()

    # ------------------------------------------------------------------
    # Read side (each view is a fresh list of JSON-ready dicts)
    # ------------------------------------------------------------------
    def slowest(self, limit: int | None = None) -> list[dict]:
        """The retained slowest requests, slowest first."""
        with self._lock:
            ordered = sorted(self._slow, key=lambda t: (-t[0], t[1]))
        entries = [entry for _, _, entry in ordered]
        return [e.to_dict() for e in entries[: limit or len(entries)]]

    def errors(self, limit: int | None = None) -> list[dict]:
        """Retained errored requests, newest first."""
        with self._lock:
            entries = list(self._errors)
        entries.reverse()
        return [e.to_dict() for e in entries[: limit or len(entries)]]

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most recent requests, newest first."""
        with self._lock:
            entries = list(self._recent)
        entries.reverse()
        return [e.to_dict() for e in entries[: limit or len(entries)]]

    def sampled(self, limit: int | None = None) -> list[dict]:
        """The deterministic 1-in-N sample, newest first."""
        with self._lock:
            entries = list(self._sampled)
        entries.reverse()
        return [e.to_dict() for e in entries[: limit or len(entries)]]

    def find(self, trace_id: str) -> dict | None:
        """Look one trace up by id across every retained population."""
        with self._lock:
            pools = (
                self._recent,
                self._sampled,
                self._errors,
                [entry for _, _, entry in self._slow],
            )
            for pool in pools:
                for entry in pool:
                    if entry.trace_id == trace_id:
                        return entry.to_dict()
        return None

    def stats(self) -> dict:
        """Retention counters for ``/debug`` headers and tests."""
        with self._lock:
            return {
                "recorded": self._seq,
                "errors_seen": self._errors_seen,
                "slow_kept": len(self._slow),
                "recent_kept": len(self._recent),
                "sampled_kept": len(self._sampled),
                "errors_kept": len(self._errors),
                "slow_k": self._slow_k,
                "sample_every": self._sample_every,
            }

    def close(self) -> None:
        """Close an owned access-log handle (idempotent)."""
        with self._lock:
            if self._owns_log and self._log_handle is not None:
                try:
                    self._log_handle.close()
                except OSError:
                    pass
            self._log_handle = None
