"""Per-query tracing: a span tree with monotonic timings + counter deltas.

A trace is opened around one query (``with trace("3dreach.query"): ...``);
instrumented code inside opens nested spans (``with span("rtree.search")``)
that record a ``time.perf_counter`` interval and the registry counter
samples that moved while the span was open.  The result attributes both
*time* and *work* to each phase of a query — the per-query analogue of
the paper's access-count tables.

When no trace is active, :func:`span` returns a shared no-op context
manager, so leaving the instrumentation in hot paths costs one ``None``
check per span site.  Traces are **thread-local** and non-reentrant (one
trace per thread): a trace opened on the serving thread never sees spans
opened by other threads *unless* the trace is explicitly handed across
with :func:`capture` — the serving thread captures a
:class:`TraceContext` at a span site, worker threads ``attach`` to it,
and their finished span subtrees are stitched (under a lock) into the
capturing span.  :func:`record_span` remains for attaching already-timed
flat intervals from the owning thread.

Every trace carries a **trace id** — a 32-hex-digit token in the W3C
``traceparent`` trace-id format — either supplied by the caller (e.g.
parsed from an incoming HTTP header) or generated.  Serialization to
plain dicts (:meth:`Trace.to_dict`) and per-stage wall-time attribution
(:meth:`Trace.stage_seconds`) feed the flight recorder and the
``/debug/*`` endpoints in :mod:`repro.serve`.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Iterator

from repro.obs.metrics import REGISTRY

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "trace",
    "span",
    "active_trace",
    "tracing",
    "record_span",
    "capture",
    "new_trace_id",
    "parse_traceparent",
    "valid_request_id",
]


_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_TOKEN_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id, 32 lowercase hex digits (W3C format)."""
    return os.urandom(16).hex()


def parse_traceparent(header: str | None) -> str | None:
    """Extract the trace-id field of a W3C ``traceparent`` header.

    ``00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`` → trace-id.
    Returns None for a missing or malformed header (including the
    all-zero trace id the spec forbids).
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    trace_id = parts[1].lower()
    if not _TRACE_ID_RE.match(trace_id) or trace_id == "0" * 32:
        return None
    return trace_id


def valid_request_id(token: str | None) -> bool:
    """True iff ``token`` is acceptable as a caller-supplied request id.

    More permissive than the W3C trace-id (any short URL-safe token), so
    clients can correlate with their own ids; bounded so a hostile
    header cannot bloat logs or responses.
    """
    return bool(token) and _TOKEN_RE.match(token) is not None


class Span:
    """One timed phase of a query, with child spans and counter deltas."""

    __slots__ = (
        "name", "start", "end", "children", "counters", "_before", "_sample"
    )

    def __init__(self, name: str, *, sample_counters: bool = True) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list["Span"] = []
        # Counter samples that changed while the span was open:
        # sample_key -> delta (includes work done in child spans).
        self.counters: dict[str, int | float] = {}
        self._before: dict[str, int | float] = {}
        # Root spans of serving traces skip the registry walk: their
        # deltas are redundant with the children's, and the walk is the
        # single biggest source of unattributed root self-time.
        self._sample = sample_counters

    @property
    def duration(self) -> float:
        """Wall-clock seconds between span open and close."""
        return self.end - self.start

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs in pre-order."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def _open(self) -> None:
        # Timestamps bracket the counter sampling: the cost of walking
        # the registry is charged to *this* span's interval, not left as
        # unattributed time on the parent (with several stage spans per
        # request those walks would otherwise dominate the gap).
        self.start = time.perf_counter()
        if self._sample:
            self._before = REGISTRY.counter_samples()

    def _close(self) -> None:
        if self._sample:
            after = REGISTRY.counter_samples()
            before = self._before
            self.counters = {
                key: value - before.get(key, 0)
                for key, value in after.items()
                if value != before.get(key, 0)
            }
            self._before = {}
        self.end = time.perf_counter()

    def span_count(self) -> int:
        """Total number of spans in this subtree (including self)."""
        return sum(1 for _ in self.walk())

    def to_dict(
        self, *, origin: float | None = None, max_spans: int | None = None
    ) -> dict:
        """Serialize the subtree to plain JSON-safe dicts.

        Times become microsecond offsets relative to ``origin`` (default:
        this span's start), so serialized trees are stable across
        processes.  ``max_spans`` bounds the output size: once the budget
        is spent, remaining children are dropped and counted in a
        ``"dropped_spans"`` field on their parent — the flight recorder
        uses this to keep giant batch traces bounded in memory.
        """
        origin = self.start if origin is None else origin
        remaining = [float("inf") if max_spans is None else max_spans]

        def serialize(node: Span) -> dict:
            remaining[0] -= 1
            out: dict = {
                "name": node.name,
                "offset_us": round((node.start - origin) * 1e6, 1),
                "duration_us": round(node.duration * 1e6, 1),
            }
            if node.counters:
                out["counters"] = dict(node.counters)
            children = []
            dropped = 0
            for child in node.children:
                if remaining[0] < 1:
                    dropped += 1
                else:
                    children.append(serialize(child))
            if children:
                out["children"] = children
            if dropped:
                out["dropped_spans"] = dropped
            return out

        return serialize(self)


class Trace:
    """A completed (or in-flight) span tree for one query."""

    def __init__(
        self,
        root: Span,
        trace_id: str | None = None,
        *,
        sample_counters: bool = True,
    ) -> None:
        self.root = root
        self.trace_id = trace_id if trace_id else new_trace_id()
        # Whole-trace policy: spans opened under this trace (including
        # worker subtrees attached via TraceContext) inherit it, so a
        # ``counters=False`` serving trace never pays the registry walk.
        self.sample_counters = sample_counters

    @property
    def duration(self) -> float:
        return self.root.duration

    def stage_seconds(self) -> dict[str, float]:
        """Wall time of each *top-level* child span, name -> seconds.

        Spans sharing a name (e.g. repeated ``queue.wait``) are summed.
        This is the per-stage attribution the flight recorder and the
        JSONL access log report: direct children of the request root are
        the request's stages; deeper spans refine a stage, they never
        add to the total.
        """
        stages: dict[str, float] = {}
        for child in self.root.children:
            stages[child.name] = stages.get(child.name, 0.0) + child.duration
        return stages

    def attributed_fraction(self) -> float:
        """Share of the root's wall time covered by its stage spans."""
        total = self.duration
        if total <= 0:
            return 1.0
        covered = sum(self.stage_seconds().values())
        return max(0.0, min(1.0, covered / total))

    def to_dict(self, *, max_spans: int | None = None) -> dict:
        """Serialize trace id, duration and the span tree (JSON-safe)."""
        return {
            "trace_id": self.trace_id,
            "duration_us": round(self.duration * 1e6, 1),
            "spans": self.root.to_dict(max_spans=max_spans),
        }

    def format(self) -> str:
        """Render the span tree as indented text with us timings."""
        lines = []
        for depth, node in self.root.walk():
            label = f"{'  ' * depth}{node.name}"
            line = f"{label:<40} {node.duration * 1e6:10.1f}us"
            if node.counters:
                deltas = " ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(node.counters.items())
                )
                line += f"  [{deltas}]"
            lines.append(line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Thread-local state: the active trace and the innermost open span.
# Worker threads start with neither, so spans opened inside a parallel
# chunk are no-ops rather than racing on the serving thread's tree.
# ----------------------------------------------------------------------
_STATE = threading.local()


def _get_active() -> Trace | None:
    return getattr(_STATE, "active", None)


def _get_current() -> Span | None:
    return getattr(_STATE, "current", None)


def active_trace() -> Trace | None:
    """Return the trace currently being recorded on this thread, if any."""
    return _get_active()


def tracing() -> bool:
    """True iff a trace is being recorded on this thread right now."""
    return _get_active() is not None


class _NoopSpan:
    """Shared do-nothing context manager for the inactive fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanContext:
    __slots__ = ("_span", "_parent")

    def __init__(self, name: str, *, sample_counters: bool = True) -> None:
        self._span = Span(name, sample_counters=sample_counters)
        self._parent: Span | None = None

    def __enter__(self) -> Span:
        self._parent = _get_current()
        if self._parent is not None:
            self._parent.children.append(self._span)
        _STATE.current = self._span
        self._span._open()
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span._close()
        _STATE.current = self._parent
        return False


def span(name: str):
    """Open a child span of the running trace; no-op when not tracing."""
    active = _get_active()
    if active is None:
        return _NOOP_SPAN
    return _SpanContext(name, sample_counters=active.sample_counters)


def record_span(name: str, start: float, end: float) -> Span | None:
    """Attach an already-timed span to the innermost open span.

    Fallback stitching path: a thread holding the trace records plain
    ``perf_counter`` intervals measured elsewhere (e.g. worker chunk
    timings collected after the fact).  No-op (returns None) when the
    calling thread is not tracing.  Prefer :func:`capture` when the
    worker itself can participate — attached spans keep their nested
    structure; recorded spans are flat.
    """
    current = _get_current()
    if current is None:
        return None
    child = Span(name)
    child.start = start
    child.end = end
    current.children.append(child)
    return child


# ----------------------------------------------------------------------
# Cross-thread handoff
# ----------------------------------------------------------------------
class TraceContext:
    """A captured point in a live trace that other threads can attach to.

    Created by :func:`capture` on the thread that owns the trace.  A
    worker thread then opens a subtree with ``with ctx.attach(name):`` —
    inside the block the worker has the trace active (nested
    :func:`span` calls work normally, building a worker-local subtree),
    and on exit the finished subtree is appended to the captured span
    under a lock.  The capturing thread must keep the captured span open
    until every attached worker has exited its block (the executor
    guarantees this by joining its futures inside the span).
    """

    __slots__ = ("_trace", "_parent", "_lock")

    def __init__(self, trace: "Trace", parent: Span) -> None:
        self._trace = trace
        self._parent = parent
        self._lock = threading.Lock()

    @property
    def trace_id(self) -> str:
        return self._trace.trace_id

    def attach(self, name: str) -> "_AttachedSpan":
        """Open a span subtree on the calling thread, stitched on exit."""
        return _AttachedSpan(self, name)

    def _stitch(self, finished: Span) -> None:
        with self._lock:
            if self._parent.end:
                # The captured span already closed (e.g. the batch timed
                # out and abandoned this chunk): drop the subtree rather
                # than mutating a tree the recorder may be serializing.
                return
            self._parent.children.append(finished)


class _AttachedSpan:
    """Context manager running one cross-thread subtree (see above)."""

    __slots__ = ("_context", "_span", "_saved")

    def __init__(self, context: TraceContext, name: str) -> None:
        self._context = context
        self._span = Span(
            name, sample_counters=context._trace.sample_counters
        )
        self._saved: tuple[Trace | None, Span | None] = (None, None)

    def __enter__(self) -> Span:
        self._saved = (_get_active(), _get_current())
        _STATE.active = self._context._trace
        _STATE.current = self._span
        self._span._open()
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span._close()
        _STATE.active, _STATE.current = self._saved
        self._context._stitch(self._span)
        return False


def capture() -> TraceContext | None:
    """Capture the active trace at the current span for worker handoff.

    Returns None when the calling thread is not tracing, so call sites
    can hand the result to workers unconditionally and workers fall
    back to untraced execution.
    """
    active = _get_active()
    current = _get_current()
    if active is None or current is None:
        return None
    return TraceContext(active, current)


class trace:
    """Record a span tree for the enclosed block.

    Usage::

        with obs.trace("query") as t:
            method.query(v, region)
        print(t.format())

    Traces do not nest — a second ``trace`` while one is active on the
    same thread raises, which catches accidental tracing of re-entrant
    query paths.  ``trace_id`` pins the trace's identity (e.g. a request
    id parsed from an HTTP header); omitted, a fresh W3C-format id is
    generated.  ``counters=False`` disables counter sampling for the
    whole trace — root, child spans and cross-thread subtrees alike —
    and the serving path uses it: two registry walks per span would
    dominate sub-millisecond requests, and the deltas are redundant with
    the aggregate ``/metrics`` counters.
    """

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        counters: bool = True,
    ) -> None:
        self._context = _SpanContext(name, sample_counters=counters)
        self._trace = Trace(
            self._context._span, trace_id=trace_id, sample_counters=counters
        )

    def __enter__(self) -> Trace:
        if _get_active() is not None:
            raise RuntimeError("a trace is already active")
        _STATE.active = self._trace
        self._context.__enter__()
        return self._trace

    def __exit__(self, *exc_info) -> bool:
        self._context.__exit__(*exc_info)
        _STATE.active = None
        _STATE.current = None
        return False
