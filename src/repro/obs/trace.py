"""Per-query tracing: a span tree with monotonic timings + counter deltas.

A trace is opened around one query (``with trace("3dreach.query"): ...``);
instrumented code inside opens nested spans (``with span("rtree.search")``)
that record a ``time.perf_counter`` interval and the registry counter
samples that moved while the span was open.  The result attributes both
*time* and *work* to each phase of a query — the per-query analogue of
the paper's access-count tables.

When no trace is active, :func:`span` returns a shared no-op context
manager, so leaving the instrumentation in hot paths costs one ``None``
check per span site.  Traces are **thread-local** and non-reentrant (one
trace per thread): a trace opened on the serving thread never sees spans
opened by :class:`~repro.exec.ParallelExecutor` worker threads — workers
run with no active trace, and the executor attaches their chunk timings
to the batch trace afterwards via :func:`record_span`.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

from repro.obs.metrics import REGISTRY

__all__ = [
    "Span",
    "Trace",
    "trace",
    "span",
    "active_trace",
    "tracing",
    "record_span",
]


class Span:
    """One timed phase of a query, with child spans and counter deltas."""

    __slots__ = ("name", "start", "end", "children", "counters", "_before")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list["Span"] = []
        # Counter samples that changed while the span was open:
        # sample_key -> delta (includes work done in child spans).
        self.counters: dict[str, int | float] = {}
        self._before: dict[str, int | float] = {}

    @property
    def duration(self) -> float:
        """Wall-clock seconds between span open and close."""
        return self.end - self.start

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs in pre-order."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def _open(self) -> None:
        self._before = REGISTRY.counter_samples()
        self.start = time.perf_counter()

    def _close(self) -> None:
        self.end = time.perf_counter()
        after = REGISTRY.counter_samples()
        before = self._before
        self.counters = {
            key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)
        }
        self._before = {}


class Trace:
    """A completed (or in-flight) span tree for one query."""

    def __init__(self, root: Span) -> None:
        self.root = root

    @property
    def duration(self) -> float:
        return self.root.duration

    def format(self) -> str:
        """Render the span tree as indented text with us timings."""
        lines = []
        for depth, node in self.root.walk():
            label = f"{'  ' * depth}{node.name}"
            line = f"{label:<40} {node.duration * 1e6:10.1f}us"
            if node.counters:
                deltas = " ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(node.counters.items())
                )
                line += f"  [{deltas}]"
            lines.append(line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Thread-local state: the active trace and the innermost open span.
# Worker threads start with neither, so spans opened inside a parallel
# chunk are no-ops rather than racing on the serving thread's tree.
# ----------------------------------------------------------------------
_STATE = threading.local()


def _get_active() -> Trace | None:
    return getattr(_STATE, "active", None)


def _get_current() -> Span | None:
    return getattr(_STATE, "current", None)


def active_trace() -> Trace | None:
    """Return the trace currently being recorded on this thread, if any."""
    return _get_active()


def tracing() -> bool:
    """True iff a trace is being recorded on this thread right now."""
    return _get_active() is not None


class _NoopSpan:
    """Shared do-nothing context manager for the inactive fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _SpanContext:
    __slots__ = ("_span", "_parent")

    def __init__(self, name: str) -> None:
        self._span = Span(name)
        self._parent: Span | None = None

    def __enter__(self) -> Span:
        self._parent = _get_current()
        if self._parent is not None:
            self._parent.children.append(self._span)
        _STATE.current = self._span
        self._span._open()
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span._close()
        _STATE.current = self._parent
        return False


def span(name: str):
    """Open a child span of the running trace; no-op when not tracing."""
    if _get_active() is None:
        return _NOOP_SPAN
    return _SpanContext(name)


def record_span(name: str, start: float, end: float) -> Span | None:
    """Attach an already-timed span to the innermost open span.

    Used by the parallel executor: worker threads record plain
    ``perf_counter`` intervals (they have no active trace of their own),
    and the serving thread stitches them into the batch's span tree once
    the chunk results are collected.  No-op (returns None) when the
    calling thread is not tracing.
    """
    current = _get_current()
    if current is None:
        return None
    child = Span(name)
    child.start = start
    child.end = end
    current.children.append(child)
    return child


class trace:
    """Record a span tree for the enclosed block.

    Usage::

        with obs.trace("query") as t:
            method.query(v, region)
        print(t.format())

    Traces do not nest — a second ``trace`` while one is active on the
    same thread raises, which catches accidental tracing of re-entrant
    query paths.
    """

    def __init__(self, name: str) -> None:
        self._context = _SpanContext(name)
        self._trace = Trace(self._context._span)

    def __enter__(self) -> Trace:
        if _get_active() is not None:
            raise RuntimeError("a trace is already active")
        _STATE.active = self._trace
        self._context.__enter__()
        return self._trace

    def __exit__(self, *exc_info) -> bool:
        self._context.__exit__(*exc_info)
        _STATE.active = None
        _STATE.current = None
        return False
