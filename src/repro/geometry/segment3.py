"""Vertical line segments in three dimensions.

3DReach-Rev models every spatial vertex as a set of *vertical* segments:
the segment sits at the vertex's ``(x, y)`` location and spans one reversed
interval label ``[l, h]`` along the third (post-order) axis.  A query is a
single horizontal slab at ``z = post(v)``; the answer is TRUE iff the slab
cuts at least one segment whose ``(x, y)`` lies inside the query region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.box3 import Box3


@dataclass(frozen=True, slots=True)
class Segment3:
    """An immutable vertical segment at ``(x, y)`` spanning ``[zlo, zhi]``."""

    x: float
    y: float
    zlo: float
    zhi: float

    def __post_init__(self) -> None:
        if self.zlo > self.zhi:
            raise ValueError(f"degenerate segment: z {self.zlo} > {self.zhi}")

    @property
    def bounds(self) -> Box3:
        """Return the (degenerate in x/y) bounding box of the segment."""
        return Box3(self.x, self.y, self.zlo, self.x, self.y, self.zhi)

    def intersects_box(self, box: Box3) -> bool:
        """Return True iff any point of the segment lies inside ``box``.

        Because the segment is axis-parallel its bounding box *is* the
        segment, so box intersection is exact (no refinement step needed).
        This mirrors the observation in the paper that Boost's R-tree treats
        segments and boxes alike.
        """
        return (
            box.xlo <= self.x <= box.xhi
            and box.ylo <= self.y <= box.yhi
            and self.zlo <= box.zhi
            and box.zlo <= self.zhi
        )

    def cut_by_plane(self, z: float) -> bool:
        """Return True iff the horizontal plane at height ``z`` cuts it."""
        return self.zlo <= z <= self.zhi
