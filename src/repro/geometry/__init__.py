"""Geometric primitives used throughout the library.

The paper models spatial activity as points in the two-dimensional plane,
query regions as axis-aligned rectangles, and the 3DReach transformation
lifts both into three dimensions (axis-aligned boxes and vertical line
segments).  Everything in this package is a small immutable value type with
exact containment/intersection predicates; no external geometry library is
used.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect, as_rect
from repro.geometry.box3 import Box3
from repro.geometry.segment3 import Segment3

__all__ = ["Point", "Rect", "as_rect", "Box3", "Segment3"]
