"""Axis-aligned boxes in three dimensions.

The 3DReach method rewrites a ``RangeReach`` query as a set of
three-dimensional range queries: the base of each cuboid is the query
region ``R`` and the third axis spans one interval label ``[l, h]``.
``Box3`` is that cuboid type and also the bounding volume of the 3-D
R-tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Box3:
    """An immutable axis-aligned box ``[xlo,xhi] x [ylo,yhi] x [zlo,zhi]``."""

    xlo: float
    ylo: float
    zlo: float
    xhi: float
    yhi: float
    zhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi or self.zlo > self.zhi:
            raise ValueError(
                f"degenerate box: ({self.xlo}, {self.ylo}, {self.zlo}) .. "
                f"({self.xhi}, {self.yhi}, {self.zhi})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rect(cls, rect: Rect, zlo: float, zhi: float) -> "Box3":
        """Lift a 2-D rectangle into 3-D by giving it a z-extent.

        This is exactly the paper's query rewriting: the cuboid for label
        ``[l, h]`` is ``Box3.from_rect(R, l, h)``.
        """
        return cls(rect.xlo, rect.ylo, zlo, rect.xhi, rect.yhi, zhi)

    @classmethod
    def from_point(cls, x: float, y: float, z: float) -> "Box3":
        """Return a degenerate (zero-volume) box at a single 3-D point."""
        return cls(x, y, z, x, y, z)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def base(self) -> Rect:
        """Return the projection onto the xy-plane."""
        return Rect(self.xlo, self.ylo, self.xhi, self.yhi)

    @property
    def volume(self) -> float:
        return (
            (self.xhi - self.xlo)
            * (self.yhi - self.ylo)
            * (self.zhi - self.zlo)
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_xyz(self, x: float, y: float, z: float) -> bool:
        """Return True iff the 3-D point lies inside this box."""
        return (
            self.xlo <= x <= self.xhi
            and self.ylo <= y <= self.yhi
            and self.zlo <= z <= self.zhi
        )

    def contains_box(self, other: "Box3") -> bool:
        """Return True iff ``other`` lies fully inside this box."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.zlo <= other.zlo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
            and other.zhi <= self.zhi
        )

    def intersects(self, other: "Box3") -> bool:
        """Return True iff the two boxes share at least one point."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
            and self.zlo <= other.zhi
            and other.zlo <= self.zhi
        )

    def union(self, other: "Box3") -> "Box3":
        """Return the smallest box enclosing both operands."""
        return Box3(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            min(self.zlo, other.zlo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
            max(self.zhi, other.zhi),
        )

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """Return ``(xlo, ylo, zlo, xhi, yhi, zhi)``."""
        return (self.xlo, self.ylo, self.zlo, self.xhi, self.yhi, self.zhi)
