"""Axis-aligned rectangles in the plane.

``Rect`` is the query-region type of the paper's ``RangeReach(G, v, R)``
operator and also the bounding-box type used by the 2-D R-tree and by
GeoReach's RMBR (reachability minimum bounding rectangle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Boundaries are inclusive, matching the closed-region semantics used for
    spatial range queries in the paper.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"degenerate rectangle: ({self.xlo}, {self.ylo}) .. "
                f"({self.xhi}, {self.yhi})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Return the minimum bounding rectangle of a non-empty point set."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot bound an empty point set") from None
        xlo = xhi = first.x
        ylo = yhi = first.y
        for p in it:
            if p.x < xlo:
                xlo = p.x
            elif p.x > xhi:
                xhi = p.x
            if p.y < ylo:
                ylo = p.y
            elif p.y > yhi:
                yhi = p.y
        return cls(xlo, ylo, xhi, yhi)

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Return the rectangle of the given extent centered on ``center``."""
        hw, hh = width / 2.0, height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Return True iff ``p`` lies inside this rectangle (boundary in)."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_xy(self, x: float, y: float) -> bool:
        """Coordinate-pair variant of :meth:`contains_point`."""
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def any_contained(self, xs, ys, lo: int = 0, hi: int | None = None) -> bool:
        """Batched containment: is any ``(xs[i], ys[i])``, ``lo <= i < hi``,
        inside this rectangle?

        ``xs``/``ys`` are parallel coordinate columns (``array('d')`` or
        any sliceable sequence); the scan iterates slices, so columnar
        callers avoid per-point object and attribute overhead.
        """
        if hi is None:
            hi = len(xs)
        rxlo, rylo, rxhi, ryhi = self.xlo, self.ylo, self.xhi, self.yhi
        for x, y in zip(xs[lo:hi], ys[lo:hi]):
            if rxlo <= x <= rxhi and rylo <= y <= ryhi:
                return True
        return False

    def first_contained(self, xs, ys, lo: int = 0, hi: int | None = None) -> int:
        """Return the first index in ``[lo, hi)`` whose ``(xs[i], ys[i])``
        lies inside this rectangle, or ``-1`` if none does.

        The index variant exists for instrumented callers that must know
        *how far* a scan ran before its early exit.
        """
        if hi is None:
            hi = len(xs)
        rxlo, rylo, rxhi, ryhi = self.xlo, self.ylo, self.xhi, self.yhi
        i = lo
        for x, y in zip(xs[lo:hi], ys[lo:hi]):
            if rxlo <= x <= rxhi and rylo <= y <= ryhi:
                return i
            i += 1
        return -1

    def contains_rect(self, other: "Rect") -> bool:
        """Return True iff ``other`` lies fully inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True iff the two rectangles share at least one point."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle enclosing both operands."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded_to(self, p: Point) -> "Rect":
        """Return the smallest rectangle enclosing this one and ``p``."""
        return Rect(
            min(self.xlo, p.x),
            min(self.ylo, p.y),
            max(self.xhi, p.x),
            max(self.yhi, p.y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlap of the two rectangles, or None if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(xlo, ylo, xhi, yhi)``."""
        return (self.xlo, self.ylo, self.xhi, self.yhi)


#: The region forms every query surface accepts: a :class:`Rect` or a
#: ``(xlo, ylo, xhi, yhi)`` sequence (see :func:`as_rect`).
RegionLike = "Rect | tuple[float, float, float, float] | list[float]"


def as_rect(region) -> Rect:
    """Coerce any accepted region form to a :class:`Rect`.

    The keyword-vocabulary rule of the unified query API: everywhere a
    region is taken — engine, database, sharded database, service, CLI,
    load generator — both a ``Rect`` and a plain ``(xlo, ylo, xhi, yhi)``
    tuple/list are accepted.  A ``Rect`` passes through unchanged (no
    copy); a 4-sequence is validated by the ``Rect`` constructor, so a
    degenerate region raises the same ``ValueError`` either way.
    """
    if isinstance(region, Rect):
        return region
    if isinstance(region, (tuple, list)) and len(region) == 4:
        xlo, ylo, xhi, yhi = region
        return Rect(float(xlo), float(ylo), float(xhi), float(yhi))
    raise TypeError(
        "region must be a Rect or a (xlo, ylo, xhi, yhi) sequence, "
        f"got {region!r}"
    )
