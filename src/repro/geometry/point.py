"""Two-dimensional points."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the two-dimensional plane.

    Coordinates are floats; the class is hashable so points can be used as
    dictionary keys (e.g. deduplicating venue locations).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return the point as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y
