"""A compact adjacency-list directed graph.

Vertices are dense integer identifiers ``0 .. n-1``; this keeps every
per-vertex attribute (labels, post-order numbers, points) a flat list and
matches how the paper's C++ implementation stores the networks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class DiGraph:
    """A directed graph over dense integer vertex ids.

    Parallel edges are silently deduplicated at :meth:`add_edge` time only
    when ``dedup=True`` is requested (deduplication costs a set per vertex
    and the bulk loaders already produce unique edges).
    """

    __slots__ = ("_succ", "_pred", "_num_edges", "_lazy")

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("number of vertices must be non-negative")
        self._succ: list[list[int]] = [[] for _ in range(num_vertices)]
        self._pred: list[list[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        # Validated adjacency columns awaiting materialization into
        # per-vertex rows (see :meth:`from_adjacency`); None once built.
        self._lazy: tuple | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls(num_vertices)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    @classmethod
    def from_adjacency(
        cls,
        num_vertices: int,
        out_counts: Sequence[int],
        out_targets: Sequence[int],
        in_counts: Sequence[int],
        in_sources: Sequence[int],
    ) -> "DiGraph":
        """Rebuild a graph from per-vertex adjacency columns.

        The bulk path of the snapshot loader: ``out_counts[v]`` gives the
        out-degree of each vertex and ``out_targets`` concatenates the
        successor lists in vertex order (``in_counts``/``in_sources``
        mirror the in-direction).  Adjacency order is preserved exactly,
        which keeps :meth:`edges` iteration deterministic.

        Lengths, vertex bounds and the per-direction edge totals are all
        validated here, eagerly — a corrupt column set never produces a
        graph object.  The slicing of the validated columns into
        per-vertex rows is deferred until the adjacency is first touched:
        consumers that only need vertex/edge counts (or none of the
        adjacency at all, like warm-started query engines that answer
        from index artifacts) never pay for row construction.
        """
        if len(out_counts) != num_vertices or len(in_counts) != num_vertices:
            raise ValueError("adjacency counts disagree with the vertex count")
        if len(out_targets) != len(in_sources):
            raise ValueError("adjacency directions disagree on the edge count")
        num_edges = len(out_targets)
        columns = []
        for counts, flat, what in (
            (out_counts, out_targets, "target"),
            (in_counts, in_sources, "source"),
        ):
            counts = list(counts)
            flat = list(flat)
            if num_vertices and min(counts) < 0:
                raise ValueError("negative adjacency count")
            if sum(counts) != num_edges:
                raise ValueError("adjacency counts disagree with the columns")
            if num_edges and (min(flat) < 0 or max(flat) >= num_vertices):
                raise IndexError(f"{what} vertex out of range")
            columns.append((counts, flat))
        graph = cls(0)
        graph._succ = None
        graph._pred = None
        graph._num_edges = num_edges
        graph._lazy = (num_vertices, columns)
        return graph

    def _materialize(self) -> None:
        """Slice deferred adjacency columns into per-vertex rows."""
        num_vertices, columns = self._lazy
        self._lazy = None
        for (counts, flat), attr in zip(columns, ("_succ", "_pred")):
            rows = []
            append = rows.append
            cursor = 0
            for count in counts:
                nxt = cursor + count
                append(flat[cursor:nxt])
                cursor = nxt
            setattr(self, attr, rows)

    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        if self._lazy is not None:
            self._materialize()
        self._succ.append([])
        self._pred.append([])
        return len(self._succ) - 1

    def add_edge(self, source: int, target: int) -> None:
        """Add the directed edge ``source -> target``."""
        if self._lazy is not None:
            self._materialize()
        if not (0 <= source < len(self._succ)):
            raise IndexError(f"source vertex {source} out of range")
        if not (0 <= target < len(self._succ)):
            raise IndexError(f"target vertex {target} out of range")
        self._succ[source].append(target)
        self._pred[target].append(source)
        self._num_edges += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Remove one occurrence of the edge ``source -> target``.

        Raises:
            ValueError: if the edge is not present.
        """
        if self._lazy is not None:
            self._materialize()
        try:
            self._succ[source].remove(target)
        except ValueError:
            raise ValueError(f"edge ({source}, {target}) not present") from None
        self._pred[target].remove(source)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        if self._lazy is not None:
            return self._lazy[0]
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        """Return the vertex id range."""
        return range(self.num_vertices)

    def successors(self, v: int) -> list[int]:
        """Return the out-neighbors of ``v`` (the list is owned, not a copy)."""
        if self._lazy is not None:
            self._materialize()
        return self._succ[v]

    def predecessors(self, v: int) -> list[int]:
        """Return the in-neighbors of ``v`` (the list is owned, not a copy)."""
        if self._lazy is not None:
            self._materialize()
        return self._pred[v]

    def out_degree(self, v: int) -> int:
        if self._lazy is not None:
            self._materialize()
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        if self._lazy is not None:
            self._materialize()
        return len(self._pred[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        if self._lazy is not None:
            self._materialize()
        for source, targets in enumerate(self._succ):
            for target in targets:
                yield (source, target)

    def has_edge(self, source: int, target: int) -> bool:
        """Return True iff the edge exists (linear in out-degree)."""
        if self._lazy is not None:
            self._materialize()
        return target in self._succ[source]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped.

        Used to build the *reversed* interval labeling of 3DReach-Rev.
        """
        if self._lazy is not None:
            self._materialize()
        reverse = DiGraph(self.num_vertices)
        for source, targets in enumerate(self._succ):
            for target in targets:
                reverse.add_edge(target, source)
        return reverse

    def deduplicated(self) -> "DiGraph":
        """Return a copy with parallel edges collapsed.

        Check-in data produces many repeated user->venue edges; reachability
        only cares about edge existence, so the loaders call this once.
        """
        if self._lazy is not None:
            self._materialize()
        out = DiGraph(self.num_vertices)
        for source, targets in enumerate(self._succ):
            seen: set[int] = set()
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    out.add_edge(source, target)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
