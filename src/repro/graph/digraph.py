"""A compact adjacency-list directed graph.

Vertices are dense integer identifiers ``0 .. n-1``; this keeps every
per-vertex attribute (labels, post-order numbers, points) a flat list and
matches how the paper's C++ implementation stores the networks.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class DiGraph:
    """A directed graph over dense integer vertex ids.

    Parallel edges are silently deduplicated at :meth:`add_edge` time only
    when ``dedup=True`` is requested (deduplication costs a set per vertex
    and the bulk loaders already produce unique edges).
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("number of vertices must be non-negative")
        self._succ: list[list[int]] = [[] for _ in range(num_vertices)]
        self._pred: list[list[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls(num_vertices)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self._succ.append([])
        self._pred.append([])
        return len(self._succ) - 1

    def add_edge(self, source: int, target: int) -> None:
        """Add the directed edge ``source -> target``."""
        if not (0 <= source < len(self._succ)):
            raise IndexError(f"source vertex {source} out of range")
        if not (0 <= target < len(self._succ)):
            raise IndexError(f"target vertex {target} out of range")
        self._succ[source].append(target)
        self._pred[target].append(source)
        self._num_edges += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Remove one occurrence of the edge ``source -> target``.

        Raises:
            ValueError: if the edge is not present.
        """
        try:
            self._succ[source].remove(target)
        except ValueError:
            raise ValueError(f"edge ({source}, {target}) not present") from None
        self._pred[target].remove(source)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        """Return the vertex id range."""
        return range(len(self._succ))

    def successors(self, v: int) -> list[int]:
        """Return the out-neighbors of ``v`` (the list is owned, not a copy)."""
        return self._succ[v]

    def predecessors(self, v: int) -> list[int]:
        """Return the in-neighbors of ``v`` (the list is owned, not a copy)."""
        return self._pred[v]

    def out_degree(self, v: int) -> int:
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        return len(self._pred[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, targets in enumerate(self._succ):
            for target in targets:
                yield (source, target)

    def has_edge(self, source: int, target: int) -> bool:
        """Return True iff the edge exists (linear in out-degree)."""
        return target in self._succ[source]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped.

        Used to build the *reversed* interval labeling of 3DReach-Rev.
        """
        reverse = DiGraph(self.num_vertices)
        for source, targets in enumerate(self._succ):
            for target in targets:
                reverse.add_edge(target, source)
        return reverse

    def deduplicated(self) -> "DiGraph":
        """Return a copy with parallel edges collapsed.

        Check-in data produces many repeated user->venue edges; reachability
        only cares about edge existence, so the loaders call this once.
        """
        out = DiGraph(self.num_vertices)
        for source, targets in enumerate(self._succ):
            seen: set[int] = set()
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    out.add_edge(source, target)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
