"""DAG condensation of a directed graph."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.scc import strongly_connected_components


@dataclass(slots=True)
class Condensation:
    """The condensation of a directed graph.

    Attributes:
        dag: the condensed graph; vertex ``c`` of ``dag`` is a super-vertex.
        component_of: maps each original vertex to its super-vertex id.
        members: maps each super-vertex id to its original vertices.
    """

    dag: DiGraph
    component_of: list[int]
    members: list[list[int]]

    @property
    def num_components(self) -> int:
        return self.dag.num_vertices

    def largest_component_size(self) -> int:
        """Return the size of the largest SCC (Table 3 statistic)."""
        if not self.members:
            return 0
        return max(len(m) for m in self.members)

    def is_trivial(self, component: int) -> bool:
        """Return True iff the super-vertex wraps a single original vertex."""
        return len(self.members[component]) == 1


def condense(graph: DiGraph) -> Condensation:
    """Collapse every SCC of ``graph`` into a single super-vertex.

    The resulting DAG has one vertex per SCC and an edge ``(a, b)`` iff the
    original graph had an edge between distinct components ``a`` and ``b``.
    Duplicate inter-component edges are collapsed.
    """
    components = strongly_connected_components(graph)
    component_of = [0] * graph.num_vertices
    for cid, component in enumerate(components):
        for v in component:
            component_of[v] = cid

    dag = DiGraph(len(components))
    seen: set[tuple[int, int]] = set()
    for source, target in graph.edges():
        a, b = component_of[source], component_of[target]
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            dag.add_edge(a, b)
    return Condensation(dag=dag, component_of=component_of, members=components)
