"""DAG reductions: transitive reduction and equivalence reduction.

The paper's related-work section (7.1) notes that "directed acyclic graph
reduction [67, 68] was further considered to accelerate reachability
queries.  The idea is to reduce the size of the input graph by computing
its transitive reduction followed by the equivalence reduction."  This
module implements both as optional preprocessing for the labeling:

* :func:`transitive_reduction` drops every edge implied by another path;
* :func:`equivalence_classes` groups vertices with identical ancestor and
  descendant sets — reachability-indistinguishable vertices;
* :func:`reduce_dag` composes the two into a smaller, equivalent DAG.

Both use transitive-closure bitsets, so they are intended for the
condensation-sized graphs of this library (up to ~10^5 vertices), not for
the raw web-scale inputs the cited papers target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.traversal import topological_order


def _closure_bits(dag: DiGraph) -> list[int]:
    """Descendant bitsets (including self), in one reverse-topo sweep."""
    closure = [0] * dag.num_vertices
    for v in reversed(topological_order(dag)):
        bits = 1 << v
        for u in dag.successors(v):
            bits |= closure[u]
        closure[v] = bits
    return closure


def transitive_reduction(dag: DiGraph) -> DiGraph:
    """Return the unique transitive reduction of a DAG.

    An edge ``(v, u)`` survives iff no *other* successor of ``v`` can
    reach ``u``; reachability is exactly preserved with the minimum
    number of edges.

    Raises:
        ValueError: if the graph has a cycle (via the topological sort).
    """
    closure = _closure_bits(dag)
    reduced = DiGraph(dag.num_vertices)
    for v in dag.vertices():
        # Deduplicate parallel edges first: each copy would otherwise see
        # the target in its twin's closure and both would be dropped.
        succ = list(dict.fromkeys(dag.successors(v)))
        if not succ:
            continue
        # prefix_or[i] = reachability union of succ[0..i-1]; suffix_or the
        # mirror — an edge is redundant iff its target appears in the
        # union of the *other* successors' closures.
        n = len(succ)
        prefix_or = [0] * (n + 1)
        for i, w in enumerate(succ):
            prefix_or[i + 1] = prefix_or[i] | closure[w]
        suffix = 0
        keep: list[bool] = [False] * n
        for i in range(n - 1, -1, -1):
            u = succ[i]
            others = prefix_or[i] | suffix
            keep[i] = not ((others >> u) & 1)
            suffix |= closure[u]
        for i, u in enumerate(succ):
            if keep[i]:
                reduced.add_edge(v, u)
    return reduced


def equivalence_classes(dag: DiGraph) -> list[list[int]]:
    """Group vertices that are reachability-indistinguishable.

    Two vertices are equivalent iff they have the same descendants and
    the same ancestors (each excluding the vertex itself): every GReach
    query then gives identical answers for both.
    """
    down = _closure_bits(dag)
    up = _closure_bits(dag.reversed())
    groups: dict[tuple[int, int], list[int]] = {}
    for v in dag.vertices():
        key = (down[v] & ~(1 << v), up[v] & ~(1 << v))
        groups.setdefault(key, []).append(v)
    return list(groups.values())


@dataclass(slots=True)
class ReducedDag:
    """The result of the combined DAG reduction.

    Attributes:
        dag: the reduced graph (one vertex per equivalence class,
            transitively reduced edges).
        representative_of: original vertex -> reduced vertex id.
        classes: reduced vertex id -> original vertices.
    """

    dag: DiGraph
    representative_of: list[int]
    classes: list[list[int]]


def reduce_dag(dag: DiGraph) -> ReducedDag:
    """Equivalence reduction followed by transitive reduction.

    Reachability between original vertices is answered on the reduced
    graph via ``representative_of``: ``u`` reaches ``v`` iff their
    representatives are distinct-and-connected, or equal (equivalent
    vertices do *not* reach each other in a DAG unless identical).
    """
    classes = equivalence_classes(dag)
    representative_of = [0] * dag.num_vertices
    for cid, members in enumerate(classes):
        for v in members:
            representative_of[v] = cid
    quotient = DiGraph(len(classes))
    seen: set[tuple[int, int]] = set()
    for s, t in dag.edges():
        a, b = representative_of[s], representative_of[t]
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            quotient.add_edge(a, b)
    return ReducedDag(
        dag=transitive_reduction(quotient),
        representative_of=representative_of,
        classes=classes,
    )
