"""Strongly connected components (iterative Tarjan).

Graph-reachability labelings require a DAG; as in the paper (Section 5),
arbitrary geosocial networks are first condensed by collapsing every
strongly connected component into a super-vertex.  Tarjan's algorithm is
implemented iteratively because real social cores are huge (the Gowalla
network's social SCC spans every user).
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Return the SCCs of ``graph`` in reverse topological order.

    Each component is a list of vertex ids.  Tarjan's algorithm emits
    components in reverse topological order of the condensation, which the
    callers (condensation, GeoReach construction) exploit.
    """
    n = graph.num_vertices
    index_of = [-1] * n          # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    next_index = 0

    for start in graph.vertices():
        if index_of[start] != -1:
            continue
        # Each frame is (vertex, position in its successor list).
        work: list[tuple[int, int]] = [(start, 0)]
        while work:
            v, child_idx = work[-1]
            if child_idx == 0:
                index_of[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            succ = graph.successors(v)
            recursed = False
            while child_idx < len(succ):
                u = succ[child_idx]
                child_idx += 1
                if index_of[u] == -1:
                    work[-1] = (v, child_idx)
                    work.append((u, 0))
                    recursed = True
                    break
                if on_stack[u] and index_of[u] < lowlink[v]:
                    lowlink[v] = index_of[u]
            if recursed:
                continue
            work.pop()
            if lowlink[v] == index_of[v]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent_v, _ = work[-1]
                if lowlink[v] < lowlink[parent_v]:
                    lowlink[parent_v] = lowlink[v]
    return components


def scc_membership(graph: DiGraph) -> tuple[list[int], int]:
    """Return ``(component_id_per_vertex, number_of_components)``.

    Component ids follow Tarjan's emission order (reverse topological).
    """
    components = strongly_connected_components(graph)
    member = [0] * graph.num_vertices
    for cid, component in enumerate(components):
        for v in component:
            member[v] = cid
    return member, len(components)
