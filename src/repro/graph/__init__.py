"""Directed-graph substrate.

Implements, from scratch, everything the labeling and query methods need
from a graph library: an adjacency-list directed graph, iterative
traversals (the inputs are far too large for recursion), DFS forests with
global post-order numbering, Tarjan's strongly-connected-components
algorithm, DAG condensation, and a plain-text edge-list format.
"""

from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_order,
    dfs_forest,
    dfs_postorder,
    is_acyclic,
    reachable_from,
    topological_order,
)
from repro.graph.scc import strongly_connected_components
from repro.graph.condensation import Condensation, condense
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.reduction import (
    ReducedDag,
    equivalence_classes,
    reduce_dag,
    transitive_reduction,
)

__all__ = [
    "DiGraph",
    "bfs_order",
    "dfs_forest",
    "dfs_postorder",
    "is_acyclic",
    "reachable_from",
    "topological_order",
    "strongly_connected_components",
    "Condensation",
    "condense",
    "read_edge_list",
    "write_edge_list",
    "ReducedDag",
    "equivalence_classes",
    "reduce_dag",
    "transitive_reduction",
]
