"""Plain-text graph and point-table I/O.

The on-disk format mirrors the SNAP-style dumps the paper's datasets ship
in: one ``source target`` pair per line for edges, and one
``vertex x y`` triple per line for spatial vertices.  Lines starting with
``#`` are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.geometry import Point
from repro.graph.digraph import DiGraph


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> DiGraph:
    """Read a directed graph from a whitespace-separated edge list.

    Args:
        path: file to read.
        num_vertices: size of the vertex universe; inferred as
            ``max id + 1`` when omitted (requires a second pass held in
            memory, so pass it for large files when known).
    """
    edges: list[tuple[int, int]] = []
    max_id = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            source, target = int(parts[0]), int(parts[1])
            edges.append((source, target))
            if source > max_id:
                max_id = source
            if target > max_id:
                max_id = target
    n = num_vertices if num_vertices is not None else max_id + 1
    return DiGraph.from_edges(n, edges)


def write_edge_list(graph: DiGraph, path: str | Path, header: str | None = None) -> None:
    """Write ``graph`` as a whitespace-separated edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def read_point_table(path: str | Path) -> dict[int, Point]:
    """Read a ``vertex x y`` table mapping spatial vertices to points."""
    points: dict[int, Point] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(f"malformed point line: {line!r}")
            points[int(parts[0])] = Point(float(parts[1]), float(parts[2]))
    return points


def write_point_table(
    points: dict[int, Point] | Iterable[tuple[int, Point]],
    path: str | Path,
    header: str | None = None,
) -> None:
    """Write a vertex-to-point table in ``vertex x y`` format."""
    items = points.items() if isinstance(points, dict) else points
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for vertex, point in items:
            handle.write(f"{vertex} {point.x!r} {point.y!r}\n")
