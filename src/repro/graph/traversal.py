"""Iterative graph traversals.

Every routine here is iterative: geosocial networks contain millions of
vertices in the paper's setting (and tens of thousands at our benchmark
scale), far beyond Python's recursion limit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph.digraph import DiGraph


@dataclass(slots=True)
class DfsForest:
    """The result of a depth-first spanning-forest construction.

    Attributes:
        parent: tree parent of each vertex (``-1`` for roots).
        post: 1-based global post-order number of each vertex; numbers are
            assigned consecutively across trees, exactly as Algorithm 1 of
            the paper traverses the spanning trees one by one.
        roots: the tree roots in visit order.
        min_post: for each vertex, the smallest post-order number in its
            subtree (this is the ``index(v)`` of the interval labeling).
    """

    parent: list[int]
    post: list[int]
    roots: list[int]
    min_post: list[int]

    def tree_edges(self) -> set[tuple[int, int]]:
        """Return the set of spanning-tree edges ``(parent, child)``."""
        return {
            (p, child)
            for child, p in enumerate(self.parent)
            if p >= 0
        }


def _forest_roots(graph: DiGraph) -> list[int]:
    """Return the default spanning-forest roots: vertices with in-degree 0.

    On a DAG every vertex is reachable from some in-degree-0 source, so
    these roots cover the graph; :func:`dfs_forest` still adds fallback
    roots for any vertex left unvisited (relevant only for cyclic inputs).
    """
    return [v for v in graph.vertices() if graph.in_degree(v) == 0]


def dfs_forest(
    graph: DiGraph,
    roots: Sequence[int] | None = None,
    child_order: str = "natural",
) -> DfsForest:
    """Build a depth-first spanning forest with global post-order numbers.

    A *DFS* forest (rather than BFS) matters for the interval labeling:
    on a DAG every edge ``(v, u)`` then satisfies ``post(u) < post(v)``,
    which makes "sort non-spanning edges by source post-order" (Algorithm 1,
    line 20) a valid processing order; see DESIGN.md.

    ``child_order`` controls the spanning-tree shape — the knob the paper's
    future work calls "optimal (e.g., shallow) spanning forests":

    * ``"natural"`` — adjacency-list order (default);
    * ``"degree"`` — highest out-degree children first, which tends to put
      hub subtrees under one contiguous post range;
    * ``"degree-asc"`` — lowest out-degree first (adversarial contrast).
    """
    if child_order not in ("natural", "degree", "degree-asc"):
        raise ValueError(
            "child_order must be 'natural', 'degree' or 'degree-asc'"
        )
    n = graph.num_vertices
    parent = [-1] * n
    post = [0] * n
    min_post = [0] * n
    visited = [False] * n
    root_list = list(roots) if roots is not None else _forest_roots(graph)
    out_roots: list[int] = []
    counter = 0

    if child_order == "natural":
        def ordered(v: int) -> list[int]:
            return graph.successors(v)
    elif child_order == "degree":
        def ordered(v: int) -> list[int]:
            return sorted(graph.successors(v), key=graph.out_degree, reverse=True)
    else:
        def ordered(v: int) -> list[int]:
            return sorted(graph.successors(v), key=graph.out_degree)

    def visit_tree(root: int) -> None:
        nonlocal counter
        visited[root] = True
        # Stack frames are (vertex, its ordered successors, next index).
        stack: list[tuple[int, list[int], int]] = [(root, ordered(root), 0)]
        while stack:
            v, succ, child_idx = stack[-1]
            advanced = False
            while child_idx < len(succ):
                u = succ[child_idx]
                child_idx += 1
                if not visited[u]:
                    visited[u] = True
                    parent[u] = v
                    stack[-1] = (v, succ, child_idx)
                    stack.append((u, ordered(u), 0))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                counter += 1
                post[v] = counter
                low = post[v]
                for u in succ:
                    if parent[u] == v and min_post[u] < low:
                        low = min_post[u]
                min_post[v] = low

    for root in root_list:
        if not visited[root]:
            out_roots.append(root)
            visit_tree(root)
    # Fallback: cover vertices unreachable from the supplied roots.
    for v in graph.vertices():
        if not visited[v]:
            out_roots.append(v)
            visit_tree(v)
    return DfsForest(parent=parent, post=post, roots=out_roots, min_post=min_post)


def dfs_postorder(graph: DiGraph, roots: Sequence[int] | None = None) -> list[int]:
    """Return all vertices in global DFS post-order (ascending post number)."""
    forest = dfs_forest(graph, roots)
    order = [0] * graph.num_vertices
    for v, number in enumerate(forest.post):
        order[number - 1] = v
    return order


def bfs_order(graph: DiGraph, source: int) -> list[int]:
    """Return the vertices reachable from ``source`` in BFS order."""
    visited = [False] * graph.num_vertices
    visited[source] = True
    queue: deque[int] = deque([source])
    order: list[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for u in graph.successors(v):
            if not visited[u]:
                visited[u] = True
                queue.append(u)
    return order


def reachable_from(graph: DiGraph, source: int) -> set[int]:
    """Return the set of vertices reachable from ``source`` (incl. itself)."""
    return set(bfs_order(graph, source))


def topological_order(graph: DiGraph) -> list[int]:
    """Return a topological order of a DAG (Kahn's algorithm).

    Raises:
        ValueError: if the graph contains a cycle.
    """
    n = graph.num_vertices
    in_deg = [graph.in_degree(v) for v in graph.vertices()]
    queue: deque[int] = deque(v for v in graph.vertices() if in_deg[v] == 0)
    order: list[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for u in graph.successors(v):
            in_deg[u] -= 1
            if in_deg[u] == 0:
                queue.append(u)
    if len(order) != n:
        raise ValueError("graph contains a cycle; no topological order exists")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """Return True iff the graph is a DAG."""
    try:
        topological_order(graph)
    except ValueError:
        return False
    return True


def all_reachable_sets(graph: DiGraph) -> list[set[int]]:
    """Return, for every vertex, its full descendant set (incl. itself).

    Quadratic; intended for ground-truth checks on small graphs only.
    """
    return [reachable_from(graph, v) for v in graph.vertices()]


def path_exists(graph: DiGraph, source: int, target: int) -> bool:
    """BFS reachability test; the no-index baseline for ``GReach``."""
    if source == target:
        return True
    visited = [False] * graph.num_vertices
    visited[source] = True
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.successors(v):
            if u == target:
                return True
            if not visited[u]:
                visited[u] = True
                queue.append(u)
    return False


def iter_edges_once(edges: Iterable[tuple[int, int]]) -> Iterable[tuple[int, int]]:
    """Yield edges, skipping exact duplicates (order-preserving)."""
    seen: set[tuple[int, int]] = set()
    for edge in edges:
        if edge not in seen:
            seen.add(edge)
            yield edge
