"""repro — reproduction of "Fast Geosocial Reachability Queries" (EDBT 2025).

The library answers *geosocial reachability* (``RangeReach``) queries:
given a geosocial network, a query vertex ``v`` and a rectangular region
``R``, decide whether ``v`` can reach any vertex with spatial activity
inside ``R``.

Quickstart::

    from repro import (
        GeosocialNetwork, Rect, condense_network, ThreeDReach,
    )
    from repro.datasets import make_network

    network = make_network("gowalla", scale=0.002, seed=1)
    condensed = condense_network(network)
    method = ThreeDReach(condensed)
    region = Rect(0.2, 0.2, 0.4, 0.4)
    print(method.query(0, region))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced tables and figures.
"""

from repro.geometry import Box3, Point, Rect, Segment3
from repro.graph import DiGraph, condense
from repro.geosocial import (
    CondensedNetwork,
    GeosocialNetwork,
    NetworkStats,
    condense_network,
)
from repro.labeling import (
    IntervalLabeling,
    build_labeling,
    build_reversed_labeling,
)
from repro.core import (
    GeoReach,
    GeoReachParams,
    RangeReachOracle,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
    build_method,
    build_methods,
)
from repro.pipeline import BuildContext

__version__ = "1.0.0"

__all__ = [
    "Box3",
    "Point",
    "Rect",
    "Segment3",
    "DiGraph",
    "condense",
    "CondensedNetwork",
    "GeosocialNetwork",
    "NetworkStats",
    "condense_network",
    "IntervalLabeling",
    "build_labeling",
    "build_reversed_labeling",
    "GeoReach",
    "GeoReachParams",
    "RangeReachOracle",
    "SocReach",
    "SpaReach",
    "ThreeDReach",
    "ThreeDReachRev",
    "build_method",
    "build_methods",
    "BuildContext",
    "__version__",
]
