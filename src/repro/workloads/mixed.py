"""Interleaved update/query workloads for the mutable store.

The paper's experiments are read-only; the dynamic extension serves
*mixed* traffic, where every write potentially staleness-taxes the next
read.  :class:`MixedWorkload` generates seeded operation streams that are
directly replayable against :class:`repro.system.GeosocialDatabase` —
the generator mirrors the database's sequential id assignment, so the
emitted operations carry concrete vertex ids and never reference an
entity that does not exist yet.

Used by ``benchmarks/bench_mixed_workload.py`` to compare
rebuild-per-write against delta-overlay serving on identical streams,
and by the equivalence tests to check that both policies return the same
answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.geometry import Rect

MixedOp = tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class MixedWorkloadStats:
    """Operation mix of a generated stream."""

    num_queries: int
    num_writes: int
    num_removals: int

    @property
    def num_ops(self) -> int:
        return self.num_queries + self.num_writes


class MixedWorkload:
    """Seeded generator of interleaved update/query operation streams.

    Operations are tuples tagged by kind:

    * ``("user",)`` / ``("venue", x, y)`` — create a vertex;
    * ``("follow", a, b)`` / ``("checkin", u, v)`` — add an edge;
    * ``("unfollow", a, b)`` / ``("uncheckin", u, v)`` — remove an edge;
    * ``("query", op_name, vertex, region)`` — a read, where ``op_name``
      is one of ``range_reach`` / ``count`` / ``witnesses``.

    Args:
        seed: RNG seed; equal seeds produce identical streams.
        write_fraction: probability that a generated op is a write.
        removal_fraction: probability that a write is an edge removal.
        extent_pct: query-region extent as a percentage of the unit space.
    """

    def __init__(
        self,
        seed: int = 0,
        write_fraction: float = 0.25,
        removal_fraction: float = 0.05,
        extent_pct: float = 5.0,
    ) -> None:
        if not (0.0 <= write_fraction <= 1.0):
            raise ValueError("write_fraction must be in [0, 1]")
        if not (0.0 <= removal_fraction <= 1.0):
            raise ValueError("removal_fraction must be in [0, 1]")
        if not (0.0 < extent_pct <= 100.0):
            raise ValueError("extent_pct must be in (0, 100]")
        self._rng = random.Random(seed)
        self._write_fraction = write_fraction
        self._removal_fraction = removal_fraction
        self._side = (extent_pct / 100.0) ** 0.5
        # Mirror of the database state; ids are assigned sequentially,
        # exactly like GeosocialDatabase does.
        self._next_id = 0
        self._users: list[int] = []
        self._venues: list[int] = []
        self._follows: list[tuple[int, int]] = []
        self._checkins: list[tuple[int, int]] = []
        self._edge_set: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def bootstrap(
        self,
        num_users: int,
        num_venues: int,
        num_follows: int,
        num_checkins: int,
    ) -> list[MixedOp]:
        """Emit the initial population (all writes, no queries)."""
        ops: list[MixedOp] = []
        for _ in range(num_users):
            ops.append(self._new_user())
        for _ in range(num_venues):
            ops.append(self._new_venue())
        for _ in range(num_follows):
            op = self._new_follow()
            if op is not None:
                ops.append(op)
        for _ in range(num_checkins):
            op = self._new_checkin()
            if op is not None:
                ops.append(op)
        return ops

    def ops(self, count: int) -> list[MixedOp]:
        """Emit ``count`` interleaved operations after the bootstrap."""
        if not self._users or not self._venues:
            raise ValueError("bootstrap the workload before mixing ops")
        out: list[MixedOp] = []
        rng = self._rng
        while len(out) < count:
            if rng.random() < self._write_fraction:
                op = self._random_write()
            else:
                op = self._random_query()
            if op is not None:
                out.append(op)
        return out

    @staticmethod
    def describe(ops: list[MixedOp]) -> MixedWorkloadStats:
        """Summarize an operation stream."""
        queries = sum(1 for op in ops if op[0] == "query")
        removals = sum(1 for op in ops if op[0] in ("unfollow", "uncheckin"))
        return MixedWorkloadStats(
            num_queries=queries,
            num_writes=len(ops) - queries,
            num_removals=removals,
        )

    # ------------------------------------------------------------------
    # Individual ops
    # ------------------------------------------------------------------
    def _new_user(self) -> MixedOp:
        self._users.append(self._next_id)
        self._next_id += 1
        return ("user",)

    def _new_venue(self) -> MixedOp:
        self._venues.append(self._next_id)
        self._next_id += 1
        return ("venue", self._rng.random(), self._rng.random())

    def _new_follow(self) -> MixedOp | None:
        if len(self._users) < 2:
            return None
        rng = self._rng
        for _ in range(8):
            a, b = rng.sample(self._users, 2)
            if (a, b) not in self._edge_set:
                self._edge_set.add((a, b))
                self._follows.append((a, b))
                return ("follow", a, b)
        return None

    def _new_checkin(self) -> MixedOp | None:
        if not self._users or not self._venues:
            return None
        rng = self._rng
        for _ in range(8):
            u = rng.choice(self._users)
            v = rng.choice(self._venues)
            if (u, v) not in self._edge_set:
                self._edge_set.add((u, v))
                self._checkins.append((u, v))
                return ("checkin", u, v)
        return None

    def _random_write(self) -> MixedOp | None:
        rng = self._rng
        if rng.random() < self._removal_fraction:
            pool = self._follows if rng.random() < 0.5 else self._checkins
            if not pool:
                return None
            edge = pool.pop(rng.randrange(len(pool)))
            self._edge_set.discard(edge)
            kind = "unfollow" if pool is self._follows else "uncheckin"
            return (kind, *edge)
        roll = rng.random()
        if roll < 0.15:
            return self._new_user()
        if roll < 0.30:
            return self._new_venue()
        if roll < 0.60:
            return self._new_follow()
        return self._new_checkin()

    def _random_query(self) -> MixedOp:
        rng = self._rng
        vertex = rng.choice(self._users)
        side = self._side
        xlo = rng.random() * (1.0 - side)
        ylo = rng.random() * (1.0 - side)
        region = Rect(xlo, ylo, xlo + side, ylo + side)
        op_name = ("range_reach", "count", "witnesses")[rng.randrange(3)]
        return ("query", op_name, vertex, region)


def replay_ops(database, ops: list[MixedOp]) -> list[Any]:
    """Run an operation stream against a database; returns query answers.

    Two databases fed the same stream must produce identical answer
    lists regardless of their refresh policy — that is the overlay's
    equivalence contract, exercised by tests and the mixed benchmark.
    """
    answers: list[Any] = []
    for op in ops:
        kind = op[0]
        if kind == "user":
            database.add_user()
        elif kind == "venue":
            database.add_venue(op[1], op[2])
        elif kind == "follow":
            database.add_follow(op[1], op[2])
        elif kind == "checkin":
            database.add_checkin(op[1], op[2])
        elif kind == "unfollow":
            database.remove_follow(op[1], op[2])
        elif kind == "uncheckin":
            database.remove_checkin(op[1], op[2])
        elif kind == "query":
            _, op_name, vertex, region = op
            if op_name == "range_reach":
                answers.append(database.range_reach(vertex, region))
            elif op_name == "count":
                answers.append(database.count_reachable(vertex, region))
            else:
                answers.append(database.reachable_venues(vertex, region))
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return answers
