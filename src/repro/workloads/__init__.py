"""Query workload generation for the experimental analysis.

The paper measures average runtime over batches of RangeReach queries
while varying three parameters (Section 6.1):

* the **extent** of the query region as a percentage of the space;
* the **out-degree** of the query vertex, bucketed;
* the **spatial selectivity** — the fraction of spatial vertices that
  fall inside the region.

:class:`QueryWorkload` produces seeded, reproducible batches for all
three axes.  :class:`MixedWorkload` adds interleaved update/query
streams for the mutable store (`repro.system`), replayable via
:func:`replay_ops`.
"""

from repro.workloads.queries import (
    DEFAULT_DEGREE_BUCKETS,
    DEFAULT_EXTENTS,
    DEFAULT_SELECTIVITIES,
    Query,
    QueryWorkload,
)
from repro.workloads.mixed import (
    MixedOp,
    MixedWorkload,
    MixedWorkloadStats,
    replay_ops,
)
from repro.workloads.persistence import load_workload, save_workload

__all__ = [
    "DEFAULT_DEGREE_BUCKETS",
    "DEFAULT_EXTENTS",
    "DEFAULT_SELECTIVITIES",
    "MixedOp",
    "MixedWorkload",
    "MixedWorkloadStats",
    "Query",
    "QueryWorkload",
    "load_workload",
    "replay_ops",
    "save_workload",
]
