"""RangeReach query workload generation."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.geosocial.network import GeosocialNetwork

# The paper varies the region extent in {1, 2, 5, 10, 20} % of the space
# (default bold: 5 %), the query vertex degree in five buckets, and the
# spatial selectivity in {0.001, 0.01, 0.1, 1} %.
DEFAULT_EXTENTS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0)
DEFAULT_SELECTIVITIES: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0)

# The paper buckets full-scale out-degrees as [1-49], [50-99], [100-149],
# [150-199], [200-...].  Our networks are ~200x smaller, so degree
# distributions shrink accordingly; these scaled buckets keep five
# non-empty classes with the same relative ordering (see DESIGN.md).
DEFAULT_DEGREE_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 4),
    (5, 9),
    (10, 14),
    (15, 19),
    (20, 10**9),
)


@dataclass(frozen=True, slots=True)
class Query:
    """One RangeReach query: a query vertex and a region."""

    vertex: int
    region: Rect


class QueryWorkload:
    """Seeded generator of RangeReach query batches over one network.

    ``center_mode`` controls where query regions land:

    * ``"uniform"`` (default) — centers drawn uniformly from the space;
      with clustered geography many regions contain few or no venues, so
      negative answers are common, which is exactly the regime the paper
      stresses ("both methods may perform poorly for RangeReach queries
      with a negative answer");
    * ``"venue"`` — centers drawn from venue locations; regions land in
      populated areas and most answers are positive.
    """

    def __init__(
        self,
        network: GeosocialNetwork,
        seed: int = 0,
        center_mode: str = "uniform",
    ) -> None:
        if center_mode not in ("uniform", "venue"):
            raise ValueError("center_mode must be 'uniform' or 'venue'")
        self._network = network
        self._seed = seed
        self._center_mode = center_mode
        self._space = network.space()
        self._spatial = network.spatial_vertices()
        if not self._spatial:
            raise ValueError("network has no spatial vertices to query around")
        # Sorted x-coordinates support the selectivity search.
        self._points = [network.point_of(v) for v in self._spatial]

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def region_with_extent(self, extent_pct: float, rng: random.Random) -> Rect:
        """Return a square region covering ``extent_pct`` % of the space."""
        if not (0 < extent_pct <= 100):
            raise ValueError("extent percentage must be in (0, 100]")
        space = self._space
        side_fraction = math.sqrt(extent_pct / 100.0)
        width = space.width * side_fraction
        height = space.height * side_fraction
        center = self._random_center(rng)
        region = Rect.from_center(center, width, height)
        return self._clamp_into_space(region, width, height)

    def region_with_selectivity(
        self,
        selectivity_pct: float,
        rng: random.Random,
        tolerance: float = 0.25,
    ) -> Rect:
        """Return a square region containing ~``selectivity_pct`` % of points.

        Binary search on the square side around a random venue center; the
        search stops when the contained fraction is within ``tolerance``
        (relative) of the target or the side bracket collapses.
        """
        target = max(1, round(len(self._points) * selectivity_pct / 100.0))
        center = self._random_center(rng)
        space = self._space
        lo, hi = 0.0, 2.0 * max(space.width, space.height)
        best: Rect | None = None
        best_error = math.inf
        for _ in range(40):
            side = (lo + hi) / 2.0
            region = self._clamp_into_space(
                Rect.from_center(center, side, side), side, side
            )
            count = sum(
                1 for p in self._points if region.contains_point(p)
            )
            error = abs(count - target) / target
            if error < best_error:
                best, best_error = region, error
            if error <= tolerance:
                break
            if count < target:
                lo = side
            else:
                hi = side
        assert best is not None
        return best

    def _random_center(self, rng: random.Random) -> Point:
        if self._center_mode == "venue":
            return self._points[rng.randrange(len(self._points))]
        space = self._space
        return Point(
            space.xlo + rng.random() * space.width,
            space.ylo + rng.random() * space.height,
        )

    def _clamp_into_space(self, region: Rect, width: float, height: float) -> Rect:
        """Shift a region so it stays inside the space (preserving extent)."""
        space = self._space
        xlo = min(max(region.xlo, space.xlo), max(space.xhi - width, space.xlo))
        ylo = min(max(region.ylo, space.ylo), max(space.yhi - height, space.ylo))
        return Rect(xlo, ylo, xlo + width, ylo + height)

    # ------------------------------------------------------------------
    # Query vertices
    # ------------------------------------------------------------------
    def vertices_in_degree_bucket(self, lo: int, hi: int) -> list[int]:
        """Return vertices whose out-degree falls in ``[lo, hi]``."""
        graph = self._network.graph
        return [
            v for v in graph.vertices() if lo <= graph.out_degree(v) <= hi
        ]

    def sample_vertices(
        self, count: int, degree_bucket: tuple[int, int], rng: random.Random
    ) -> list[int]:
        """Sample query vertices from a degree bucket (with replacement).

        Falls back to any vertex with out-degree >= 1 when the bucket is
        empty at this scale.
        """
        lo, hi = degree_bucket
        candidates = self.vertices_in_degree_bucket(lo, hi)
        if not candidates:
            candidates = self.vertices_in_degree_bucket(1, 10**9)
        if not candidates:
            raise ValueError("network has no vertex with outgoing edges")
        return [candidates[rng.randrange(len(candidates))] for _ in range(count)]

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def batch_by_extent(
        self,
        extent_pct: float,
        degree_bucket: tuple[int, int],
        count: int,
    ) -> list[Query]:
        """A batch varying nothing: fixed extent, fixed degree bucket."""
        rng = random.Random(f"{self._seed}|extent|{extent_pct}|{degree_bucket}")
        vertices = self.sample_vertices(count, degree_bucket, rng)
        return [
            Query(v, self.region_with_extent(extent_pct, rng))
            for v in vertices
        ]

    def batch_by_selectivity(
        self,
        selectivity_pct: float,
        degree_bucket: tuple[int, int],
        count: int,
    ) -> list[Query]:
        """A batch whose regions contain ~selectivity_pct % of the points."""
        rng = random.Random(f"{self._seed}|sel|{selectivity_pct}|{degree_bucket}")
        vertices = self.sample_vertices(count, degree_bucket, rng)
        return [
            Query(v, self.region_with_selectivity(selectivity_pct, rng))
            for v in vertices
        ]
