"""Saving and loading query workloads.

Benchmark batches are reproducible via seeds, but frozen workload files
make results comparable across library versions (a generator tweak would
otherwise silently change every number).  Format: one query per line,
``vertex xlo ylo xhi yhi``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.geometry import Rect
from repro.workloads.queries import Query

_MAGIC = "# repro query workload v1"


def save_workload(queries: Sequence[Query], path: str | Path) -> None:
    """Write a query batch to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{_MAGIC}\n")
        for query in queries:
            r = query.region
            handle.write(
                f"{query.vertex} {r.xlo!r} {r.ylo!r} {r.xhi!r} {r.yhi!r}\n"
            )


def load_workload(path: str | Path) -> list[Query]:
    """Read a query batch written by :func:`save_workload`.

    Raises:
        ValueError: on a missing header or malformed line.
    """
    queries: list[Query] = []
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline().rstrip("\n")
        if first != _MAGIC:
            raise ValueError(f"{path}: not a repro workload file")
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise ValueError(f"{path}: malformed query line: {line!r}")
            vertex = int(parts[0])
            xlo, ylo, xhi, yhi = (float(p) for p in parts[1:])
            queries.append(Query(vertex, Rect(xlo, ylo, xhi, yhi)))
    return queries
