"""Relational (one-dimensional) indexing.

Section 4.1 of the paper observes that every interval label of SocReach
"defines a typical (relational) range query over the post-order numbers of
the network vertices", evaluable with "a traditional B+-tree which indexes
post(v)" or plain array loops.  This package provides that B+-tree; the
SocReach method accepts it through its ``descendant_access`` option, and
the benchmark suite compares both access paths.
"""

from repro.relational.bptree import BPlusTree

__all__ = ["BPlusTree"]
