"""A classic in-memory B+-tree over integer keys.

Leaves hold ``(key, value)`` pairs and are chained left-to-right, so range
scans are a leaf walk — the property SocReach's descendant enumeration
needs: every interval label ``[l, h]`` becomes one ``range_scan(l, h)``.

Supports bulk loading from sorted pairs (fully packed leaves), point
insertion with node splits, point lookups, and inclusive range scans.
Keys are unique (inserting an existing key overwrites its value), which
matches the post-order-number use case.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.next: "_LeafNode | None" = None


class _InnerNode:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] the rest.
        self.keys: list[int] = []
        self.children: list[Any] = []


class BPlusTree:
    """A B+-tree mapping unique integer keys to values."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise ValueError("order must be at least 4")
        self._order = order
        self._root: Any = _LeafNode()
        self._size = 0

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(
        cls, pairs: list[tuple[int, Any]], order: int = 32
    ) -> "BPlusTree":
        """Build a tree from key-sorted unique pairs (fully packed leaves)."""
        tree = cls(order=order)
        if not pairs:
            return tree
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise ValueError("pairs must be strictly sorted by key")
        fill = order - 1
        leaves: list[_LeafNode] = []
        for i in range(0, len(pairs), fill):
            leaf = _LeafNode()
            chunk = pairs[i : i + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        level: list[Any] = leaves
        first_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: list[_InnerNode] = []
            parent_first_keys: list[int] = []
            for i in range(0, len(level), order):
                node = _InnerNode()
                node.children = level[i : i + order]
                node.keys = first_keys[i + 1 : i + len(node.children)]
                parents.append(node)
                parent_first_keys.append(first_keys[i])
            level = parents
            first_keys = parent_first_keys
        tree._root = level[0]
        tree._size = len(pairs)
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert ``key``; an existing key's value is overwritten."""
        result = self._insert_into(self._root, key, value)
        if result is not None:
            split_key, sibling = result
            new_root = _InnerNode()
            new_root.keys = [split_key]
            new_root.children = [self._root, sibling]
            self._root = new_root

    def _insert_into(self, node: Any, key: int, value: Any):
        if isinstance(node, _LeafNode):
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) < self._order:
                return None
            # Split the leaf in half; sibling takes the upper part.
            mid = len(node.keys) // 2
            sibling = _LeafNode()
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next = node.next
            node.next = sibling
            return sibling.keys[0], sibling

        idx = bisect_right(node.keys, key)
        result = self._insert_into(node.children[idx], key, value)
        if result is None:
            return None
        split_key, sibling = result
        node.keys.insert(idx, split_key)
        node.children.insert(idx + 1, sibling)
        if len(node.children) <= self._order:
            return None
        mid = len(node.keys) // 2
        new_inner = _InnerNode()
        push_up = node.keys[mid]
        new_inner.keys = node.keys[mid + 1 :]
        new_inner.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return push_up, new_inner

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _find_leaf(self, key: int) -> _LeafNode:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[bisect_right(node.keys, key)]
        return node

    def get(self, key: int, default: Any = None) -> Any:
        """Return the value stored under ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def range_scan(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in order.

        This is the access path for one interval label of SocReach.
        """
        if lo > hi:
            return
        leaf = self._find_leaf(lo)
        idx = bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > hi:
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[tuple[int, Any]]:
        """Yield all pairs in key order."""
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Return the number of levels (1 = a single leaf)."""
        height = 1
        node = self._root
        while isinstance(node, _InnerNode):
            height += 1
            node = node.children[0]
        return height

    def check_invariants(self) -> None:
        """Validate ordering, fanout and leaf chaining (for tests)."""
        collected: list[int] = []

        def walk(node: Any, lo: float, hi: float) -> None:
            if isinstance(node, _LeafNode):
                assert node.keys == sorted(set(node.keys))
                for k in node.keys:
                    assert lo <= k < hi, (k, lo, hi)
                return
            assert node.keys == sorted(node.keys)
            assert len(node.children) == len(node.keys) + 1
            assert len(node.children) <= self._order
            bounds = [lo] + list(node.keys) + [hi]
            for child, (b_lo, b_hi) in zip(
                node.children, zip(bounds, bounds[1:])
            ):
                walk(child, b_lo, b_hi)

        walk(self._root, float("-inf"), float("inf"))
        for key, _ in self.items():
            collected.append(key)
        assert collected == sorted(set(collected))
        assert len(collected) == self._size
