"""ParallelExecutor: chunked batch execution over a thread pool.

The executor exploits two facts about the reproduction's query paths:

* every built index is **immutable** after construction and every query
  is read-only, so worker threads can share one snapshot with no locks;
* the vectorized ``query_batch`` overrides amortize index work *within*
  a chunk, so chunking preserves most of the batching win while letting
  chunks overlap in time.

Observability: chunk executions are counted per worker thread
(``repro_exec_chunks_total``), batches per execution mode, and — when
the serving thread is tracing — the trace is handed across threads via
:func:`repro.obs.trace.capture`: each worker attaches an
``exec.chunk[i]`` subtree to the batch span, so nested spans and counter
deltas recorded *inside* a chunk land in the request's trace.  Untraced
batches skip the handoff entirely (capture returns None).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from math import ceil
from typing import Sequence

from repro.geometry import Rect
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import capture as _capture
from repro.obs.trace import span as _span

# Chunks per worker when no explicit chunk_size is given: more chunks
# than workers smooths load imbalance (queries vary in cost by orders of
# magnitude), fewer keeps the per-chunk batching win.
_CHUNKS_PER_WORKER = 4


class _Unset:
    """Sentinel distinguishing "argument omitted" from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNSET"


#: Default for :meth:`ParallelExecutor.run`'s ``timeout`` keyword, so an
#: explicit ``timeout=None`` can mean "no deadline" even when the
#: executor was constructed with a default deadline.
UNSET = _Unset()


class BatchTimeoutError(TimeoutError):
    """A query batch exceeded its deadline.

    Attributes:
        completed: chunks that had finished when the deadline expired.
        total: chunks the batch was split into.
        answers: the answers of the completed chunks, in input order (a
            prefix of the full batch's answer list).
    """

    def __init__(
        self,
        message: str,
        completed: int = 0,
        total: int = 0,
        answers: list[bool] | None = None,
    ):
        super().__init__(message)
        self.completed = completed
        self.total = total
        self.answers = [] if answers is None else answers


def _batch_callable(target):
    """Normalize a query target to a ``chunk -> list[bool]`` callable.

    Anything with a ``query_batch`` (every :class:`RangeReachBase`
    subclass) uses it, so chunks keep the vectorized evaluation; a bare
    ``query`` method is wrapped in the obvious loop.
    """
    batch = getattr(target, "query_batch", None)
    if batch is not None:
        return batch
    query = target.query

    def run_chunk(chunk: Sequence[tuple[int, Rect]]) -> list[bool]:
        return [query(v, region) for v, region in chunk]

    return run_chunk


class ParallelExecutor:
    """Run query batches across a thread pool with a per-batch deadline.

    Args:
        workers: thread-pool size.  ``1`` means sequential execution
            (still chunked when a timeout needs deadline checks).
        chunk_size: queries per chunk.  Default: the batch is split into
            ``workers * 4`` chunks (at least one query each).
        timeout: default per-batch deadline in seconds; ``None`` means
            no deadline.  :meth:`run` can override per batch, including
            an explicit ``timeout=None`` to lift a constructor default.

    The pool is created lazily on first parallel run and reused; if
    creation fails (thread limits, restricted environments) the executor
    degrades to sequential execution for its remaining lifetime and
    counts the degradation in ``repro_exec_sequential_fallbacks_total``.
    Usable as a context manager; :meth:`close` releases the pool.
    """

    def __init__(
        self,
        workers: int = 4,
        chunk_size: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self._workers = workers
        self._chunk_size = chunk_size
        self._timeout = timeout
        self._pool: ThreadPoolExecutor | None = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def run(
        self,
        target,
        pairs: Sequence[tuple[int, Rect]],
        *,
        timeout: float | None | _Unset = UNSET,
    ) -> list[bool]:
        """Answer ``pairs`` through ``target``, aligned with the input.

        ``target`` is anything speaking the RangeReach protocol (a method
        class, the extended engine, or a bare ``query`` callable holder).
        ``timeout`` defaults to the constructor deadline; passing
        ``timeout=None`` explicitly disables the deadline for this batch.
        Raises :class:`BatchTimeoutError` when the deadline expires with
        chunks still outstanding; the exception carries the completed
        prefix of answers.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if timeout is UNSET:
            timeout = self._timeout
        elif timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        batch = _batch_callable(target)
        # Worker chunk tallies carry the target's kernel backend so a
        # mixed fleet (numpy + python databases behind one executor)
        # stays separable in the exported series.
        backend = getattr(target, "kernels", None) or "none"
        started = time.perf_counter()
        mode = "sequential"
        try:
            with _span("exec.batch"):
                if self._workers <= 1 or len(pairs) == 1:
                    answers = self._run_sequential(
                        batch, pairs, timeout, backend
                    )
                else:
                    pool = self._get_pool()
                    if pool is None:
                        if _obs_enabled():
                            _inst.EXEC_FALLBACKS.inc()
                        answers = self._run_sequential(
                            batch, pairs, timeout, backend
                        )
                    else:
                        mode = "parallel"
                        answers = self._run_parallel(
                            pool, batch, pairs, timeout, backend
                        )
        except BatchTimeoutError as exc:
            # A timed-out batch must still reconcile in the metrics:
            # count the batch under its mode and the queries that were
            # actually answered before the deadline.
            if _obs_enabled():
                _inst.EXEC_BATCHES.labels(mode=mode).inc()
                _inst.EXEC_BATCH_QUERIES.inc(len(exc.answers))
                _inst.EXEC_BATCH_SECONDS.observe(
                    time.perf_counter() - started
                )
            raise
        if _obs_enabled():
            _inst.EXEC_BATCHES.labels(mode=mode).inc()
            _inst.EXEC_BATCH_QUERIES.inc(len(pairs))
            _inst.EXEC_BATCH_SECONDS.observe(time.perf_counter() - started)
        return answers

    # ------------------------------------------------------------------
    def _get_pool(self) -> ThreadPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        if self._pool_broken:
            return None
        try:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-exec"
            )
        except Exception:
            # Thread creation can fail under rlimits or sandboxes; the
            # batch must still be answered.
            self._pool_broken = True
            return None
        return self._pool

    def _chunks(
        self, pairs: list[tuple[int, Rect]]
    ) -> list[list[tuple[int, Rect]]]:
        size = self._chunk_size
        if size is None:
            size = max(1, ceil(len(pairs) / (self._workers * _CHUNKS_PER_WORKER)))
        return [pairs[i:i + size] for i in range(0, len(pairs), size)]

    def _run_parallel(
        self,
        pool: ThreadPoolExecutor,
        batch,
        pairs: list[tuple[int, Rect]],
        timeout: float | None,
        backend: str,
    ) -> list[bool]:
        chunks = self._chunks(pairs)
        deadline = None if timeout is None else time.monotonic() + timeout
        # Hand the serving thread's trace (if any) across to the workers:
        # each chunk attaches its own subtree, so spans and counter
        # deltas recorded inside the chunk stitch into the batch span.
        ctx = _capture()

        def work(index, chunk):
            if ctx is None:
                result = batch(chunk)
            else:
                with ctx.attach(f"exec.chunk[{index}]"):
                    result = batch(chunk)
            return result, threading.current_thread().name

        futures = [
            pool.submit(work, i, chunk) for i, chunk in enumerate(chunks)
        ]
        answers: list[bool] = []
        for i, future in enumerate(futures):
            remaining = None if deadline is None else deadline - time.monotonic()
            try:
                result, worker = future.result(timeout=remaining)
            except _FuturesTimeout:
                for pending in futures[i:]:
                    pending.cancel()
                if _obs_enabled():
                    _inst.EXEC_TIMEOUTS.inc()
                raise BatchTimeoutError(
                    f"batch deadline of {timeout:g}s exceeded after "
                    f"{i}/{len(futures)} chunks",
                    completed=i,
                    total=len(futures),
                    answers=answers,
                ) from None
            answers.extend(result)
            if _obs_enabled():
                _inst.EXEC_CHUNKS.labels(worker=worker, backend=backend).inc()
        return answers

    def _run_sequential(
        self,
        batch,
        pairs: list[tuple[int, Rect]],
        timeout: float | None,
        backend: str,
    ) -> list[bool]:
        if timeout is None:
            # One vectorized evaluation over the whole batch — no chunk
            # boundaries to dilute the cross-query sharing.
            return batch(pairs)
        # With a deadline, chunk so it can be checked between chunks (a
        # running chunk is never interrupted — same guarantee as the
        # parallel path, where in-flight chunks run to completion).
        chunks = self._chunks(pairs)
        deadline = time.monotonic() + timeout
        worker = threading.current_thread().name
        answers: list[bool] = []
        for i, chunk in enumerate(chunks):
            if time.monotonic() > deadline:
                if _obs_enabled():
                    _inst.EXEC_TIMEOUTS.inc()
                raise BatchTimeoutError(
                    f"batch deadline of {timeout:g}s exceeded after "
                    f"{i}/{len(chunks)} chunks",
                    completed=i,
                    total=len(chunks),
                    answers=answers,
                )
            with _span(f"exec.chunk[{i}]"):
                answers.extend(batch(chunk))
            if _obs_enabled():
                _inst.EXEC_CHUNKS.labels(worker=worker, backend=backend).inc()
        return answers
