"""Batched and parallel query execution (the serving-side engine).

``repro.exec`` turns the per-method batch APIs of :mod:`repro.core` into
a serving component: :class:`ParallelExecutor` chunks a query batch
across a thread pool over the *immutable* snapshot indexes (every query
path is read-only), enforces a per-batch deadline, and degrades to
sequential execution when a pool cannot be created.

Entry points further up the stack:

* :meth:`repro.core.base.RangeReachBase.execute_many` — request-level
  batches through an optional executor;
* :meth:`repro.system.database.GeosocialDatabase.range_reach_many` —
  delta-overlay-aware batches over the mutable store;
* ``repro-geosocial query --batch FILE --workers N`` — the CLI surface.
"""

from repro.exec.executor import UNSET, BatchTimeoutError, ParallelExecutor

__all__ = ["BatchTimeoutError", "ParallelExecutor", "UNSET"]
