"""Structural profiles of the paper's four evaluation datasets.

The counts are the full-size figures from Table 3 of the paper; the
generator multiplies them by ``scale``.  Derived parameters (edges per
user) are expressed as densities so they survive scaling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Generation parameters reproducing one dataset's structure.

    Attributes:
        name: dataset key (lower case).
        num_users: full-scale user count (Table 3).
        num_venues: full-scale venue count (Table 3).
        checkins_per_user: mean number of *distinct* venues a user checks
            into (check-in edges are deduplicated, as in the paper's |E|).
        friends_per_user: mean number of friendship edges per user
            (counted once per undirected pair when ``mutual``).
        mutual: friendship edges are stored in both directions.
        social_connected: force the friendship graph to be connected so
            all users collapse into one giant SCC (the Gowalla/WeePlaces
            regime).  Only meaningful with ``mutual=True``.
        reciprocity: for directed friendships, the probability that an
            edge is reciprocated (drives the size of the largest SCC in
            the Foursquare/Yelp regime).
        inactive_user_fraction: users with no outgoing edges at all; they
            become singleton SCCs, inflating the SCC count.
        num_city_clusters: venue geography is a mixture of this many
            Gaussian city clusters in the unit square.
        cluster_spread: standard deviation of each city cluster.
    """

    name: str
    num_users: int
    num_venues: int
    checkins_per_user: float
    friends_per_user: float
    mutual: bool
    social_connected: bool
    reciprocity: float
    inactive_user_fraction: float
    num_city_clusters: int
    cluster_spread: float


# Full-scale counts follow Table 3; behavioural densities are derived from
# the same table (edges / users) and rounded.
FOURSQUARE = DatasetProfile(
    name="foursquare",
    num_users=2_119_987,
    num_venues=1_132_617,
    checkins_per_user=2.2,
    friends_per_user=7.0,
    mutual=False,
    social_connected=False,
    reciprocity=0.55,
    inactive_user_fraction=0.10,
    num_city_clusters=40,
    cluster_spread=0.03,
)

GOWALLA = DatasetProfile(
    name="gowalla",
    num_users=407_533,
    num_venues=2_723_102,
    checkins_per_user=21.0,
    friends_per_user=12.0,
    mutual=True,
    social_connected=True,
    reciprocity=1.0,
    inactive_user_fraction=0.0,
    num_city_clusters=40,
    cluster_spread=0.03,
)

WEEPLACES = DatasetProfile(
    name="weeplaces",
    num_users=16_022,
    num_venues=971_309,
    checkins_per_user=48.0,
    friends_per_user=7.0,
    mutual=True,
    social_connected=True,
    reciprocity=1.0,
    inactive_user_fraction=0.0,
    num_city_clusters=30,
    cluster_spread=0.03,
)

YELP = DatasetProfile(
    name="yelp",
    num_users=1_987_693,
    num_venues=150_310,
    checkins_per_user=3.0,
    friends_per_user=5.0,
    mutual=False,
    social_connected=False,
    reciprocity=0.22,
    inactive_user_fraction=0.50,
    num_city_clusters=8,
    cluster_spread=0.05,
)

DATASET_PROFILES: dict[str, DatasetProfile] = {
    p.name: p for p in (FOURSQUARE, GOWALLA, WEEPLACES, YELP)
}
