"""Loading real geosocial dumps.

For users who do have the original data: SNAP-style dumps ship as one
friendship edge file plus one check-in file with coordinates.  This
loader stitches them into a :class:`GeosocialNetwork`, remapping raw ids
to the dense layout the library uses (users first, venues after).
"""

from __future__ import annotations

from pathlib import Path

from repro.geometry import Point
from repro.geosocial.network import GeosocialNetwork
from repro.graph.digraph import DiGraph


def load_snap_style(
    friendship_path: str | Path,
    checkin_path: str | Path,
    name: str = "snap",
    mutual: bool = False,
) -> GeosocialNetwork:
    """Load a network from SNAP-style friendship + check-in files.

    Args:
        friendship_path: lines of ``user_id user_id`` (friendship edges).
        checkin_path: lines of ``user_id venue_id x y`` (a check-in with
            the venue's coordinates; repeated check-ins deduplicate).
        name: dataset name to attach.
        mutual: also add the reverse of every friendship edge (Gowalla-
            style undirected dumps list each pair once).
    """
    user_ids: dict[str, int] = {}
    venue_ids: dict[str, int] = {}
    friend_edges: list[tuple[int, int]] = []
    checkin_edges: list[tuple[int, int]] = []
    venue_points: dict[int, Point] = {}

    def user(raw: str) -> int:
        if raw not in user_ids:
            user_ids[raw] = len(user_ids)
        return user_ids[raw]

    def venue(raw: str) -> int:
        if raw not in venue_ids:
            venue_ids[raw] = len(venue_ids)
        return venue_ids[raw]

    with open(friendship_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            a, b = line.split()[:2]
            friend_edges.append((user(a), user(b)))

    with open(checkin_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 4:
                raise ValueError(f"malformed check-in line: {line!r}")
            u = user(parts[0])
            w = venue(parts[1])
            venue_points[w] = Point(float(parts[2]), float(parts[3]))
            checkin_edges.append((u, w))

    num_users = len(user_ids)
    n = num_users + len(venue_ids)
    graph = DiGraph(n)
    seen: set[tuple[int, int]] = set()

    def add(a: int, b: int) -> None:
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            graph.add_edge(a, b)

    for a, b in friend_edges:
        add(a, b)
        if mutual:
            add(b, a)
    for u, w in checkin_edges:
        add(u, num_users + w)

    points: list[Point | None] = [None] * n
    for w, point in venue_points.items():
        points[num_users + w] = point
    kinds = ["user"] * num_users + ["venue"] * len(venue_ids)
    return GeosocialNetwork(graph, points, kinds=kinds, name=name)
