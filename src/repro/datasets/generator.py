"""Seeded synthetic geosocial network generation.

Vertex layout: users occupy ids ``0 .. U-1`` and venues ``U .. U+V-1``.
Users are non-spatial, venues carry a point — matching the paper's
datasets, where "users [are] social (non-spatial) vertices and venues
[are] spatial".

Mechanisms:

* **venue geography** — Gaussian mixture over ``num_city_clusters``
  city centers in the unit square (venues cluster in cities);
* **friendships** — heavy-tailed out-degrees with preferential target
  selection (a Yule process: previously chosen targets are more likely
  chosen again), mutualized and wired into one connected component for
  the Gowalla/WeePlaces regime, or directed with configured reciprocity
  for the Foursquare/Yelp regime;
* **check-ins** — per-user heavy-tailed venue counts with Zipf-like
  venue popularity (again a preferential pool).
"""

from __future__ import annotations

import math
import random

from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile
from repro.geometry import Point
from repro.geosocial.network import GeosocialNetwork
from repro.graph.digraph import DiGraph


def make_network(
    profile: str | DatasetProfile,
    scale: float = 0.005,
    seed: int = 42,
) -> GeosocialNetwork:
    """Generate a synthetic replica of one of the paper's datasets.

    Args:
        profile: profile object or name (``"foursquare"``, ``"gowalla"``,
            ``"weeplaces"``, ``"yelp"``).
        scale: multiplier on the full-size vertex counts of Table 3
            (``1.0`` would be paper scale; the default ``0.005`` yields a
            few thousand to ~20k vertices depending on the profile).
        seed: RNG seed; identical arguments give identical networks.
    """
    if isinstance(profile, str):
        try:
            profile = DATASET_PROFILES[profile.lower()]
        except KeyError:
            known = ", ".join(sorted(DATASET_PROFILES))
            raise ValueError(
                f"unknown dataset profile {profile!r}; known: {known}"
            ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")

    rng = random.Random(seed)
    num_users = max(4, round(profile.num_users * scale))
    num_venues = max(4, round(profile.num_venues * scale))
    n = num_users + num_venues

    graph = DiGraph(n)
    edges: set[tuple[int, int]] = set()

    def add_edge(source: int, target: int) -> None:
        if source != target and (source, target) not in edges:
            edges.add((source, target))
            graph.add_edge(source, target)

    _generate_friendships(profile, rng, num_users, add_edge)
    _generate_checkins(profile, rng, num_users, num_venues, add_edge)

    points: list[Point | None] = [None] * n
    for venue, point in enumerate(_venue_points(profile, rng, num_venues)):
        points[num_users + venue] = point
    kinds = ["user"] * num_users + ["venue"] * num_venues
    return GeosocialNetwork(graph, points, kinds=kinds, name=profile.name)


# ----------------------------------------------------------------------
# Friendships
# ----------------------------------------------------------------------
def _heavy_tail_count(rng: random.Random, mean: float) -> int:
    """Sample a non-negative count with a Pareto-like tail of given mean."""
    if mean <= 0:
        return 0
    # Pareto with alpha=2 has mean scale/(alpha-1); cap the tail so a
    # single vertex cannot swallow the whole graph.
    value = rng.paretovariate(2.0) - 1.0
    return min(int(value * mean), int(mean * 50) + 1)


def _generate_friendships(
    profile: DatasetProfile,
    rng: random.Random,
    num_users: int,
    add_edge,
) -> None:
    if num_users < 2:
        return
    inactive_cutoff = profile.inactive_user_fraction
    # Preferential pool: every chosen endpoint is appended, so popular
    # users keep attracting edges (rich get richer).
    pool: list[int] = list(range(num_users))

    if profile.social_connected and profile.mutual:
        # Spanning connectivity first: each user links to a random earlier
        # user, guaranteeing one connected (hence, with mutual edges, one
        # strongly connected) social component.
        for u in range(1, num_users):
            v = pool[rng.randrange(len(pool))] % num_users
            v = v if v < u else rng.randrange(u)
            add_edge(u, v)
            add_edge(v, u)
            pool.append(v)

    for u in range(num_users):
        if not profile.social_connected and rng.random() < inactive_cutoff:
            continue
        budget = _heavy_tail_count(rng, profile.friends_per_user)
        for _ in range(budget):
            v = pool[rng.randrange(len(pool))]
            if v == u:
                continue
            add_edge(u, v)
            pool.append(v)
            if profile.mutual or rng.random() < profile.reciprocity:
                add_edge(v, u)
                pool.append(u)


# ----------------------------------------------------------------------
# Check-ins
# ----------------------------------------------------------------------
def _generate_checkins(
    profile: DatasetProfile,
    rng: random.Random,
    num_users: int,
    num_venues: int,
    add_edge,
) -> None:
    if num_venues == 0:
        return
    pool: list[int] = list(range(num_venues))
    for u in range(num_users):
        budget = _heavy_tail_count(rng, profile.checkins_per_user)
        for _ in range(budget):
            venue = pool[rng.randrange(len(pool))]
            add_edge(u, num_users + venue)
            pool.append(venue)


# ----------------------------------------------------------------------
# Geography
# ----------------------------------------------------------------------
def _venue_points(
    profile: DatasetProfile, rng: random.Random, num_venues: int
) -> list[Point]:
    centers = [
        (rng.random(), rng.random()) for _ in range(profile.num_city_clusters)
    ]
    # City sizes are themselves heavy-tailed (a few big metros).
    weights = [rng.paretovariate(1.5) for _ in centers]
    total = sum(weights)
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def clamp(x: float) -> float:
        return min(max(x, 0.0), 1.0)

    points: list[Point] = []
    for _ in range(num_venues):
        r = rng.random()
        idx = 0
        while cumulative[idx] < r and idx < len(cumulative) - 1:
            idx += 1
        cx, cy = centers[idx]
        sigma = profile.cluster_spread
        points.append(
            Point(clamp(rng.gauss(cx, sigma)), clamp(rng.gauss(cy, sigma)))
        )
    return points


def available_profiles() -> list[str]:
    """Return the known dataset profile names."""
    return sorted(DATASET_PROFILES)


def table3_counts(profile: str | DatasetProfile, scale: float) -> tuple[int, int]:
    """Return the scaled ``(num_users, num_venues)`` a generation would use."""
    if isinstance(profile, str):
        profile = DATASET_PROFILES[profile.lower()]
    return (
        max(4, round(profile.num_users * scale)),
        max(4, round(profile.num_venues * scale)),
    )
