"""Dataset generators and loaders.

The paper evaluates on four real geosocial networks (Foursquare, Gowalla,
WeePlaces, Yelp).  Those dumps are not redistributable, so this package
generates seeded synthetic replicas that preserve each dataset's
*structural signature* — the user/venue ratio, the check-in intensity,
the venue geography, and crucially the SCC regime: Gowalla and WeePlaces
have a single giant social SCC containing every user, while Foursquare
and Yelp fragment into many SCCs (Table 3).  ``scale`` shrinks the vertex
counts proportionally (1.0 = paper size; the benchmarks default to a few
thousandths).
"""

from repro.datasets.profiles import (
    DATASET_PROFILES,
    DatasetProfile,
    FOURSQUARE,
    GOWALLA,
    WEEPLACES,
    YELP,
)
from repro.datasets.generator import make_network
from repro.datasets.loaders import load_snap_style
from repro.datasets.validation import (
    ValidationIssue,
    ValidationReport,
    validate_network,
)

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "validate_network",
    "DATASET_PROFILES",
    "DatasetProfile",
    "FOURSQUARE",
    "GOWALLA",
    "WEEPLACES",
    "YELP",
    "make_network",
    "load_snap_style",
]
