"""Validating generated datasets against their profile's invariants.

The synthetic replicas stand in for the paper's real datasets, so the
reproduction hinges on them actually exhibiting the structural signatures
of Table 3.  :func:`validate_network` checks those signatures and returns
a report; the test suite and ``python -m repro generate --verify`` use it
as a tripwire against generator regressions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile
from repro.geosocial.network import GeosocialNetwork


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One violated invariant."""

    check: str
    detail: str


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Outcome of a dataset validation run."""

    profile: str
    issues: tuple[ValidationIssue, ...]

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        if self.ok:
            return f"{self.profile}: all structural invariants hold"
        lines = [f"{self.profile}: {len(self.issues)} issue(s)"]
        lines.extend(f"  - {i.check}: {i.detail}" for i in self.issues)
        return "\n".join(lines)


def validate_network(
    network: GeosocialNetwork,
    profile: str | DatasetProfile | None = None,
) -> ValidationReport:
    """Check a network against its dataset profile's invariants.

    Args:
        network: the generated network.
        profile: the profile it claims to follow (defaults to the
            network's name).
    """
    if profile is None:
        profile = network.name
    if isinstance(profile, str):
        try:
            profile = DATASET_PROFILES[profile.lower()]
        except KeyError:
            known = ", ".join(sorted(DATASET_PROFILES))
            raise ValueError(
                f"unknown dataset profile {profile!r}; known: {known}"
            ) from None

    issues: list[ValidationIssue] = []

    def fail(check: str, detail: str) -> None:
        issues.append(ValidationIssue(check, detail))

    stats = network.stats()

    # Layout: users first, venues after; venues spatial, users not.
    num_users = stats.num_users
    for v in range(network.num_vertices):
        is_venue = v >= num_users
        if network.is_spatial(v) != is_venue:
            fail(
                "vertex-layout",
                f"vertex {v} breaks the users-then-venues layout",
            )
            break

    # Venues are sinks (check-ins/ratings point *to* venues).
    for v in network.spatial_vertices():
        if network.graph.out_degree(v) != 0:
            fail("venues-are-sinks", f"venue {v} has outgoing edges")
            break

    # User/venue ratio within a factor of the profile (rounding at small
    # scales moves it).
    expected_ratio = profile.num_users / profile.num_venues
    actual_ratio = stats.num_users / max(1, stats.num_venues)
    if not (expected_ratio / 2 <= actual_ratio <= expected_ratio * 2):
        fail(
            "user-venue-ratio",
            f"expected ~{expected_ratio:.2f}, got {actual_ratio:.2f}",
        )

    # SCC regime.
    if profile.social_connected:
        if stats.largest_scc != stats.num_users:
            fail(
                "giant-scc",
                f"largest SCC {stats.largest_scc} != #users {stats.num_users}",
            )
        if stats.num_sccs != stats.num_venues + 1:
            fail(
                "singleton-venues",
                f"#SCCs {stats.num_sccs} != #venues + 1 "
                f"({stats.num_venues + 1})",
            )
    else:
        if stats.largest_scc >= stats.num_users:
            fail(
                "fragmented-sccs",
                "largest SCC swallowed every user in a fragmented profile",
            )
        if stats.num_sccs <= stats.num_venues:
            fail(
                "fragmented-sccs",
                "fewer SCCs than venues in a fragmented profile",
            )

    # Geometry: all venue points inside the unit square.
    for v in network.spatial_vertices():
        p = network.point_of(v)
        if not (0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0):
            fail("geometry", f"venue {v} outside the unit square: {p}")
            break

    # No parallel edges.
    edges = list(network.graph.edges())
    if len(edges) != len(set(edges)):
        fail("simple-graph", "parallel edges present")

    return ValidationReport(profile=profile.name, issues=tuple(issues))
