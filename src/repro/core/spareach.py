"""SpaReach: the spatial-first baseline (Section 2.2.1).

Evaluate the spatial range query first (via a 2-D R-tree over the spatial
vertices), then issue one graph-reachability query per candidate until a
positive answer terminates the search.  The reachability index is
pluggable; the paper's two instantiations are:

* **SpaReach-BFL** — ``reach_index="bfl"`` (default), and
* **SpaReach-INT** — ``reach_index="interval"``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.base import RangeReachBase, register_method
from repro.geometry import Rect
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.geosocial.scc_handling import SCC_MODES, CondensedNetwork, SccMode
from repro.graph.digraph import DiGraph
from repro.kernels import make_bfl_kernel, resolve_backend
from repro.reach import (
    BflReach,
    BfsReach,
    ChainCoverReach,
    FelineReach,
    GrailReach,
    IntervalReach,
    PllReach,
)
from repro.reach.base import ReachabilityIndex
from repro.pipeline import BuildContext
from repro.spatial import RTree

_REACH_FACTORIES: dict[str, Callable[[DiGraph], ReachabilityIndex]] = {
    "bfl": BflReach,
    "interval": IntervalReach,
    "bfs": BfsReach,
    "pll": PllReach,
    "grail": GrailReach,
    "feline": FelineReach,
    "chain": ChainCoverReach,
}


class SpaReach(RangeReachBase):
    """Spatial-first RangeReach evaluation.

    Args:
        network: the condensed geosocial network.
        reach_index: name of the reachability scheme (``"bfl"``,
            ``"interval"``, ``"pll"``, ``"grail"``, ``"bfs"``) or a
            callable mapping the condensation DAG to an index.
        scc_mode: ``"replicate"`` indexes every member point of a spatial
            SCC individually; ``"mbr"`` indexes one MBR per spatial SCC and
            verifies member points on candidate hits (Section 5).
        rtree_capacity: R-tree node fan-out.
        streaming: the paper's SpaReach "first identif[ies] every spatial
            vertex inside R" — i.e. it materializes the complete range
            result before any reachability test, which is what makes it
            degrade with region extent.  ``streaming=True`` enables the
            obvious engineering fix (consume candidates lazily, stop at
            the first reachable one); kept off by default for fidelity
            and benchmarked as an ablation.
        spatial_index: ``"rtree"`` (default, the paper's choice),
            ``"quadtree"``, ``"grid"`` or ``"linear"``.  The paper notes
            SpaReach works with any spatial index; the SOP alternatives
            store points only, so they require ``scc_mode="replicate"``.
        context: shared :class:`BuildContext` to construct through.  Both
            SpaReach variants draw the same bulk-load feed and R-tree from
            it, and SpaReach-INT shares the context's forward interval
            labeling with SocReach/3DReach.
    """

    def __init__(
        self,
        network: CondensedNetwork,
        reach_index: str | Callable[[DiGraph], ReachabilityIndex] = "bfl",
        scc_mode: SccMode = "replicate",
        rtree_capacity: int = 16,
        streaming: bool = False,
        spatial_index: str = "rtree",
        context: BuildContext | None = None,
        kernels: str | None = None,
    ) -> None:
        if scc_mode not in SCC_MODES:
            raise ValueError(f"scc_mode must be one of {SCC_MODES}")
        if context is None:
            context = BuildContext(network, kernels=kernels)
        self.kernels = (
            context.kernels if kernels is None else resolve_backend(kernels)
        )
        if isinstance(reach_index, str):
            try:
                factory = _REACH_FACTORIES[reach_index]
            except KeyError:
                known = ", ".join(sorted(_REACH_FACTORIES))
                raise ValueError(
                    f"unknown reachability index {reach_index!r}; known: {known}"
                ) from None
        else:
            factory = reach_index
        self._network = network
        self._scc_mode = scc_mode
        self._streaming = streaming
        if reach_index == "interval":
            # SpaReach-INT's reachability labels are the same forward
            # interval labeling SocReach/3DReach use — share it.
            self._reach = IntervalReach(
                network.dag, labeling=context.labeling()
            )
        elif reach_index == "bfl":
            # Shared (and snapshot-persisted) BFL index at the default
            # parameters; custom factories below still bypass the cache.
            self._reach = context.bfl_reach()
        else:
            self._reach = factory(network.dag)
        self.name = f"spareach-{self._reach.name}"
        if scc_mode == "mbr":
            self.name += "-mbr"
        if streaming:
            self.name += "-streaming"

        if spatial_index not in ("rtree", "quadtree", "grid", "linear"):
            raise ValueError(
                "spatial_index must be 'rtree', 'quadtree', 'grid' or 'linear'"
            )
        if spatial_index in ("quadtree", "grid") and scc_mode == "mbr":
            raise ValueError(
                f"the {spatial_index} index stores points only; "
                "use scc_mode='replicate'"
            )
        if spatial_index != "rtree":
            self.name += f"-{spatial_index}"

        entries = (
            context.replicate_feed()
            if scc_mode == "replicate"
            else context.mbr_feed()
        )
        if spatial_index == "rtree":
            self._rtree = context.spatial_rtree(scc_mode, rtree_capacity)
        elif spatial_index == "linear":
            from repro.spatial import LinearScanIndex

            self._rtree = LinearScanIndex.bulk_load(entries, dims=2)
        else:
            from repro.spatial import QuadTree, UniformGridIndex

            extent = network.network.space()
            if extent.width <= 0 or extent.height <= 0:
                extent = extent.union(
                    Rect(extent.xlo - 0.5, extent.ylo - 0.5,
                         extent.xhi + 0.5, extent.yhi + 0.5)
                )
            if spatial_index == "quadtree":
                self._rtree = QuadTree.bulk_load(
                    entries, extent, leaf_capacity=rtree_capacity
                )
            else:
                self._rtree = UniformGridIndex.bulk_load(entries, extent)

        # Candidate verification routes through the point kernel (the
        # python kernel is the verbatim columnar scan); the batched BFL
        # kernel answers whole candidate lists when the reachability
        # index is BFL and the backend is numpy.
        self._pkernel = context.point_kernel(backend=self.kernels)
        if self.kernels == "numpy" and isinstance(self._reach, BflReach):
            if reach_index == "bfl":
                self._bkernel = context.bfl_kernel(backend="numpy")
            else:
                self._bkernel = make_bfl_kernel("numpy", self._reach)
        else:
            self._bkernel = None

        # Per-method work counters (the two cost drivers the paper's
        # analysis discusses), resolved once so the query path is a
        # bound Counter.inc.
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_probes = _inst.METHOD_LABEL_PROBES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        self._m_candidates = _inst.SPAREACH_CANDIDATES.labels(method=self.name)

    # ------------------------------------------------------------------
    def query(self, v: int, region: Rect) -> bool:
        with _span(f"{self.name}.query"):
            network = self._network
            source = network.super_of(v)
            query_bounds = (region.xlo, region.ylo, region.xhi, region.yhi)
            reaches = self._reach.reaches
            candidates_seen = 0
            reach_tests = 0
            verified = 0
            answer = False
            if self._streaming:
                candidates = self._rtree.search(query_bounds)
                counted_upfront = False
            else:
                # Faithful SpaReach: evaluate SRange(P, R) in full, *then*
                # run the series of GReach tests (Section 2.2.1).
                candidates = self._rtree.search_all(query_bounds)
                candidates_seen = len(candidates)
                counted_upfront = True
            if self._bkernel is not None and counted_upfront:
                # Batched BFL path: one vectorized interval + filter pass
                # over the whole (deduplicated, MBR-verified) candidate
                # list; survivors fall back to the pruned DFS inside the
                # kernel.  Same answer as the scalar series of GReach
                # tests — without the early exit, so the probe tally is
                # the full candidate count.
                distinct = list(dict.fromkeys(candidates))
                if self._scc_mode == "mbr":
                    verified = len(distinct)
                    distinct = [
                        c
                        for c in distinct
                        if self._pkernel.component_hits_region(
                            network, c, region
                        )
                    ]
                    reach_tests = len(distinct)
                else:
                    reach_tests = len(distinct)
                    verified = reach_tests
                answer = self._bkernel.any_reaches(source, distinct)
            elif self._scc_mode == "replicate":
                # Candidates arrive per point; distinct points of one SCC
                # map to the same super-vertex, so memoise the outcome.
                tested: set[int] = set()
                for component in candidates:
                    if not counted_upfront:
                        candidates_seen += 1
                    if component in tested:
                        continue
                    tested.add(component)
                    reach_tests += 1
                    verified += 1
                    if reaches(source, component):
                        answer = True
                        break
            else:
                # MBR mode: an intersecting MBR does not prove a member
                # point lies inside the region, so candidates are
                # spatially verified before the GReach test.
                for component in candidates:
                    if not counted_upfront:
                        candidates_seen += 1
                    verified += 1
                    if self._pkernel.component_hits_region(
                        network, component, region
                    ):
                        reach_tests += 1
                        if reaches(source, component):
                            answer = True
                            break
            if _obs_enabled():
                self._m_queries.inc()
                if answer:
                    self._m_positives.inc()
                self._m_candidates.inc(candidates_seen)
                self._m_probes.inc(reach_tests)
                self._m_verified.inc(verified)
            return answer

    # ------------------------------------------------------------------
    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer many queries with one SRange evaluation per region.

        SpaReach's dominant cost is the spatial range query, and it
        depends on the region alone — so the batch groups queries by
        region: each distinct region hits the R-tree exactly **once**
        (in MBR mode the spatial verification of its candidates also
        runs once), and every query over that region reuses the
        candidate list for its reachability tests.  Distinct
        ``(source, region)`` pairs likewise memoize their final answer.

        The streaming ablation materializes candidate lists here too —
        batching is itself the "stop early" engineering fix writ large,
        and the answers are identical either way.
        """
        if not pairs:
            return []
        with _span(f"{self.name}.query_batch"):
            network = self._network
            super_of = network.super_of
            reaches = self._reach.reaches
            mbr_mode = self._scc_mode == "mbr"
            resolved = [
                (super_of(v), region, region.as_tuple())
                for v, region in pairs
            ]
            # One SRange (plus MBR-mode spatial verification) per region.
            candidates_of: dict[tuple, list[int]] = {}
            candidates_seen = 0
            verified = 0
            for _, region, rkey in resolved:
                if rkey in candidates_of:
                    continue
                raw = self._rtree.search_all(rkey)
                candidates_seen += len(raw)
                distinct = list(dict.fromkeys(raw))
                if mbr_mode:
                    verified += len(distinct)
                    distinct = [
                        c for c in distinct
                        if self._pkernel.component_hits_region(
                            network, c, region
                        )
                    ]
                candidates_of[rkey] = distinct
            memo: dict[tuple[int, tuple], bool] = {}
            reach_tests = 0
            any_reaches = (
                self._bkernel.any_reaches if self._bkernel is not None else None
            )
            answers: list[bool] = []
            for source, _, rkey in resolved:
                key = (source, rkey)
                answer = memo.get(key)
                if answer is None:
                    if any_reaches is not None:
                        components = candidates_of[rkey]
                        reach_tests += len(components)
                        answer = any_reaches(source, components)
                    else:
                        answer = False
                        for component in candidates_of[rkey]:
                            reach_tests += 1
                            if reaches(source, component):
                                answer = True
                                break
                    memo[key] = answer
                answers.append(answer)
            if _obs_enabled():
                self._m_queries.inc(len(pairs))
                self._m_positives.inc(sum(answers))
                self._m_candidates.inc(candidates_seen)
                self._m_probes.inc(reach_tests)
                self._m_verified.inc(verified if mbr_mode else reach_tests)
            return answers

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Reachability labels plus the R-tree (Table 4 accounting).

        Point entries cost ``dims`` floats, MBR entries ``2 * dims`` — the
        representational gap behind the paper's observation that the MBR
        SCC variant inflates the index by tens of percent.
        """
        entry_floats = 2 if self._scc_mode == "replicate" else 4
        if isinstance(self._rtree, RTree):
            spatial = _rtree_size_bytes(self._rtree, entry_floats)
        else:
            # SOP / linear indexes: geometry + one id per entry.
            spatial = len(self._rtree) * (8 * entry_floats + 8)
        return self._reach.size_bytes() + spatial

    @property
    def reach_index(self) -> ReachabilityIndex:
        return self._reach

    @property
    def rtree(self) -> RTree:
        return self._rtree


def _rtree_size_bytes(rtree: RTree, entry_floats: int | None = None) -> int:
    """Analytic R-tree size mirroring a C++ layout.

    Args:
        rtree: the tree to account for.
        entry_floats: number of 8-byte floats one leaf entry's geometry
            occupies — ``dims`` for points, ``2 * dims`` for boxes and
            segments (the default).
    """
    stats = rtree.stats()
    if entry_floats is None:
        entry_floats = 2 * rtree.dims
    per_node_box = 8 * rtree.dims * 2
    entry_bytes = stats.num_items * (8 * entry_floats + 8)
    node_bytes = stats.num_nodes * (per_node_box + 16)
    return entry_bytes + node_bytes


@register_method("spareach-bfl")
def _build_spareach_bfl(network: CondensedNetwork, **options) -> SpaReach:
    return SpaReach(network, reach_index="bfl", **options)


@register_method("spareach-int")
def _build_spareach_int(network: CondensedNetwork, **options) -> SpaReach:
    return SpaReach(network, reach_index="interval", **options)
