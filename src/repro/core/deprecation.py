"""One shared funnel for the library's deprecation warnings.

Every deprecated alias (``GeosocialQueryEngine.range_reach``, the
``ThreeDReachRev(reversed_labeling=...)`` keyword, legacy HTTP
endpoints' Python-side helpers, ...) routes its warning through
:func:`warn_deprecated` so the policy lives in one place:

* the warning is a :class:`DeprecationWarning`, attributed to the
  *caller* of the deprecated API (not to the shim itself);
* each distinct **call site** — ``(message, file, line)`` — warns at
  most once per process, however the interpreter's warning filters are
  configured.  A loop hammering a deprecated alias produces one line,
  while two different call sites each get their own.

Tests use :func:`reset` to clear the seen-set between cases.
"""

from __future__ import annotations

import sys
import threading
import warnings

__all__ = ["warn_deprecated", "reset"]

_seen: set[tuple[str, str, int]] = set()
_lock = threading.Lock()


def warn_deprecated(message: str, *, stacklevel: int = 2) -> bool:
    """Emit ``message`` as a DeprecationWarning, once per call site.

    Args:
        message: the warning text.
        stacklevel: which frame the warning is attributed to, counted
            exactly like :func:`warnings.warn` from the perspective of
            the function calling this helper — the default ``2`` points
            at the *caller of the deprecated shim*, which is where the
            fix belongs.

    Returns:
        True when the warning was emitted, False when this call site
        had already warned.
    """
    try:
        frame = sys._getframe(stacklevel)
        key = (message, frame.f_code.co_filename, frame.f_lineno)
    except ValueError:  # stack shallower than stacklevel
        key = (message, "<unknown>", 0)
    with _lock:
        if key in _seen:
            return False
        _seen.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)
    return True


def reset() -> None:
    """Forget every call site that has warned (for tests)."""
    with _lock:
        _seen.clear()
