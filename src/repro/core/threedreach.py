"""3DReach: the paper's point-based 3-D transformation (Section 4.2).

Every spatial vertex ``u`` becomes the 3-D point
``(u.x, u.y, post(u))`` where ``post`` is its post-order number in the
interval labeling.  A ``RangeReach(G, v, R)`` query is rewritten into one
3-D range query (cuboid) per label ``[l, h] ∈ L(v)``: base ``R``,
z-extent ``[l, h]``.  The answer is TRUE iff any cuboid contains an
indexed point — that point simultaneously satisfies the spatial predicate
(x/y inside ``R``) and the reachability predicate (``l <= post <= h``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import RangeReachBase, register_method
from repro.geometry import Rect
from repro.geosocial.columnar import build_post_slabs
from repro.geosocial.scc_handling import SCC_MODES, CondensedNetwork, SccMode
from repro.kernels import make_slab_kernel, resolve_backend
from repro.labeling import IntervalLabeling
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext
from repro.spatial import RTree


class ThreeDReach(RangeReachBase):
    """Point-based 3DReach over a 3-D R-tree."""

    def __init__(
        self,
        network: CondensedNetwork,
        labeling: IntervalLabeling | None = None,
        scc_mode: SccMode = "replicate",
        mode: str = "subtree",
        stride: int = 1,
        rtree_capacity: int = 16,
        context: BuildContext | None = None,
        kernels: str | None = None,
    ) -> None:
        if scc_mode not in SCC_MODES:
            raise ValueError(f"scc_mode must be one of {SCC_MODES}")
        self._network = network
        self._scc_mode = scc_mode
        self.name = "3dreach" if scc_mode == "replicate" else "3dreach-mbr"
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_probes = _inst.METHOD_LABEL_PROBES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        if labeling is not None:
            # An explicitly supplied labeling may not match any context
            # key, so its R-tree is built locally (current behavior).
            self._labeling = labeling
            post = labeling.post
            if scc_mode == "replicate":
                # One 3-D point per member point of each spatial
                # super-vertex.
                entries = (
                    ((p.x, p.y, post[c], p.x, p.y, post[c]), c)
                    for p, c in network.replicate_entries()
                )
            else:
                # One flat 3-D box per spatial super-vertex: the member
                # MBR at height post(c).
                entries = (
                    ((m.xlo, m.ylo, post[c], m.xhi, m.yhi, post[c]), c)
                    for m, c in network.mbr_entries()
                )
            self._rtree = RTree.bulk_load(
                entries, dims=3, capacity=rtree_capacity
            )
            self.kernels = resolve_backend(kernels)
            self._skernel = (
                make_slab_kernel(
                    "numpy",
                    build_post_slabs(network, labeling),
                    labeling.stride,
                )
                if self.kernels == "numpy"
                else None
            )
        else:
            if context is None:
                context = BuildContext(network, kernels=kernels)
            self.kernels = (
                context.kernels if kernels is None else resolve_backend(kernels)
            )
            self._labeling = context.labeling(mode=mode, stride=stride)
            self._rtree = context.point_rtree_3d(
                scc_mode, mode=mode, stride=stride, capacity=rtree_capacity
            )
            # The numpy backend answers each cuboid with one slab sweep
            # (identical slot arithmetic to SocReach); python keeps the
            # R-tree descent as the oracle path.
            self._skernel = (
                context.slab_kernel(mode=mode, stride=stride, backend="numpy")
                if self.kernels == "numpy"
                else None
            )

    # ------------------------------------------------------------------
    def query(self, v: int, region: Rect) -> bool:
        # Dual path (like the R-tree): 3DReach queries run in ~10us, so
        # even local tallies show up; the disabled path is the plain loop.
        with _span(f"{self.name}.query"):
            if _obs_enabled():
                return self._query_counted(v, region)
            return self._query_plain(v, region)

    def _query_plain(self, v: int, region: Rect) -> bool:
        network = self._network
        source = network.super_of(v)
        rtree = self._rtree
        if self._skernel is not None:
            # Each cuboid (R x [lo, hi]) contains an indexed point iff
            # the post-order slab sweep over the same z-range hits R —
            # in both SCC modes the witness is a member point.
            any_in_zrange = self._skernel.any_in_zrange
            for lo, hi in self._labeling.labels_of(source):
                if any_in_zrange(region, lo, hi):
                    return True
            return False
        if self._scc_mode == "replicate":
            # One cuboid per label; the first contained point wins.
            for lo, hi in self._labeling.labels_of(source):
                cuboid = (region.xlo, region.ylo, lo,
                          region.xhi, region.yhi, hi)
                if rtree.any_intersecting(cuboid) is not None:
                    return True
            return False
        # MBR mode: an intersecting box only proves the super-vertex
        # is reachable and its MBR overlaps R; verify member points.
        for lo, hi in self._labeling.labels_of(source):
            cuboid = (region.xlo, region.ylo, lo,
                      region.xhi, region.yhi, hi)
            for component in rtree.search(cuboid):
                if network.component_hits_region(component, region):
                    return True
        return False

    def _query_counted(self, v: int, region: Rect) -> bool:
        """Same evaluation as :meth:`_query_plain`, with work tallies."""
        network = self._network
        source = network.super_of(v)
        rtree = self._rtree
        cuboids = 0
        verified = 0
        answer = False
        if self._skernel is not None:
            any_in_zrange = self._skernel.any_in_zrange
            for lo, hi in self._labeling.labels_of(source):
                cuboids += 1
                if any_in_zrange(region, lo, hi):
                    answer = True
                    break
        elif self._scc_mode == "replicate":
            for lo, hi in self._labeling.labels_of(source):
                cuboids += 1
                cuboid = (region.xlo, region.ylo, lo,
                          region.xhi, region.yhi, hi)
                if rtree.any_intersecting(cuboid) is not None:
                    answer = True
                    break
        else:
            for lo, hi in self._labeling.labels_of(source):
                cuboids += 1
                cuboid = (region.xlo, region.ylo, lo,
                          region.xhi, region.yhi, hi)
                for component in rtree.search(cuboid):
                    verified += 1
                    if network.component_hits_region(component, region):
                        answer = True
                        break
                if answer:
                    break
        self._m_queries.inc()
        if answer:
            self._m_positives.inc()
        # One cuboid per interval label probed (up to early exit).
        self._m_probes.inc(cuboids)
        self._m_verified.inc(verified)
        _inst.THREEDREACH_CUBOIDS.inc(cuboids)
        return answer

    # ------------------------------------------------------------------
    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer many queries with shared, z-ordered R-tree descents.

        Distinct ``(source, region)`` work items are evaluated once (the
        answer is a pure function of that pair) in ascending order of the
        source's first label ``z``-extent, so consecutive cuboid queries
        descend overlapping R-tree subtrees while those nodes are hot.
        Sources with no labels answer FALSE without touching the R-tree.
        """
        if not pairs:
            return []
        with _span(f"{self.name}.query_batch"):
            network = self._network
            super_of = network.super_of
            labels_of = self._labeling.labels_of
            rtree = self._rtree
            resolved = [
                (super_of(v), region, region.as_tuple())
                for v, region in pairs
            ]
            unique: dict[tuple[int, tuple], Rect] = {}
            for source, region, rkey in resolved:
                unique.setdefault((source, rkey), region)

            def z_of(item: tuple[tuple[int, tuple], Rect]) -> float:
                labels = labels_of(item[0][0])
                return labels[0][0] if labels else -1.0

            memo: dict[tuple[int, tuple], bool] = {}
            cuboids = 0
            verified = 0
            replicate = self._scc_mode == "replicate"
            sweep = (
                self._skernel.any_in_zrange if self._skernel is not None else None
            )
            for (source, rkey), region in sorted(
                unique.items(), key=z_of
            ):
                answer = False
                for lo, hi in labels_of(source):
                    cuboids += 1
                    if sweep is not None:
                        if sweep(region, lo, hi):
                            answer = True
                        if answer:
                            break
                        continue
                    cuboid = (region.xlo, region.ylo, lo,
                              region.xhi, region.yhi, hi)
                    if replicate:
                        if rtree.any_intersecting(cuboid) is not None:
                            answer = True
                    else:
                        for component in rtree.search(cuboid):
                            verified += 1
                            if network.component_hits_region(
                                component, region
                            ):
                                answer = True
                                break
                    if answer:
                        break
                memo[(source, rkey)] = answer
            answers = [memo[(source, rkey)] for source, _, rkey in resolved]
            if _obs_enabled():
                self._m_queries.inc(len(pairs))
                self._m_positives.inc(sum(answers))
                self._m_probes.inc(cuboids)
                self._m_verified.inc(verified)
                _inst.THREEDREACH_CUBOIDS.inc(cuboids)
            return answers

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Interval labels plus the 3-D R-tree (Table 4 accounting).

        Point entries cost 3 floats; MBR-variant entries are flat boxes
        (6 floats) — matching the paper's observation that the MBR SCC
        variant inflates the 3-D index.
        """
        from repro.core.spareach import _rtree_size_bytes

        entry_floats = 3 if self._scc_mode == "replicate" else 6
        return self._labeling.size_bytes() + _rtree_size_bytes(
            self._rtree, entry_floats
        )

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling

    @property
    def rtree(self) -> RTree:
        return self._rtree


@register_method("3dreach")
def _build_3dreach(network: CondensedNetwork, **options) -> ThreeDReach:
    return ThreeDReach(network, **options)
