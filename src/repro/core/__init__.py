"""RangeReach evaluation methods (the paper's primary contribution).

Every class answers ``RangeReach(G, v, R)`` — "can vertex ``v`` reach any
spatial vertex located inside region ``R``?" — over a condensed geosocial
network:

* :class:`SpaReach` — spatial-first baseline (Section 2.2.1): R-tree range
  query, then one ``GReach`` test per candidate.  Plug in
  :class:`repro.reach.BflReach` for SpaReach-BFL or
  :class:`repro.reach.IntervalReach` for SpaReach-INT.
* :class:`GeoReach` — the prior state of the art (Sarwat & Sun; Section
  2.2.2): SPA-graph with B/R/G-vertex classification, pruned traversal.
* :class:`SocReach` — the paper's social-first method (Section 4.1).
* :class:`ThreeDReach` — the paper's 3-D transformation (Section 4.2),
  point-based: one cuboid query per interval label.
* :class:`ThreeDReachRev` — the line-based variant: reversed labeling,
  vertical segments, a single slab query per RangeReach.
* :class:`RangeReachOracle` — index-free BFS ground truth.

All methods accept *original* vertex ids and a :class:`repro.geometry.Rect`
region, and share the ``scc_mode`` choice of Section 5 ("replicate" or
"mbr").
"""

from repro.core.base import (
    METHOD_REGISTRY,
    QueryRequest,
    QueryResult,
    RangeReachBase,
    RangeReachMethod,
    build_method,
    build_methods,
    sync_known_names_doc,
)
from repro.core.deprecation import warn_deprecated
from repro.core.extensions import GeosocialQueryEngine
from repro.core.oracle import RangeReachOracle
from repro.core.spareach import SpaReach
from repro.core.socreach import SocReach
from repro.core.georeach import GeoReach, GeoReachParams
from repro.core.threedreach import ThreeDReach
from repro.core.threedreach_rev import ThreeDReachRev
from repro.core.verify import Disagreement, assert_agreement, cross_check

# The built-in registrations above are complete: freeze them into the
# factory's documented name list.
sync_known_names_doc()

__all__ = [
    "QueryRequest",
    "QueryResult",
    "RangeReachBase",
    "RangeReachMethod",
    "build_method",
    "build_methods",
    "METHOD_REGISTRY",
    "sync_known_names_doc",
    "warn_deprecated",
    "GeosocialQueryEngine",
    "RangeReachOracle",
    "SpaReach",
    "SocReach",
    "GeoReach",
    "GeoReachParams",
    "ThreeDReach",
    "ThreeDReachRev",
    "Disagreement",
    "assert_agreement",
    "cross_check",
]
