"""3DReach-Rev: the line-based 3DReach variant (Section 4.2).

Built on the *reversed* interval labeling, whose labels of a vertex cover
the post-order numbers of its *ancestors*.  Every spatial vertex ``u``
becomes a set of vertical segments at ``(u.x, u.y)``, one per reversed
label ``[l, h] ∈ L_rev(u)``.  A query is then a *single* 3-D slab query:
the plane with base ``R`` at height ``z = post_rev(v)``.  The plane cuts a
segment of ``u`` iff ``v`` is an ancestor of ``u`` (reachability) and
``u``'s point lies in ``R`` (spatial predicate).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import RangeReachBase, register_method
from repro.core.deprecation import warn_deprecated
from repro.geometry import Rect
from repro.geosocial.scc_handling import SCC_MODES, CondensedNetwork, SccMode
from repro.kernels import make_segment_kernel, resolve_backend
from repro.labeling import IntervalLabeling
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext
from repro.spatial import RTree


class ThreeDReachRev(RangeReachBase):
    """Line-based 3DReach over the reversed labeling.

    The labeling argument uses the canonical ``labeling=`` keyword shared
    by every method class; ``reversed_labeling=`` is accepted as a
    deprecated alias (the value was always the reversed labeling — the
    class name already says so).
    """

    def __init__(
        self,
        network: CondensedNetwork,
        labeling: IntervalLabeling | None = None,
        scc_mode: SccMode = "replicate",
        mode: str = "subtree",
        rtree_capacity: int = 16,
        context: BuildContext | None = None,
        reversed_labeling: IntervalLabeling | None = None,
        kernels: str | None = None,
    ) -> None:
        if scc_mode not in SCC_MODES:
            raise ValueError(f"scc_mode must be one of {SCC_MODES}")
        if reversed_labeling is not None:
            if labeling is not None:
                raise TypeError(
                    "pass labeling= or reversed_labeling=, not both"
                )
            warn_deprecated(
                "ThreeDReachRev(reversed_labeling=...) is deprecated; "
                "use the canonical labeling= keyword"
            )
            labeling = reversed_labeling
        self._network = network
        self._scc_mode = scc_mode
        self.name = "3dreach-rev" if scc_mode == "replicate" else "3dreach-rev-mbr"
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_probes = _inst.METHOD_LABEL_PROBES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        if labeling is not None:
            # An explicitly supplied labeling may not match any context
            # key, so its R-tree is built locally (current behavior).
            self._labeling = labeling
            labels = labeling.labels

            def entries():
                if self._scc_mode == "replicate":
                    for point, component in network.replicate_entries():
                        for lo, hi in labels[component]:
                            yield (
                                (point.x, point.y, lo, point.x, point.y, hi),
                                component,
                            )
                else:
                    for mbr, component in network.mbr_entries():
                        for lo, hi in labels[component]:
                            yield (
                                (mbr.xlo, mbr.ylo, lo, mbr.xhi, mbr.yhi, hi),
                                component,
                            )

            self._rtree = RTree.bulk_load(
                entries(), dims=3, capacity=rtree_capacity
            )
            self.kernels = resolve_backend(kernels)
            self._gkernel = (
                make_segment_kernel("numpy", network, labeling)
                if self.kernels == "numpy"
                else None
            )
        else:
            if context is None:
                context = BuildContext(network, kernels=kernels)
            self.kernels = (
                context.kernels if kernels is None else resolve_backend(kernels)
            )
            self._labeling = context.reversed_labeling(mode=mode)
            self._rtree = context.segment_rtree_3d(
                scc_mode, mode=mode, capacity=rtree_capacity
            )
            # The numpy backend sweeps the flattened (point, label)
            # segment columns; since a slab hit in either SCC mode is
            # witnessed by a member point, one replicate-shaped kernel
            # answers both.  Python keeps the R-tree as the oracle.
            self._gkernel = (
                context.segment_kernel(mode=mode, backend="numpy")
                if self.kernels == "numpy"
                else None
            )

    # ------------------------------------------------------------------
    def query(self, v: int, region: Rect) -> bool:
        with _span(f"{self.name}.query"):
            network = self._network
            source = network.super_of(v)
            z = float(self._labeling.post_of(source))
            slab = (region.xlo, region.ylo, z, region.xhi, region.yhi, z)
            verified = 0
            if self._gkernel is not None:
                answer = self._gkernel.any_at(
                    region, self._labeling.post_of(source)
                )
            elif self._scc_mode == "replicate":
                # Segments are degenerate in x/y, so box intersection with
                # the slab is exact: any hit is a witness.
                answer = self._rtree.any_intersecting(slab) is not None
            else:
                answer = False
                for component in self._rtree.search(slab):
                    verified += 1
                    if network.component_hits_region(component, region):
                        answer = True
                        break
            if _obs_enabled():
                self._m_queries.inc()
                if answer:
                    self._m_positives.inc()
                # The single slab query plays the role of the label probe.
                self._m_probes.inc()
                self._m_verified.inc(verified)
                _inst.THREEDREACH_REV_SLABS.inc()
            return answer

    # ------------------------------------------------------------------
    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer many queries as a z-sorted sweep of slab queries.

        The answer is a pure function of ``(post_rev(source), region)``,
        so distinct slabs are evaluated once, in ascending slab height:
        consecutive slab queries cut overlapping R-tree subtrees while
        those nodes are hot, and duplicated queries reuse the memoized
        answer without a second R-tree descent.
        """
        if not pairs:
            return []
        with _span(f"{self.name}.query_batch"):
            network = self._network
            super_of = network.super_of
            post_of = self._labeling.post_of
            rtree = self._rtree
            resolved = [
                (float(post_of(super_of(v))), region.as_tuple(), region)
                for v, region in pairs
            ]
            unique: dict[tuple[float, tuple], Rect] = {}
            for z, rkey, region in resolved:
                unique.setdefault((z, rkey), region)
            memo: dict[tuple[float, tuple], bool] = {}
            verified = 0
            replicate = self._scc_mode == "replicate"
            sweep = self._gkernel.any_at if self._gkernel is not None else None
            for (z, rkey) in sorted(unique):
                region = unique[(z, rkey)]
                slab = (region.xlo, region.ylo, z,
                        region.xhi, region.yhi, z)
                if sweep is not None:
                    answer = sweep(region, int(z))
                elif replicate:
                    answer = rtree.any_intersecting(slab) is not None
                else:
                    answer = False
                    for component in rtree.search(slab):
                        verified += 1
                        if network.component_hits_region(component, region):
                            answer = True
                            break
                memo[(z, rkey)] = answer
            answers = [memo[(z, rkey)] for z, rkey, _ in resolved]
            if _obs_enabled():
                slabs = len(unique)
                self._m_queries.inc(len(pairs))
                self._m_positives.inc(sum(answers))
                self._m_probes.inc(slabs)
                self._m_verified.inc(verified)
                _inst.THREEDREACH_REV_SLABS.inc(slabs)
            return answers

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Reversed labels plus the 3-D R-tree (Table 4 accounting).

        The R-tree stores one box-shaped entry per (point, label) pair —
        matching the paper's remark that Boost stores segments and boxes
        alike, which is why the MBR variant costs no extra space here.
        """
        from repro.core.spareach import _rtree_size_bytes

        # Segments and boxes both occupy two 3-D endpoints, so replicate
        # and MBR variants cost the same here (as in the paper).
        return self._labeling.size_bytes() + _rtree_size_bytes(self._rtree, 6)

    @property
    def labeling(self) -> IntervalLabeling:
        """The *reversed* interval labeling."""
        return self._labeling

    @property
    def rtree(self) -> RTree:
        return self._rtree


@register_method("3dreach-rev")
def _build_3dreach_rev(network: CondensedNetwork, **options) -> ThreeDReachRev:
    return ThreeDReachRev(network, **options)
