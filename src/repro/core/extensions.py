"""Extended geosocial reachability queries.

The paper's conclusions list "the computation of other types of geosocial
queries" as future work.  This module builds the natural family on top of
the 3DReach transformation — the same 3-D R-tree over ``(x, y, post)``
points answers all of them:

* :meth:`GeosocialQueryEngine.query` — the boolean query (3DReach);
* :meth:`GeosocialQueryEngine.count` — how many reachable spatial
  vertices lie inside ``R``;
* :meth:`GeosocialQueryEngine.witnesses` — enumerate them;
* :meth:`GeosocialQueryEngine.at_least` — early-exit threshold test;
* :meth:`GeosocialQueryEngine.nearest` — the nearest reachable spatial
  vertex to a point (expanding-search, exact).

Counting relies on the compressed labels being *disjoint* in post-order
space: the per-label cuboids never overlap, so summing their counts never
double-counts a vertex.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.base import RangeReachBase
from repro.core.deprecation import warn_deprecated
from repro.geometry import Point, Rect, as_rect
from repro.geosocial.columnar import build_post_slabs
from repro.geosocial.scc_handling import CondensedNetwork
from repro.kernels import (
    make_label_kernel,
    make_slab_kernel,
    resolve_backend,
)
from repro.labeling import IntervalLabeling
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext
from repro.spatial import RTree


class GeosocialQueryEngine(RangeReachBase):
    """Answers the extended RangeReach query family over one network.

    The boolean query speaks the same protocol as the method classes:
    :meth:`query` / :meth:`query_batch` /
    :meth:`~repro.core.base.RangeReachBase.execute`.  The historical
    :meth:`range_reach` name remains as a deprecated alias.
    """

    name = "engine"

    def __init__(
        self,
        network: CondensedNetwork,
        labeling: IntervalLabeling | None = None,
        mode: str = "subtree",
        stride: int = 1,
        rtree_capacity: int = 16,
        context: BuildContext | None = None,
        kernels: str | None = None,
    ) -> None:
        self._network = network
        if labeling is not None:
            # An explicitly supplied labeling may not match any context
            # key, so its R-tree is built locally (current behavior).
            self._labeling = labeling
            post = labeling.post
            entries = (
                ((p.x, p.y, post[c], p.x, p.y, post[c]), vertex)
                for p, c, vertex in network.vertex_entries()
            )
            self._rtree = RTree.bulk_load(
                entries, dims=3, capacity=rtree_capacity
            )
            self.kernels = resolve_backend(kernels)
            if self.kernels == "numpy":
                self._skernel = make_slab_kernel(
                    "numpy",
                    build_post_slabs(network, labeling),
                    labeling.stride,
                )
                self._lkernel = make_label_kernel("numpy", labeling)
            else:
                self._skernel = None
                self._lkernel = None
        else:
            if context is None:
                context = BuildContext(network, kernels=kernels)
            self.kernels = (
                context.kernels if kernels is None else resolve_backend(kernels)
            )
            self._labeling = context.labeling(mode=mode, stride=stride)
            self._rtree = context.vertex_rtree_3d(
                mode=mode, stride=stride, capacity=rtree_capacity
            )
            # The numpy backend answers the boolean query with slab
            # sweeps (the slabs index every member point, so existence
            # matches the vertex R-tree) and batches ``reaches`` probes
            # through the label kernel.  Extended queries (count,
            # witnesses, nearest) need vertex identities and stay on the
            # R-tree under both backends.
            if self.kernels == "numpy":
                self._skernel = context.slab_kernel(
                    mode=mode, stride=stride, backend="numpy"
                )
                self._lkernel = context.label_kernel(
                    mode=mode, stride=stride, backend="numpy"
                )
            else:
                self._skernel = None
                self._lkernel = None

    # ------------------------------------------------------------------
    def _cuboids(self, v: int, region: Rect):
        source = self._network.super_of(v)
        for lo, hi in self._labeling.labels_of(source):
            yield (region.xlo, region.ylo, lo, region.xhi, region.yhi, hi)

    def query(self, v: int, region: Rect) -> bool:
        """The paper's boolean RangeReach query (3DReach evaluation)."""
        region = as_rect(region)
        with _span("engine.query"):
            if self._skernel is not None:
                source = self._network.super_of(v)
                any_in_zrange = self._skernel.any_in_zrange
                for lo, hi in self._labeling.labels_of(source):
                    if any_in_zrange(region, lo, hi):
                        return True
                return False
            for cuboid in self._cuboids(v, region):
                if self._rtree.any_intersecting(cuboid) is not None:
                    return True
            return False

    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Batched boolean queries; distinct ``(source, region)`` pairs
        evaluate once, sorted by first-label height to keep consecutive
        cuboid descents in overlapping R-tree subtrees."""
        if not pairs:
            return []
        with _span("engine.query_batch"):
            super_of = self._network.super_of
            labels_of = self._labeling.labels_of
            rtree = self._rtree
            resolved = [
                (super_of(v), rect, rect.as_tuple())
                for v, rect in ((v, as_rect(region)) for v, region in pairs)
            ]
            unique: dict[tuple[int, tuple], Rect] = {}
            for source, region, rkey in resolved:
                unique.setdefault((source, rkey), region)

            def z_of(item: tuple[tuple[int, tuple], Rect]) -> float:
                labels = labels_of(item[0][0])
                return labels[0][0] if labels else -1.0

            memo: dict[tuple[int, tuple], bool] = {}
            sweep = (
                self._skernel.any_in_zrange
                if self._skernel is not None
                else None
            )
            for (source, rkey), region in sorted(unique.items(), key=z_of):
                answer = False
                for lo, hi in labels_of(source):
                    if sweep is not None:
                        if sweep(region, lo, hi):
                            answer = True
                            break
                        continue
                    cuboid = (region.xlo, region.ylo, lo,
                              region.xhi, region.yhi, hi)
                    if rtree.any_intersecting(cuboid) is not None:
                        answer = True
                        break
                memo[(source, rkey)] = answer
            return [memo[(source, rkey)] for source, _, rkey in resolved]

    def range_reach(self, v: int, region: Rect) -> bool:
        """Deprecated alias of :meth:`query` (the pre-unification name)."""
        warn_deprecated(
            "GeosocialQueryEngine.range_reach is deprecated; "
            "use query(v, region) — the unified RangeReach protocol name"
        )
        return self.query(v, region)

    def reaches(self, u: int, v: int) -> bool:
        """Vertex-to-vertex reachability over the snapshot (Lemma 3.1).

        Both arguments are *original* vertex ids; the test runs on the
        condensation's interval labels, so it costs one label lookup.
        Used by the delta overlay to decide whether a snapshot vertex can
        reach the source of an edge added after the snapshot was built.
        """
        su = self._network.super_of(u)
        sv = self._network.super_of(v)
        return su == sv or self._labeling.greach(su, sv)

    def reaches_many(self, u: int, targets: Sequence[int]) -> list[bool]:
        """Batched :meth:`reaches`: one source, many target vertices.

        Under the numpy backend the whole batch resolves with a single
        ``searchsorted`` over the source's sorted, disjoint labels; the
        python backend runs the scalar probes.  Answers are identical.
        """
        super_of = self._network.super_of
        su = super_of(u)
        supers = [super_of(t) for t in targets]
        if self._lkernel is not None:
            return self._lkernel.covers_many(su, supers)
        greach = self._labeling.greach
        return [su == sv or greach(su, sv) for sv in supers]

    @property
    def num_vertices(self) -> int:
        """Number of original vertices covered by this snapshot."""
        return len(self._network.component_of)

    def count(self, v: int, region: Rect) -> int:
        """Count the spatial vertices inside ``region`` reachable from ``v``.

        Compressed labels are disjoint, so per-cuboid counts add up
        exactly.
        """
        region = as_rect(region)
        with _span("engine.count"):
            return sum(
                self._rtree.count_intersecting(cuboid)
                for cuboid in self._cuboids(v, region)
            )

    def witnesses(self, v: int, region: Rect) -> list[int]:
        """Return the original ids of all reachable spatial vertices in
        ``region``."""
        region = as_rect(region)
        with _span("engine.witnesses"):
            out: list[int] = []
            for cuboid in self._cuboids(v, region):
                out.extend(self._rtree.search(cuboid))
            return out

    def at_least(self, v: int, region: Rect, k: int) -> bool:
        """Return True iff at least ``k`` reachable spatial vertices lie
        in ``region`` (early exit as soon as the threshold is met)."""
        region = as_rect(region)
        with _span("engine.at_least"):
            if k <= 0:
                return True
            found = 0
            for cuboid in self._cuboids(v, region):
                for _ in self._rtree.search(cuboid):
                    found += 1
                    if found >= k:
                        return True
            return False

    def nearest(self, v: int, location: Point) -> tuple[int, float] | None:
        """Return ``(vertex, distance)`` of the reachable spatial vertex
        closest to ``location``, or None if ``v`` reaches no spatial vertex.

        Exact: an expanding square search finds a first candidate at
        distance ``d``; a final square of half-side ``d`` (which fully
        contains the radius-``d`` disc boundary candidates) settles the
        minimum.
        """
        with _span("engine.nearest"):
            space = self._network.network.space()
            # The search must be able to cover the entire indexed space
            # even when the query point lies far outside it: the stopping
            # radius is the farthest space corner, not the space diagonal.
            reach_limit = max(
                abs(location.x - space.xlo), abs(location.x - space.xhi),
                abs(location.y - space.ylo), abs(location.y - space.yhi),
                1e-9,
            )
            # Inflate past floating-point cancellation: the final square
            # must strictly contain the farthest corner, not meet it to
            # the ulp.
            reach_limit *= 1.0 + 1e-9
            reach_limit += 1e-12
            half = reach_limit / 1024.0
            best: tuple[int, float] | None = None
            while True:
                region = Rect(
                    location.x - half, location.y - half,
                    location.x + half, location.y + half,
                )
                best = self._closest_in(v, region, location)
                if best is not None or half >= reach_limit:
                    break
                half = min(half * 2.0, reach_limit)
            if best is None:
                return None
            # Points outside the square but within distance best[1] may
            # exist; one more query over the tight square catches them.
            d = best[1]
            region = Rect(
                location.x - d, location.y - d, location.x + d, location.y + d
            )
            refined = self._closest_in(v, region, location)
            return refined if refined is not None else best

    def _closest_in(
        self, v: int, region: Rect, location: Point
    ) -> tuple[int, float] | None:
        best_vertex = -1
        best_distance = math.inf
        points = self._network.network.points
        for vertex in self.witnesses(v, region):
            point = points[vertex]
            d = location.distance_to(point)
            if d < best_distance:
                best_vertex, best_distance = vertex, d
        if best_vertex < 0:
            return None
        return best_vertex, best_distance

    # ------------------------------------------------------------------
    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling

    def size_bytes(self) -> int:
        from repro.core.spareach import _rtree_size_bytes

        return self._labeling.size_bytes() + _rtree_size_bytes(self._rtree, 3)
