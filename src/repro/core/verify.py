"""Cross-method verification utilities.

Every RangeReach method must agree with every other (and with the BFS
oracle) on every query; this module packages that check for tests,
benchmarks and users integrating new methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.base import RangeReachMethod
from repro.geometry import Rect
from repro.workloads.queries import Query


@dataclass(frozen=True, slots=True)
class Disagreement:
    """One query on which the methods split."""

    vertex: int
    region: Rect
    answers: tuple[tuple[str, bool], ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        votes = ", ".join(f"{name}={answer}" for name, answer in self.answers)
        return f"vertex {self.vertex}, region {self.region.as_tuple()}: {votes}"


def cross_check(
    methods: Sequence[RangeReachMethod],
    queries: Sequence[Query],
    reference: RangeReachMethod | None = None,
) -> list[Disagreement]:
    """Run every query through every method; collect disagreements.

    Args:
        methods: at least two methods (or one plus a ``reference``).
        queries: the workload to replay.
        reference: optional ground truth (e.g.
            :class:`repro.core.RangeReachOracle`); when given, any method
            deviating from it is a disagreement even if methods agree
            among themselves.

    Returns:
        The queries on which answers differ (empty = all consistent).
    """
    if len(methods) + (reference is not None) < 2:
        raise ValueError("need at least two answerers to cross-check")
    disagreements: list[Disagreement] = []
    for query in queries:
        answers: list[tuple[str, bool]] = []
        if reference is not None:
            answers.append(
                (reference.name, reference.query(query.vertex, query.region))
            )
        for method in methods:
            answers.append(
                (method.name, method.query(query.vertex, query.region))
            )
        if len({answer for _, answer in answers}) > 1:
            disagreements.append(
                Disagreement(query.vertex, query.region, tuple(answers))
            )
    return disagreements


def assert_agreement(
    methods: Sequence[RangeReachMethod],
    queries: Sequence[Query],
    reference: RangeReachMethod | None = None,
) -> None:
    """Raise ``AssertionError`` listing the first few disagreements."""
    disagreements = cross_check(methods, queries, reference)
    if disagreements:
        sample = "\n".join(str(d) for d in disagreements[:5])
        raise AssertionError(
            f"{len(disagreements)} of {len(queries)} queries disagree:\n{sample}"
        )
