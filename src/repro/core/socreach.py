"""SocReach: the paper's social-first method (Section 4.1).

Use the interval labeling to enumerate the descendants ``D(v)`` of the
query vertex, and spatially verify each against the query region.  No
spatial index is involved — the descendant set is produced on the fly, so
(as the paper notes) spatial indexing cannot accelerate the containment
tests; the method's cost tracks ``|D(v)|``.
"""

from __future__ import annotations

from repro.core.base import register_method
from repro.geometry import Rect
from repro.geosocial.scc_handling import CondensedNetwork
from repro.labeling import IntervalLabeling, build_labeling
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span


class SocReach:
    """Social-first RangeReach evaluation over the interval labeling.

    ``descendant_access`` selects how the post-order range queries of
    Section 4.1 are evaluated — the two options the paper names:

    * ``"array"`` (default) — "simple for loops on the array storing the
      network vertices in main memory";
    * ``"bptree"`` — "a traditional B+-tree which indexes post(v)"; only
      spatial vertices are indexed, so sparse descendant sets skip the
      non-spatial majority entirely.
    """

    name = "socreach"

    def __init__(
        self,
        network: CondensedNetwork,
        labeling: IntervalLabeling | None = None,
        mode: str = "subtree",
        descendant_access: str = "array",
    ) -> None:
        if descendant_access not in ("array", "bptree"):
            raise ValueError("descendant_access must be 'array' or 'bptree'")
        self._network = network
        self._access = descendant_access
        self._labeling = (
            labeling if labeling is not None else build_labeling(network.dag, mode=mode)
        )
        if descendant_access == "bptree":
            from repro.relational import BPlusTree

            pairs = sorted(
                (self._labeling.post_of(c), network.points_of(c))
                for c in network.spatial_components()
            )
            self._bptree = BPlusTree.from_sorted(pairs)
            self._points_at_post = None
            self.name = "socreach-bptree"
        else:
            # Pre-resolve each super-vertex's points keyed by post-order
            # slot so descendant enumeration is one array walk.  With a
            # gapped numbering (stride > 1) slot = post // stride.
            self._bptree = None
            stride = self._labeling.stride
            n = self._labeling.num_vertices
            self._points_at_post = [None] * n
            for component in network.spatial_components():
                post = self._labeling.post_of(component)
                self._points_at_post[post // stride - 1] = network.points_of(
                    component
                )
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_probes = _inst.METHOD_LABEL_PROBES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        self._m_scanned = _inst.SOCREACH_DESCENDANTS.labels(method=self.name)

    # ------------------------------------------------------------------
    def query(self, v: int, region: Rect) -> bool:
        # Dual path: the descendant scan is the whole cost of SocReach,
        # so the disabled-observability path must not even keep local
        # tallies — it runs the plain loops below.
        with _span(f"{self.name}.query"):
            if _obs_enabled():
                return self._query_counted(v, region)
            return self._query_plain(v, region)

    def _query_plain(self, v: int, region: Rect) -> bool:
        source = self._network.super_of(v)
        contains = region.contains_point
        # Every label [l, h] is a range query over post-order numbers
        # (the D(v) equation in Section 4.1); scan the range and test
        # each spatial descendant's points until a witness appears.
        if self._access == "bptree":
            scan = self._bptree.range_scan
            for lo, hi in self._labeling.labels_of(source):
                for _, points in scan(lo, hi):
                    for point in points:
                        if contains(point):
                            return True
            return False
        points_at_post = self._points_at_post
        stride = self._labeling.stride
        for lo, hi in self._labeling.labels_of(source):
            start = (lo + stride - 1) // stride
            end = hi // stride
            for slot in range(start - 1, end):
                points = points_at_post[slot]
                if points is None:
                    continue
                for point in points:
                    if contains(point):
                        return True
        return False

    def _query_counted(self, v: int, region: Rect) -> bool:
        """Same scan as :meth:`_query_plain`, with work tallies."""
        source = self._network.super_of(v)
        contains = region.contains_point
        scanned = 0
        labels_probed = 0
        containment_tests = 0
        answer = False
        if self._access == "bptree":
            scan = self._bptree.range_scan
            for lo, hi in self._labeling.labels_of(source):
                labels_probed += 1
                for _, points in scan(lo, hi):
                    scanned += 1
                    for point in points:
                        containment_tests += 1
                        if contains(point):
                            answer = True
                            break
                    if answer:
                        break
                if answer:
                    break
        else:
            points_at_post = self._points_at_post
            stride = self._labeling.stride
            for lo, hi in self._labeling.labels_of(source):
                labels_probed += 1
                start = (lo + stride - 1) // stride
                end = hi // stride
                for slot in range(start - 1, end):
                    scanned += 1
                    points = points_at_post[slot]
                    if points is None:
                        continue
                    for point in points:
                        containment_tests += 1
                        if contains(point):
                            answer = True
                            break
                    if answer:
                        break
                if answer:
                    break
        self._m_queries.inc()
        if answer:
            self._m_positives.inc()
        self._m_probes.inc(labels_probed)
        self._m_verified.inc(containment_tests)
        self._m_scanned.inc(scanned)
        return answer

    def count_descendants(self, v: int) -> int:
        """Return ``|D(v)|`` for the query vertex (diagnostics/benchmarks)."""
        return self._labeling.num_descendants(self._network.super_of(v))

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Labels (plus the optional B+-tree); no spatial index (Table 4)."""
        size = self._labeling.size_bytes()
        if self._bptree is not None:
            # 4-byte key + 8-byte pointer per entry.
            size += len(self._bptree) * 12
        return size

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling


@register_method("socreach")
def _build_socreach(network: CondensedNetwork, **options) -> SocReach:
    return SocReach(network, **options)
