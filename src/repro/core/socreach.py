"""SocReach: the paper's social-first method (Section 4.1).

Use the interval labeling to enumerate the descendants ``D(v)`` of the
query vertex, and spatially verify each against the query region.  No
spatial index is involved — the descendant set is produced on the fly, so
(as the paper notes) spatial indexing cannot accelerate the containment
tests; the method's cost tracks ``|D(v)|``.

The array access path runs over :class:`~repro.geosocial.PostOrderSlabs`:
each label ``[l, h]`` covers a contiguous run of post-order slots, so its
descendant scan is one flat-column slice instead of a per-slot walk over
``Point`` lists.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Sequence

from repro.core.base import RangeReachBase, register_method
from repro.geometry import Rect
from repro.geosocial.columnar import PostOrderSlabs, build_post_slabs
from repro.geosocial.scc_handling import CondensedNetwork
from repro.kernels import make_slab_kernel, resolve_backend
from repro.labeling import IntervalLabeling
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext


class SocReach(RangeReachBase):
    """Social-first RangeReach evaluation over the interval labeling.

    ``descendant_access`` selects how the post-order range queries of
    Section 4.1 are evaluated — the two options the paper names:

    * ``"array"`` (default) — "simple for loops on the array storing the
      network vertices in main memory"; here backed by post-order-aligned
      coordinate slabs, so each label scans one contiguous flat range;
    * ``"bptree"`` — "a traditional B+-tree which indexes post(v)"; only
      spatial vertices are indexed, so sparse descendant sets skip the
      non-spatial majority entirely.
    """

    name = "socreach"

    def __init__(
        self,
        network: CondensedNetwork,
        labeling: IntervalLabeling | None = None,
        mode: str = "subtree",
        stride: int = 1,
        descendant_access: str = "array",
        context: BuildContext | None = None,
        kernels: str | None = None,
    ) -> None:
        if descendant_access not in ("array", "bptree"):
            raise ValueError("descendant_access must be 'array' or 'bptree'")
        self._network = network
        self._access = descendant_access
        self._skernel = None
        if labeling is not None:
            # An explicit labeling carries its own stride; the keyword
            # only steers context builds.
            self._labeling = labeling
            self.kernels = resolve_backend(kernels)
            slabs = None if descendant_access == "bptree" else build_post_slabs(
                network, labeling
            )
            if slabs is not None:
                self._skernel = make_slab_kernel(
                    self.kernels, slabs, labeling.stride
                )
        else:
            if context is None:
                context = BuildContext(network, kernels=kernels)
            self.kernels = (
                context.kernels if kernels is None else resolve_backend(kernels)
            )
            self._labeling = context.labeling(mode=mode, stride=stride)
            slabs = (
                None
                if descendant_access == "bptree"
                else context.post_slabs(mode=mode, stride=stride)
            )
            if slabs is not None:
                self._skernel = context.slab_kernel(
                    mode=mode, stride=stride, backend=self.kernels
                )
        if descendant_access == "bptree":
            from repro.relational import BPlusTree

            # Sort on the post number alone: with a key function Python
            # never falls back to comparing the point-list payloads (ties
            # cannot happen — posts are unique — but the bare-tuple sort
            # compared lists on the way to proving that).
            pairs = sorted(
                (
                    (self._labeling.post_of(c), network.points_of(c))
                    for c in network.spatial_components()
                ),
                key=lambda pair: pair[0],
            )
            self._bptree = BPlusTree.from_sorted(pairs)
            self._slabs: PostOrderSlabs | None = None
            self.name = "socreach-bptree"
        else:
            self._bptree = None
            self._slabs = slabs
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_probes = _inst.METHOD_LABEL_PROBES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        self._m_scanned = _inst.SOCREACH_DESCENDANTS.labels(method=self.name)

    # ------------------------------------------------------------------
    def _slot_ranges(self, source: int) -> Iterator[tuple[int, int]]:
        """Yield each label's inclusive 1-based slot range ``(start, end)``.

        With a gapped numbering (stride > 1) a label may cover no whole
        slot at all; such labels yield ``end < start`` and still count as
        probed — callers skip the scan but not the tally.
        """
        stride = self._labeling.stride
        for lo, hi in self._labeling.labels_of(source):
            yield (lo + stride - 1) // stride, hi // stride

    def query(self, v: int, region: Rect) -> bool:
        # Dual path: the descendant scan is the whole cost of SocReach,
        # so the disabled-observability path must not even keep local
        # tallies — it runs the plain loops below.
        with _span(f"{self.name}.query"):
            if _obs_enabled():
                return self._query_counted(v, region)
            return self._query_plain(v, region)

    def _query_plain(self, v: int, region: Rect) -> bool:
        source = self._network.super_of(v)
        # Every label [l, h] is a range query over post-order numbers
        # (the D(v) equation in Section 4.1); scan the range and test
        # each spatial descendant's points until a witness appears.
        if self._access == "bptree":
            contains = region.contains_point
            scan = self._bptree.range_scan
            for lo, hi in self._labeling.labels_of(source):
                for _, points in scan(lo, hi):
                    for point in points:
                        if contains(point):
                            return True
            return False
        offsets = self._slabs.offsets
        # Both backends route through the slab kernel; the python kernel
        # is the verbatim ``Rect.any_contained`` scan.
        any_in_flat = self._skernel.any_in_flat
        for start, end in self._slot_ranges(source):
            if end < start:
                continue
            if any_in_flat(region, offsets[start - 1], offsets[end]):
                return True
        return False

    def _query_counted(self, v: int, region: Rect) -> bool:
        """Same scan as :meth:`_query_plain`, with work tallies."""
        source = self._network.super_of(v)
        scanned = 0
        labels_probed = 0
        containment_tests = 0
        answer = False
        if self._access == "bptree":
            contains = region.contains_point
            scan = self._bptree.range_scan
            for lo, hi in self._labeling.labels_of(source):
                labels_probed += 1
                for _, points in scan(lo, hi):
                    scanned += 1
                    for point in points:
                        containment_tests += 1
                        if contains(point):
                            answer = True
                            break
                    if answer:
                        break
                if answer:
                    break
        else:
            offsets = self._slabs.offsets
            first_in_flat = self._skernel.first_in_flat
            for start, end in self._slot_ranges(source):
                labels_probed += 1
                if end < start:
                    continue
                a, b = offsets[start - 1], offsets[end]
                idx = first_in_flat(region, a, b)
                if idx < 0:
                    # A miss visits every slot of the label and tests
                    # every point in its flat range.
                    scanned += end - start + 1
                    containment_tests += b - a
                else:
                    # Recover the slot owning the hit point so the tallies
                    # match the per-slot scan: slots up to and including
                    # the hit slot, points up to and including the hit.
                    hit_slot = bisect_right(offsets, idx) - 1
                    scanned += hit_slot - (start - 1) + 1
                    containment_tests += idx - a + 1
                    answer = True
                    break
        self._m_queries.inc()
        if answer:
            self._m_positives.inc()
        self._m_probes.inc(labels_probed)
        self._m_verified.inc(containment_tests)
        self._m_scanned.inc(scanned)
        return answer

    # ------------------------------------------------------------------
    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer many queries in one pass over the coordinate columns.

        The columnar slabs make batching pay: each distinct query source
        resolves its sorted slot ranges **once** (adjacent labels coalesce
        into one flat range), and each distinct ``(source, region)`` pair
        scans the shared x/y arrays once — duplicated queries in the
        batch reuse the memoized answer.  Vertices with no labels answer
        FALSE without touching the slabs at all.
        """
        if not pairs:
            return []
        with _span(f"{self.name}.query_batch"):
            super_of = self._network.super_of
            resolved = [(super_of(v), region) for v, region in pairs]
            if self._access == "bptree":
                answers = self._batch_bptree(resolved)
            else:
                answers = self._batch_array(resolved)
            if _obs_enabled():
                self._m_queries.inc(len(pairs))
                self._m_positives.inc(sum(answers))
            return answers

    def _flat_ranges(self, source: int) -> tuple[tuple[int, int], ...]:
        """The source's flat column ranges, adjacent labels coalesced."""
        offsets = self._slabs.offsets
        flat: list[tuple[int, int]] = []
        for start, end in self._slot_ranges(source):
            if end < start:
                continue
            a, b = offsets[start - 1], offsets[end]
            if b <= a:
                continue
            if flat and flat[-1][1] == a:
                flat[-1] = (flat[-1][0], b)
            else:
                flat.append((a, b))
        return tuple(flat)

    def _batch_array(
        self, resolved: list[tuple[int, Rect]]
    ) -> list[bool]:
        any_in_flat = self._skernel.any_in_flat
        ranges_of: dict[int, tuple[tuple[int, int], ...]] = {}
        memo: dict[tuple[int, tuple], bool] = {}
        answers: list[bool] = []
        for source, region in resolved:
            key = (source, region.as_tuple())
            answer = memo.get(key)
            if answer is None:
                ranges = ranges_of.get(source)
                if ranges is None:
                    ranges = ranges_of[source] = self._flat_ranges(source)
                answer = False
                for a, b in ranges:
                    if any_in_flat(region, a, b):
                        answer = True
                        break
                memo[key] = answer
            answers.append(answer)
        return answers

    def _batch_bptree(
        self, resolved: list[tuple[int, Rect]]
    ) -> list[bool]:
        scan = self._bptree.range_scan
        memo: dict[tuple[int, tuple], bool] = {}
        answers: list[bool] = []
        for source, region in resolved:
            key = (source, region.as_tuple())
            answer = memo.get(key)
            if answer is None:
                contains = region.contains_point
                answer = False
                for lo, hi in self._labeling.labels_of(source):
                    for _, points in scan(lo, hi):
                        if any(contains(point) for point in points):
                            answer = True
                            break
                    if answer:
                        break
                memo[key] = answer
            answers.append(answer)
        return answers

    def count_descendants(self, v: int) -> int:
        """Return ``|D(v)|`` for the query vertex (diagnostics/benchmarks)."""
        return self._labeling.num_descendants(self._network.super_of(v))

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Labels (plus the optional B+-tree); no spatial index (Table 4)."""
        size = self._labeling.size_bytes()
        if self._bptree is not None:
            # 4-byte key + 8-byte pointer per entry.
            size += len(self._bptree) * 12
        return size

    @property
    def labeling(self) -> IntervalLabeling:
        return self._labeling


@register_method("socreach")
def _build_socreach(network: CondensedNetwork, **options) -> SocReach:
    return SocReach(network, **options)
