"""Shared protocol, base class and factory for RangeReach methods.

The unified query surface lives here:

* :class:`QueryRequest` / :class:`QueryResult` — the request/response
  dataclasses every query layer (method classes, the extended engine,
  the mutable store) speaks;
* :class:`RangeReachMethod` — the structural protocol (``query``,
  ``query_batch``, ``size_bytes``, ``name``);
* :class:`RangeReachBase` — the concrete base class all built-in methods
  inherit; it supplies a correct default ``query_batch`` loop (methods
  override it with vectorized evaluations) and the request-level
  ``execute`` / ``execute_many`` entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.geometry import Rect, as_rect
from repro.geosocial.network import GeosocialNetwork
from repro.geosocial.scc_handling import CondensedNetwork
from repro.obs.trace import trace as _trace
from repro.obs.trace import tracing as _tracing
from repro.pipeline import BuildContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import ParallelExecutor
    from repro.obs.trace import Trace


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One ``RangeReach(G, v, R)`` request: a query vertex and a region.

    The request form of the ``(v, region)`` pair every query layer
    accepts; :meth:`as_pair` converts to the tuple form the batch API
    uses.  ``region`` accepts either a :class:`Rect` or a plain
    ``(xlo, ylo, xhi, yhi)`` tuple/list (coerced on construction).
    """

    v: int
    region: Rect

    def __post_init__(self) -> None:
        object.__setattr__(self, "region", as_rect(self.region))

    def as_pair(self) -> tuple[int, Rect]:
        return (self.v, self.region)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The answer to one :class:`QueryRequest`.

    Attributes:
        answer: the boolean RangeReach answer.
        method: display name of the method/engine that served it.
        spans: the per-query span tree, when the request was executed
            with tracing (None otherwise).
    """

    answer: bool
    method: str
    spans: "Trace | None" = field(default=None, compare=False)


@runtime_checkable
class RangeReachMethod(Protocol):
    """A built index structure answering ``RangeReach(G, v, R)`` queries."""

    name: str

    def query(self, v: int, region: Rect) -> bool:
        """Return True iff original vertex ``v`` geosocially reaches ``region``."""
        ...

    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer many ``(v, region)`` queries; aligned with the input."""
        ...

    def size_bytes(self) -> int:
        """Return the analytic index footprint in bytes (Table 4)."""
        ...


class RangeReachBase:
    """Concrete base class of the built-in RangeReach methods.

    Supplies the batched and request-level entry points on top of the
    subclass's ``query``:

    * :meth:`query_batch` — a correct default loop; SocReach, 3DReach,
      3DReach-Rev and SpaReach override it with vectorized evaluations
      that amortize index work across the batch;
    * :meth:`execute` / :meth:`execute_many` — the
      :class:`QueryRequest`/:class:`QueryResult` protocol shared with
      :class:`~repro.system.database.GeosocialDatabase`.
    """

    name = "rangereach"

    def query(self, v: int, region: Rect) -> bool:
        raise NotImplementedError

    def query_batch(self, pairs: Sequence[tuple[int, Rect]]) -> list[bool]:
        """Answer a batch of ``(v, region)`` pairs.

        The default implementation is the plain per-query loop — always
        correct, never faster.  An empty batch returns immediately
        without touching any index structure.
        """
        if not pairs:
            return []
        query = self.query
        return [query(v, region) for v, region in pairs]

    # ------------------------------------------------------------------
    # Request-level protocol
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest, *, trace: bool = False) -> QueryResult:
        """Serve one :class:`QueryRequest` as a :class:`QueryResult`.

        With ``trace=True`` (and no trace already active on this thread)
        the result carries the query's span tree in ``spans``.
        """
        if trace and not _tracing():
            with _trace(f"{self.name}.execute") as spans:
                answer = self.query(request.v, request.region)
            return QueryResult(answer, self.name, spans)
        return QueryResult(self.query(request.v, request.region), self.name)

    def execute_many(
        self,
        requests: Sequence[QueryRequest],
        executor: "ParallelExecutor | None" = None,
    ) -> list[QueryResult]:
        """Serve many requests, optionally through a parallel executor."""
        pairs = [request.as_pair() for request in requests]
        if executor is None:
            answers = self.query_batch(pairs)
        else:
            answers = executor.run(self, pairs)
        return [QueryResult(answer, self.name) for answer in answers]


# Factories take the condensed network plus keyword options and return a
# ready-to-query method.  The registry gives benchmarks and the CLI a
# single switchboard keyed by the names used in the paper's plots.
MethodFactory = Callable[..., RangeReachMethod]

METHOD_REGISTRY: dict[str, MethodFactory] = {}


def register_method(name: str) -> Callable[[MethodFactory], MethodFactory]:
    """Class decorator registering a method under its paper name."""

    def decorate(factory: MethodFactory) -> MethodFactory:
        METHOD_REGISTRY[name] = factory
        return factory

    return decorate


_BUILD_METHOD_DOC = """Instantiate a registered method by paper name.

    Known names: {names} (see :data:`METHOD_REGISTRY`).
    """


def _resolve_factory(name: str) -> MethodFactory:
    try:
        return METHOD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(METHOD_REGISTRY))
        raise ValueError(f"unknown method {name!r}; known: {known}") from None


def build_method(name: str, network: CondensedNetwork, **options) -> RangeReachMethod:
    return _resolve_factory(name)(network, **options)


def build_methods(
    names: Iterable[str],
    network: GeosocialNetwork | CondensedNetwork | None = None,
    *,
    context: BuildContext | None = None,
    options: Mapping[str, Mapping] | None = None,
) -> dict[str, RangeReachMethod]:
    """Build several methods over ONE shared :class:`BuildContext`.

    Unlike N calls to :func:`build_method`, the condensation runs exactly
    once and each interval labeling at most once per distinct
    ``(direction, mode, stride)`` key; R-trees and spatial feeds are
    shared wherever two methods agree on their build parameters.

    Args:
        names: registered method names, in the order the result dict
            should iterate; duplicates are built once.
        network: the network to build over (raw or condensed).  Optional
            when ``context`` is given.
        context: an existing :class:`BuildContext` to build through.  When
            omitted, one is created from ``network``.
        options: per-method keyword options, keyed by method name (the
            same keywords :func:`build_method` accepts).

    Returns:
        Mapping of method name to built method, preserving input order.
    """
    names = list(dict.fromkeys(names))
    factories = {name: _resolve_factory(name) for name in names}
    if context is None:
        if network is None:
            raise ValueError("build_methods needs a network or a context")
        context = BuildContext(network)
    condensed = context.condensed()
    options = options or {}
    unknown = sorted(set(options) - set(names))
    if unknown:
        raise ValueError(
            f"options given for methods not being built: {', '.join(unknown)}"
        )
    return {
        name: factories[name](condensed, context=context, **options.get(name, {}))
        for name in names
    }


def sync_known_names_doc() -> None:
    """Regenerate :func:`build_method`'s docstring from the registry.

    Called once all built-in methods have registered (at the end of
    ``repro.core.__init__``) so the documented name list can never drift
    from :data:`METHOD_REGISTRY`.
    """
    names = ", ".join(f"``{name}``" for name in sorted(METHOD_REGISTRY))
    build_method.__doc__ = _BUILD_METHOD_DOC.format(names=names)


sync_known_names_doc()
