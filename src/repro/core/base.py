"""Shared protocol and factory for RangeReach methods."""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Protocol, runtime_checkable

from repro.geometry import Rect
from repro.geosocial.network import GeosocialNetwork
from repro.geosocial.scc_handling import CondensedNetwork
from repro.pipeline import BuildContext


@runtime_checkable
class RangeReachMethod(Protocol):
    """A built index structure answering ``RangeReach(G, v, R)`` queries."""

    name: str

    def query(self, v: int, region: Rect) -> bool:
        """Return True iff original vertex ``v`` geosocially reaches ``region``."""
        ...

    def size_bytes(self) -> int:
        """Return the analytic index footprint in bytes (Table 4)."""
        ...


# Factories take the condensed network plus keyword options and return a
# ready-to-query method.  The registry gives benchmarks and the CLI a
# single switchboard keyed by the names used in the paper's plots.
MethodFactory = Callable[..., RangeReachMethod]

METHOD_REGISTRY: dict[str, MethodFactory] = {}


def register_method(name: str) -> Callable[[MethodFactory], MethodFactory]:
    """Class decorator registering a method under its paper name."""

    def decorate(factory: MethodFactory) -> MethodFactory:
        METHOD_REGISTRY[name] = factory
        return factory

    return decorate


_BUILD_METHOD_DOC = """Instantiate a registered method by paper name.

    Known names: {names} (see :data:`METHOD_REGISTRY`).
    """


def _resolve_factory(name: str) -> MethodFactory:
    try:
        return METHOD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(METHOD_REGISTRY))
        raise ValueError(f"unknown method {name!r}; known: {known}") from None


def build_method(name: str, network: CondensedNetwork, **options) -> RangeReachMethod:
    return _resolve_factory(name)(network, **options)


def build_methods(
    names: Iterable[str],
    network: GeosocialNetwork | CondensedNetwork | None = None,
    *,
    context: BuildContext | None = None,
    options: Mapping[str, Mapping] | None = None,
) -> dict[str, RangeReachMethod]:
    """Build several methods over ONE shared :class:`BuildContext`.

    Unlike N calls to :func:`build_method`, the condensation runs exactly
    once and each interval labeling at most once per distinct
    ``(direction, mode, stride)`` key; R-trees and spatial feeds are
    shared wherever two methods agree on their build parameters.

    Args:
        names: registered method names, in the order the result dict
            should iterate; duplicates are built once.
        network: the network to build over (raw or condensed).  Optional
            when ``context`` is given.
        context: an existing :class:`BuildContext` to build through.  When
            omitted, one is created from ``network``.
        options: per-method keyword options, keyed by method name (the
            same keywords :func:`build_method` accepts).

    Returns:
        Mapping of method name to built method, preserving input order.
    """
    names = list(dict.fromkeys(names))
    factories = {name: _resolve_factory(name) for name in names}
    if context is None:
        if network is None:
            raise ValueError("build_methods needs a network or a context")
        context = BuildContext(network)
    condensed = context.condensed()
    options = options or {}
    unknown = sorted(set(options) - set(names))
    if unknown:
        raise ValueError(
            f"options given for methods not being built: {', '.join(unknown)}"
        )
    return {
        name: factories[name](condensed, context=context, **options.get(name, {}))
        for name in names
    }


def sync_known_names_doc() -> None:
    """Regenerate :func:`build_method`'s docstring from the registry.

    Called once all built-in methods have registered (at the end of
    ``repro.core.__init__``) so the documented name list can never drift
    from :data:`METHOD_REGISTRY`.
    """
    names = ", ".join(f"``{name}``" for name in sorted(METHOD_REGISTRY))
    build_method.__doc__ = _BUILD_METHOD_DOC.format(names=names)


sync_known_names_doc()
