"""Shared protocol and factory for RangeReach methods."""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.geometry import Rect
from repro.geosocial.scc_handling import CondensedNetwork


@runtime_checkable
class RangeReachMethod(Protocol):
    """A built index structure answering ``RangeReach(G, v, R)`` queries."""

    name: str

    def query(self, v: int, region: Rect) -> bool:
        """Return True iff original vertex ``v`` geosocially reaches ``region``."""
        ...

    def size_bytes(self) -> int:
        """Return the analytic index footprint in bytes (Table 4)."""
        ...


# Factories take the condensed network plus keyword options and return a
# ready-to-query method.  The registry gives benchmarks and the CLI a
# single switchboard keyed by the names used in the paper's plots.
MethodFactory = Callable[..., RangeReachMethod]

METHOD_REGISTRY: dict[str, MethodFactory] = {}


def register_method(name: str) -> Callable[[MethodFactory], MethodFactory]:
    """Class decorator registering a method under its paper name."""

    def decorate(factory: MethodFactory) -> MethodFactory:
        METHOD_REGISTRY[name] = factory
        return factory

    return decorate


_BUILD_METHOD_DOC = """Instantiate a registered method by paper name.

    Known names: {names} (see :data:`METHOD_REGISTRY`).
    """


def build_method(name: str, network: CondensedNetwork, **options) -> RangeReachMethod:
    try:
        factory = METHOD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(METHOD_REGISTRY))
        raise ValueError(f"unknown method {name!r}; known: {known}") from None
    return factory(network, **options)


def sync_known_names_doc() -> None:
    """Regenerate :func:`build_method`'s docstring from the registry.

    Called once all built-in methods have registered (at the end of
    ``repro.core.__init__``) so the documented name list can never drift
    from :data:`METHOD_REGISTRY`.
    """
    names = ", ".join(f"``{name}``" for name in sorted(METHOD_REGISTRY))
    build_method.__doc__ = _BUILD_METHOD_DOC.format(names=names)


sync_known_names_doc()
