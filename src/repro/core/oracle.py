"""Index-free RangeReach ground truth."""

from __future__ import annotations

from collections import deque

from repro.core.base import RangeReachBase
from repro.geometry import Point, Rect, as_rect
from repro.geosocial.network import GeosocialNetwork


class RangeReachOracle(RangeReachBase):
    """Answers RangeReach by plain BFS over the *original* network.

    O(|V| + |E|) per query and exact by construction; every other method
    is tested against it.
    """

    name = "oracle"

    def __init__(self, network: GeosocialNetwork) -> None:
        self._network = network

    def query(self, v: int, region: Rect) -> bool:
        region = as_rect(region)
        network = self._network
        points = network.points
        point = points[v]
        if point is not None and region.contains_point(point):
            return True
        visited = [False] * network.num_vertices
        visited[v] = True
        queue: deque[int] = deque([v])
        graph = network.graph
        while queue:
            w = queue.popleft()
            for u in graph.successors(w):
                if visited[u]:
                    continue
                visited[u] = True
                point = points[u]
                if point is not None and region.contains_point(point):
                    return True
                queue.append(u)
        return False

    def witnesses(self, v: int, region: Rect) -> list[int]:
        """Return *all* reachable spatial vertices inside ``region``.

        Used by tests and the examples to explain positive answers.
        """
        region = as_rect(region)
        network = self._network
        points = network.points
        out: list[int] = []
        visited = [False] * network.num_vertices
        visited[v] = True
        queue: deque[int] = deque([v])
        point = points[v]
        if point is not None and region.contains_point(point):
            out.append(v)
        graph = network.graph
        while queue:
            w = queue.popleft()
            for u in graph.successors(w):
                if visited[u]:
                    continue
                visited[u] = True
                point = points[u]
                if point is not None and region.contains_point(point):
                    out.append(u)
                queue.append(u)
        return out

    def count(self, v: int, region: Rect) -> int:
        """Number of reachable spatial vertices inside ``region``."""
        return len(self.witnesses(v, region))

    def nearest(self, v: int, location: Point) -> tuple[int, float] | None:
        """Return ``(vertex, distance)`` of the closest reachable spatial
        vertex to ``location``, or None (ties broken by vertex id).

        The full-BFS counterpart of
        :meth:`repro.core.GeosocialQueryEngine.nearest`, used by the
        property tests to verify the delta overlay's nearest path.
        """
        network = self._network
        points = network.points
        best: tuple[float, int] | None = None
        visited = [False] * network.num_vertices
        visited[v] = True
        queue: deque[int] = deque([v])
        graph = network.graph
        point = points[v]
        if point is not None:
            best = (location.distance_to(point), v)
        while queue:
            w = queue.popleft()
            for u in graph.successors(w):
                if visited[u]:
                    continue
                visited[u] = True
                point = points[u]
                if point is not None:
                    candidate = (location.distance_to(point), u)
                    if best is None or candidate < best:
                        best = candidate
                queue.append(u)
        if best is None:
            return None
        return best[1], best[0]

    def size_bytes(self) -> int:
        return 0
