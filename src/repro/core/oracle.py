"""Index-free RangeReach ground truth."""

from __future__ import annotations

from collections import deque

from repro.geometry import Rect
from repro.geosocial.network import GeosocialNetwork


class RangeReachOracle:
    """Answers RangeReach by plain BFS over the *original* network.

    O(|V| + |E|) per query and exact by construction; every other method
    is tested against it.
    """

    name = "oracle"

    def __init__(self, network: GeosocialNetwork) -> None:
        self._network = network

    def query(self, v: int, region: Rect) -> bool:
        network = self._network
        points = network.points
        point = points[v]
        if point is not None and region.contains_point(point):
            return True
        visited = [False] * network.num_vertices
        visited[v] = True
        queue: deque[int] = deque([v])
        graph = network.graph
        while queue:
            w = queue.popleft()
            for u in graph.successors(w):
                if visited[u]:
                    continue
                visited[u] = True
                point = points[u]
                if point is not None and region.contains_point(point):
                    return True
                queue.append(u)
        return False

    def witnesses(self, v: int, region: Rect) -> list[int]:
        """Return *all* reachable spatial vertices inside ``region``.

        Used by tests and the examples to explain positive answers.
        """
        network = self._network
        points = network.points
        out: list[int] = []
        visited = [False] * network.num_vertices
        visited[v] = True
        queue: deque[int] = deque([v])
        point = points[v]
        if point is not None and region.contains_point(point):
            out.append(v)
        graph = network.graph
        while queue:
            w = queue.popleft()
            for u in graph.successors(w):
                if visited[u]:
                    continue
                visited[u] = True
                point = points[u]
                if point is not None and region.contains_point(point):
                    out.append(u)
                queue.append(u)
        return out

    def size_bytes(self) -> int:
        return 0
