"""GeoReach (Sarwat & Sun): the prior state of the art (Section 2.2.2).

GeoReach augments every vertex of the (condensed) network with partially
materialized spatio-reachability information — the *SPA-graph*:

* **G-vertices** store ``ReachGrid(v)``: the hierarchical-grid cells that
  contain all spatial vertices reachable from ``v``;
* **R-vertices** store ``RMBR(v)``: the MBR of those spatial vertices;
* **B-vertices** store one bit ``GeoB(v)``: can ``v`` reach *any* spatial
  vertex at all?

Three construction parameters control the classification:
``MAX_REACH_GRIDS`` caps ``|ReachGrid|`` (overflow downgrades G -> R),
``MAX_RMBR`` caps the RMBR's area relative to the whole space (overflow
downgrades R -> B), and ``MERGE_COUNT`` triggers replacing sibling quad
cells by their parent cell.

Queries traverse the SPA-graph breadth-first from the query vertex and use
the per-class information to prune (no overlap with ``R``), to terminate
early (a cell or RMBR fully inside ``R``), or to keep expanding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.base import RangeReachBase, register_method
from repro.geometry import Rect
from repro.geosocial.scc_handling import CondensedNetwork
from repro.graph.traversal import topological_order
from repro.kernels import make_point_kernel, resolve_backend
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext
from repro.spatial.grid import Cell, HierarchicalGrid

# Vertex classes of the SPA-graph.
_B_VERTEX = 0
_R_VERTEX = 1
_G_VERTEX = 2


@dataclass(frozen=True, slots=True)
class GeoReachParams:
    """SPA-graph construction parameters.

    Attributes:
        max_rmbr_ratio: ``MAX_RMBR`` as a fraction of the space's area; an
            RMBR larger than this downgrades the vertex to a B-vertex.
        max_reach_grids: ``MAX_REACH_GRIDS``; a larger ReachGrid set
            downgrades the vertex to an R-vertex.
        merge_count: ``MERGE_COUNT``; more than this many sibling quads in
            a ReachGrid are merged into their parent cell.
        grid_levels: number of levels of the hierarchical grid (level 0 has
            ``2^(grid_levels - 1)`` cells per side).
    """

    max_rmbr_ratio: float = 0.8
    max_reach_grids: int = 128
    merge_count: int = 3
    grid_levels: int = 8

    def __post_init__(self) -> None:
        if not (0.0 < self.max_rmbr_ratio <= 1.0):
            raise ValueError("max_rmbr_ratio must be in (0, 1]")
        if self.max_reach_grids < 1:
            raise ValueError("max_reach_grids must be positive")
        if self.merge_count < 1:
            raise ValueError("merge_count must be positive")
        if self.grid_levels < 1:
            raise ValueError("grid_levels must be positive")


def _padded(space: Rect) -> Rect:
    """Give a degenerate space MBR (single point / collinear venues) a
    positive extent so the hierarchical grid can partition it."""
    pad_x = 0.5 if space.width == 0 else 0.0
    pad_y = 0.5 if space.height == 0 else 0.0
    if pad_x == 0.0 and pad_y == 0.0:
        return space
    return Rect(
        space.xlo - pad_x, space.ylo - pad_y,
        space.xhi + pad_x, space.yhi + pad_y,
    )


@dataclass(frozen=True, slots=True)
class SpaGraph:
    """The materialized SPA-graph: GeoReach's whole build product.

    A pure-data artifact (no behaviour) so it can live in the shared
    :class:`BuildContext` cache — GeoReach's construction dominates a
    full five-method build — and be persisted by ``repro.store``.

    Attributes:
        params: the construction parameters the sweep ran with.
        space: the (padded) space the hierarchical grid partitions.
        vertex_class: per super-vertex B/R/G class tag.
        geo_bit: per super-vertex ``GeoB`` bit (meaningful for B).
        rmbr: per super-vertex RMBR (R and G vertices).
        reach_grid: per super-vertex ReachGrid cell set (G vertices).
    """

    params: GeoReachParams
    space: Rect
    vertex_class: list[int]
    geo_bit: list[bool]
    rmbr: list[Rect | None]
    reach_grid: list[frozenset[Cell] | None]


def build_spa_graph(
    network: CondensedNetwork, params: GeoReachParams | None = None
) -> SpaGraph:
    """Run the SPA-graph construction: one reverse-topological sweep."""
    params = params or GeoReachParams()
    space = _padded(network.network.space())
    grid = HierarchicalGrid(space, num_levels=params.grid_levels)
    max_rmbr_area = params.max_rmbr_ratio * space.area
    dag = network.dag
    n = dag.num_vertices

    vertex_class = [_B_VERTEX] * n
    geo_bit = [False] * n
    rmbr: list[Rect | None] = [None] * n
    reach_grid: list[frozenset[Cell] | None] = [None] * n

    for v in reversed(topological_order(dag)):
        own_points = network.points_of(v)
        # Gather the exact RMBR first: it is needed for both the R and
        # the downgrade-to-B decision, and it composes exactly
        # (union of children RMBRs and own points).
        boxes: list[Rect] = []
        cells: set[Cell] = set()
        cells_exact = True
        reaches_spatial = bool(own_points)
        for point in own_points:
            cells.add(grid.locate(point))
        if own_points:
            boxes.append(Rect.from_points(own_points))
        for u in dag.successors(v):
            u_class = vertex_class[u]
            if u_class == _B_VERTEX:
                if geo_bit[u]:
                    # The child only knows "reaches something, somewhere";
                    # no better summary can be derived for the parent.
                    reaches_spatial = True
                    cells_exact = False
                    boxes = []  # RMBR unknown too
                    break
                continue  # child reaches nothing: contributes nothing
            reaches_spatial = True
            child_rmbr = rmbr[u]
            assert child_rmbr is not None
            boxes.append(child_rmbr)
            if u_class == _G_VERTEX:
                cells.update(reach_grid[u])
            else:
                cells_exact = False

        if not reaches_spatial:
            vertex_class[v] = _B_VERTEX
            geo_bit[v] = False
            continue
        if not boxes:
            # A TRUE B-child erased all summaries.
            vertex_class[v] = _B_VERTEX
            geo_bit[v] = True
            continue

        full = boxes[0]
        for box in boxes[1:]:
            full = full.union(box)

        if cells_exact:
            merged = grid.merge_cells(cells, params.merge_count)
            if len(merged) <= params.max_reach_grids:
                vertex_class[v] = _G_VERTEX
                reach_grid[v] = frozenset(merged)
                rmbr[v] = full
                continue
        # G failed (inexact or too many cells): try R, else B.
        if full.area <= max_rmbr_area:
            vertex_class[v] = _R_VERTEX
            rmbr[v] = full
        else:
            vertex_class[v] = _B_VERTEX
            geo_bit[v] = True

    return SpaGraph(
        params=params,
        space=space,
        vertex_class=vertex_class,
        geo_bit=geo_bit,
        rmbr=rmbr,
        reach_grid=reach_grid,
    )


class GeoReach(RangeReachBase):
    """The SPA-graph method, reimplemented from the paper's description."""

    name = "georeach"

    def __init__(
        self,
        network: CondensedNetwork,
        params: GeoReachParams | None = None,
        context: BuildContext | None = None,
        kernels: str | None = None,
    ) -> None:
        self._network = network
        self._params = params or GeoReachParams()
        # GeoReach shares no labeling or R-tree, but its SPA-graph (the
        # dominant build cost of a compare-all-methods run) and the
        # condensation's coordinate columns are context artifacts —
        # shared across instances and persisted by the snapshot store.
        if context is not None:
            self._columns = context.columns()
            spa = context.spa_graph(self._params)
            self.kernels = (
                context.kernels if kernels is None else resolve_backend(kernels)
            )
            self._pkernel = context.point_kernel(backend=self.kernels)
        else:
            self._columns = network.columns()
            spa = build_spa_graph(network, self._params)
            self.kernels = resolve_backend(kernels)
            self._pkernel = make_point_kernel(self.kernels, self._columns)
        self._m_queries = _inst.METHOD_QUERIES.labels(method=self.name)
        self._m_positives = _inst.METHOD_POSITIVES.labels(method=self.name)
        self._m_verified = _inst.METHOD_CANDIDATES_VERIFIED.labels(
            method=self.name
        )
        self._grid = HierarchicalGrid(
            spa.space, num_levels=self._params.grid_levels
        )
        self._class = spa.vertex_class
        self._geo_bit = spa.geo_bit
        self._rmbr = spa.rmbr
        self._reach_grid = spa.reach_grid

    # ------------------------------------------------------------------
    # Query: pruned BFS over the SPA-graph.
    # ------------------------------------------------------------------
    def query(self, v: int, region: Rect) -> bool:
        with _span("georeach.query"):
            return self._query(v, region)

    def _query(self, v: int, region: Rect) -> bool:
        network = self._network
        dag = network.dag
        grid = self._grid
        vertex_class = self._class
        source = network.super_of(v)
        offsets = self._columns.offsets
        # Member-point verification routes through the point kernel;
        # the python kernel is the verbatim columnar scan.
        first_contained = self._pkernel.first_contained

        expanded = 0
        pruned = 0
        cell_tests = 0
        point_tests = 0
        answer = False
        visited = [False] * dag.num_vertices
        visited[source] = True
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            expanded += 1
            # A spatial vertex inside R answers the query immediately;
            # the member points are scanned as flat coordinate columns.
            lo, hi = offsets[u], offsets[u + 1]
            if hi > lo:
                idx = first_contained(region, lo, hi)
                if idx >= 0:
                    point_tests += idx - lo + 1
                    answer = True
                    break
                point_tests += hi - lo
            u_class = vertex_class[u]
            if u_class == _B_VERTEX:
                if not self._geo_bit[u]:
                    pruned += 1
                    continue  # u reaches no spatial vertex: prune
                # Bit TRUE: nothing else is known; expand blindly.
            elif u_class == _R_VERTEX:
                u_rmbr = self._rmbr[u]
                if not u_rmbr.intersects(region):
                    pruned += 1
                    continue  # no reachable spatial vertex can be in R
                if region.contains_rect(u_rmbr):
                    answer = True  # every reachable spatial vertex is in R
                    break
            else:  # G-vertex
                overlapping = False
                for cell in self._reach_grid[u]:
                    cell_tests += 1
                    cell_rect = grid.cell_rect(cell)
                    if region.contains_rect(cell_rect):
                        # The cell holds >= 1 reachable spatial vertex
                        # and lies fully inside R: definite TRUE.
                        answer = True
                        break
                    if cell_rect.intersects(region):
                        overlapping = True
                if answer:
                    break
                if not overlapping:
                    pruned += 1
                    continue
            for w in dag.successors(u):
                if not visited[w]:
                    visited[w] = True
                    queue.append(w)
        if _obs_enabled():
            self._m_queries.inc()
            if answer:
                self._m_positives.inc()
            self._m_verified.inc(point_tests)
            _inst.GEOREACH_EXPANDED.inc(expanded)
            _inst.GEOREACH_PRUNED.inc(pruned)
            _inst.GEOREACH_CELL_TESTS.inc(cell_tests)
        return answer

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Analytic SPA-graph payload size (Table 4 accounting).

        Per vertex: 1-byte class tag + 8-byte payload reference; B adds a
        bit (1 byte), R adds 4 floats (16 bytes with float32), G adds 8
        bytes per stored cell.
        """
        total = 0
        for v, v_class in enumerate(self._class):
            total += 9
            if v_class == _B_VERTEX:
                total += 1
            elif v_class == _R_VERTEX:
                total += 16
            else:
                total += 8 * len(self._reach_grid[v])
        return total

    def class_counts(self) -> dict[str, int]:
        """Return how many vertices fell into each SPA-graph class."""
        counts = {"B": 0, "R": 0, "G": 0}
        for v_class in self._class:
            if v_class == _B_VERTEX:
                counts["B"] += 1
            elif v_class == _R_VERTEX:
                counts["R"] += 1
            else:
                counts["G"] += 1
        return counts

    @property
    def params(self) -> GeoReachParams:
        return self._params

    @property
    def grid(self) -> HierarchicalGrid:
        return self._grid


@register_method("georeach")
def _build_georeach(network: CondensedNetwork, **options) -> GeoReach:
    params = options.pop("params", None)
    context = options.pop("context", None)
    kernels = options.pop("kernels", None)
    if params is None and options:
        params = GeoReachParams(**options)
        options = {}
    return GeoReach(network, params=params, context=context, kernels=kernels)
