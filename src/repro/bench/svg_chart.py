"""Dependency-free SVG line charts.

Renders the paper-style log-scale query-time figures as standalone SVG
files (plain string generation — no plotting library).  Used by the
benchmark suite to drop per-figure artifacts into
``benchmarks/results/``; the output is deterministic and unit-testable.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Sequence

# A color-blind-safe cycle (Okabe-Ito).
_COLORS = (
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
)

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 40, 70


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_svg(
    title: str,
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    log_scale: bool = True,
    y_label: str = "avg query time [us]",
) -> str:
    """Return a complete SVG document for one line chart."""
    if not series:
        raise ValueError("need at least one series")
    if not x_labels:
        raise ValueError("need at least one x position")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )

    def t(y: float) -> float:
        return math.log10(max(y, 1e-12)) if log_scale else y

    all_values = [v for vs in series.values() for v in vs]
    lo = min(t(v) for v in all_values)
    hi = max(t(v) for v in all_values)
    if hi - lo < 1e-9:
        hi = lo + 1.0

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def x_pos(i: int) -> float:
        if len(x_labels) == 1:
            return _MARGIN_L + plot_w / 2
        return _MARGIN_L + plot_w * i / (len(x_labels) - 1)

    def y_pos(value: float) -> float:
        frac = (t(value) - lo) / (hi - lo)
        return _MARGIN_T + plot_h * (1.0 - frac)

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="14">{_escape(title)}</text>',
    ]

    # Axes frame.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#888"/>'
    )

    # Y ticks: decades on log scale, 5 evenly spaced otherwise.
    ticks: list[float] = []
    if log_scale:
        first = math.floor(lo)
        last = math.ceil(hi)
        ticks = [10.0 ** d for d in range(first, last + 1)]
    else:
        ticks = [lo + (hi - lo) * i / 4 for i in range(5)]
    for tick in ticks:
        if not (lo - 1e-9 <= t(tick) <= hi + 1e-9):
            continue
        y = y_pos(tick)
        label = f"{tick:g}"
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{label}</text>'
        )
    parts.append(
        f'<text x="16" y="{_MARGIN_T + plot_h / 2:.1f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {_MARGIN_T + plot_h / 2:.1f})">'
        f"{_escape(y_label)}</text>"
    )

    # X ticks.
    for i, label in enumerate(x_labels):
        x = x_pos(i)
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 18}" '
            f'text-anchor="middle">{_escape(label)}</text>'
        )

    # Series polylines + markers.
    for s_idx, (name, values) in enumerate(series.items()):
        color = _COLORS[s_idx % len(_COLORS)]
        coords = [
            (x_pos(i), y_pos(v)) for i, v in enumerate(values)
        ]
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in coords:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'
            )

    # Legend along the bottom.
    legend_y = _HEIGHT - 28
    x_cursor = float(_MARGIN_L)
    for s_idx, name in enumerate(series):
        color = _COLORS[s_idx % len(_COLORS)]
        parts.append(
            f'<rect x="{x_cursor:.1f}" y="{legend_y - 9}" width="12" '
            f'height="12" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x_cursor + 16:.1f}" y="{legend_y + 1}">'
            f"{_escape(name)}</text>"
        )
        x_cursor += 16 + 7 * len(name) + 24
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    path: str | Path,
    title: str,
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    log_scale: bool = True,
) -> Path:
    """Render and write a chart; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(title, x_labels, series, log_scale=log_scale))
    return path
