"""ASCII line charts for the figure reports.

The paper's figures are log-scale query-time plots; without a plotting
dependency the benchmark reports render the same series as monospace
charts.  Deterministic output, so the renderer is unit-testable.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox*+#@%&"


def render_series(
    title: str,
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    log_scale: bool = True,
    y_unit: str = "us",
) -> str:
    """Render one chart: one marker column per x position, one marker per
    series.

    Args:
        title: chart heading.
        x_labels: tick labels along the x axis.
        series: name -> y values (same length as ``x_labels``).
        height: number of plot rows.
        log_scale: use a log10 y axis (the paper's convention).
        y_unit: label appended to y-axis ticks.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )
    if height < 2:
        raise ValueError("height must be at least 2")

    def transform(y: float) -> float:
        if not log_scale:
            return y
        return math.log10(max(y, 1e-12))

    all_values = [v for values in series.values() for v in values]
    lo = min(transform(v) for v in all_values)
    hi = max(transform(v) for v in all_values)
    if hi - lo < 1e-9:
        hi = lo + 1.0

    def row_of(y: float) -> int:
        frac = (transform(y) - lo) / (hi - lo)
        return min(height - 1, max(0, round(frac * (height - 1))))

    col_width = max(max(len(x) for x in x_labels) + 1, 6)
    grid = [[" "] * (col_width * len(x_labels)) for _ in range(height)]
    names = list(series)
    for s_idx, name in enumerate(names):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for x_idx, y in enumerate(series[name]):
            row = height - 1 - row_of(y)
            col = x_idx * col_width + col_width // 2
            grid[row][col] = "!" if grid[row][col] != " " else marker

    def y_tick(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        value = lo + frac * (hi - lo)
        if log_scale:
            value = 10 ** value
        if value >= 100:
            return f"{value:8.0f}"
        return f"{value:8.1f}"

    lines = [title]
    for row in range(height):
        tick = y_tick(row) if row % 3 == 0 or row == height - 1 else " " * 8
        lines.append(f"{tick} {y_unit if tick.strip() else '  '} |" + "".join(grid[row]))
    lines.append(" " * 12 + "+" + "-" * (col_width * len(x_labels)))
    x_axis = " " * 13 + "".join(x.center(col_width) for x in x_labels)
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * 13 + legend + "   (!=overlap)")
    return "\n".join(lines)
