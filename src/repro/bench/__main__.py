"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench table3
    python -m repro.bench fig7 --scale 0.005 --queries 100
    python -m repro.bench all --datasets gowalla,yelp
"""

from __future__ import annotations

import argparse
import csv
import os
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        help="dataset scale relative to the paper (sets REPRO_SCALE)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        help="queries per configuration (sets REPRO_QUERIES)",
    )
    parser.add_argument(
        "--datasets",
        type=str,
        help="comma-separated dataset subset (sets REPRO_DATASETS)",
    )
    parser.add_argument(
        "--csv",
        type=str,
        help="also write the rows as CSV to this path "
        "(one section per experiment when running 'all')",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.queries is not None:
        os.environ["REPRO_QUERIES"] = str(args.queries)
    if args.datasets is not None:
        os.environ["REPRO_DATASETS"] = args.datasets

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    csv_handle = open(args.csv, "w", encoding="utf-8", newline="") if args.csv else None
    try:
        writer = csv.writer(csv_handle) if csv_handle else None
        for name in names:
            title, headers, rows = EXPERIMENTS[name]()
            print(format_table(headers, rows, title=title))
            print()
            if writer is not None:
                writer.writerow([f"# {title}"])
                writer.writerow(headers)
                writer.writerows(rows)
                writer.writerow([])
    finally:
        if csv_handle is not None:
            csv_handle.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
