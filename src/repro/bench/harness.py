"""Shared benchmark infrastructure: dataset caches, timing, method bundles."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core import (
    GeoReach,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
)
from repro.core.base import RangeReachMethod
from repro.datasets import make_network
from repro.geosocial import CondensedNetwork, GeosocialNetwork, condense_network
from repro.pipeline import BuildContext
from repro.workloads import Query

ALL_DATASETS = ("foursquare", "gowalla", "weeplaces", "yelp")


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
def bench_scale() -> float:
    """Dataset scale relative to the paper's sizes (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "0.002"))


def bench_num_queries() -> int:
    """Queries per configuration (env ``REPRO_QUERIES``; paper used 1000)."""
    return int(os.environ.get("REPRO_QUERIES", "50"))


def bench_datasets() -> tuple[str, ...]:
    """Datasets to run (env ``REPRO_DATASETS``, comma-separated)."""
    raw = os.environ.get("REPRO_DATASETS")
    if not raw:
        return ALL_DATASETS
    names = tuple(s.strip().lower() for s in raw.split(",") if s.strip())
    unknown = [n for n in names if n not in ALL_DATASETS]
    if unknown:
        raise ValueError(f"unknown datasets in REPRO_DATASETS: {unknown}")
    return names


# ----------------------------------------------------------------------
# Cached dataset construction
# ----------------------------------------------------------------------
_NETWORKS: dict[tuple[str, float, int], GeosocialNetwork] = {}
_CONDENSED: dict[tuple[str, float, int], CondensedNetwork] = {}


def get_network(name: str, scale: float | None = None, seed: int = 1) -> GeosocialNetwork:
    """Return the (cached) synthetic replica of a dataset."""
    scale = bench_scale() if scale is None else scale
    key = (name, scale, seed)
    if key not in _NETWORKS:
        _NETWORKS[key] = make_network(name, scale=scale, seed=seed)
    return _NETWORKS[key]


def get_condensed(name: str, scale: float | None = None, seed: int = 1) -> CondensedNetwork:
    """Return the (cached) condensation of a dataset replica."""
    scale = bench_scale() if scale is None else scale
    key = (name, scale, seed)
    if key not in _CONDENSED:
        _CONDENSED[key] = condense_network(get_network(name, scale, seed))
    return _CONDENSED[key]


_CONTEXTS: dict[tuple[str, float, int], BuildContext] = {}


def get_context(name: str, scale: float | None = None, seed: int = 1) -> BuildContext:
    """Return the (cached) shared build context of a dataset replica.

    Bundles built over the same ``(dataset, scale, seed)`` share one
    context, so artifacts carry over between benchmark files in a single
    process.
    """
    scale = bench_scale() if scale is None else scale
    key = (name, scale, seed)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = BuildContext(get_condensed(name, scale, seed))
    return _CONTEXTS[key]


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def build_timed(factory: Callable[[], RangeReachMethod]) -> tuple[RangeReachMethod, float]:
    """Build an index, returning it with the wall-clock build time."""
    start = time.perf_counter()
    method = factory()
    return method, time.perf_counter() - start


def time_queries(
    method: RangeReachMethod, queries: Sequence[Query]
) -> tuple[float, int]:
    """Run a query batch; return (average seconds per query, #TRUE answers)."""
    if not queries:
        raise ValueError("empty query batch")
    positives = 0
    start = time.perf_counter()
    for query in queries:
        if method.query(query.vertex, query.region):
            positives += 1
    elapsed = time.perf_counter() - start
    return elapsed / len(queries), positives


def time_query_batch(
    method: RangeReachMethod,
    queries: Sequence[Query],
    executor=None,
) -> tuple[float, int, list[bool]]:
    """Run a query batch through the batch API (optionally an executor).

    Returns ``(average seconds per query, #TRUE answers, answers)`` —
    the answers come back so callers can assert parity against the
    per-query loop of :func:`time_queries`.
    """
    if not queries:
        raise ValueError("empty query batch")
    pairs = [(query.vertex, query.region) for query in queries]
    start = time.perf_counter()
    if executor is not None:
        answers = executor.run(method, pairs)
    else:
        answers = method.query_batch(pairs)
    elapsed = time.perf_counter() - start
    return elapsed / len(queries), sum(answers), answers


def time_queries_counted(
    method: RangeReachMethod, queries: Sequence[Query]
) -> tuple[float, int, dict[str, float]]:
    """Like :func:`time_queries`, but also attach per-query work counters.

    Returns ``(average seconds, positives, work)`` where ``work`` maps the
    counter deltas observed over the batch — normalized to *per query* —
    under short column-friendly keys: ``label_probes``, ``rtree_nodes``,
    ``candidates_verified``.  Requires observability to be enabled (the
    default); with it disabled the work dict is all zeros.
    """
    from repro import obs

    if not queries:
        raise ValueError("empty query batch")
    with obs.measure() as delta:
        avg, positives = time_queries(method, queries)
    label = f'{{method="{method.name}"}}'
    n = len(queries)
    work = {
        "label_probes":
            delta.get(f"repro_method_label_probes_total{label}", 0) / n,
        "rtree_nodes":
            delta.get("repro_rtree_nodes_visited_total", 0) / n,
        "candidates_verified":
            delta.get(f"repro_method_candidates_verified_total{label}", 0) / n,
    }
    return avg, positives, work


@dataclass(frozen=True, slots=True)
class SplitTiming:
    """Per-answer-class timing of one query batch.

    The paper repeatedly stresses that SpaReach and GeoReach "may perform
    poorly for RangeReach queries with a negative answer"; this split
    makes that effect directly measurable.
    """

    positive_avg: float | None
    negative_avg: float | None
    positives: int
    negatives: int


def time_queries_split(
    method: RangeReachMethod, queries: Sequence[Query]
) -> SplitTiming:
    """Time a batch separately for TRUE- and FALSE-answer queries."""
    if not queries:
        raise ValueError("empty query batch")
    pos_time = neg_time = 0.0
    positives = negatives = 0
    for query in queries:
        start = time.perf_counter()
        answer = method.query(query.vertex, query.region)
        elapsed = time.perf_counter() - start
        if answer:
            positives += 1
            pos_time += elapsed
        else:
            negatives += 1
            neg_time += elapsed
    return SplitTiming(
        positive_avg=pos_time / positives if positives else None,
        negative_avg=neg_time / negatives if negatives else None,
        positives=positives,
        negatives=negatives,
    )


# ----------------------------------------------------------------------
# Method bundles
# ----------------------------------------------------------------------
@dataclass(slots=True)
class MethodBundle:
    """All evaluation methods built over one dataset, with build times."""

    dataset: str
    methods: dict[str, RangeReachMethod]
    build_seconds: dict[str, float]
    context: BuildContext | None = None

    def __getitem__(self, name: str) -> RangeReachMethod:
        return self.methods[name]


# Factories accept an optional shared BuildContext; callers that only
# pass the condensation (the per-method benchmark files) keep working.
_METHOD_FACTORIES: dict[str, Callable[..., RangeReachMethod]] = {
    "spareach-bfl": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", context=ctx),
    "spareach-int": lambda cn, ctx=None: SpaReach(cn, reach_index="interval", context=ctx),
    "georeach": lambda cn, ctx=None: GeoReach(cn, context=ctx),
    "socreach": lambda cn, ctx=None: SocReach(cn, context=ctx),
    "3dreach": lambda cn, ctx=None: ThreeDReach(cn, context=ctx),
    "3dreach-rev": lambda cn, ctx=None: ThreeDReachRev(cn, context=ctx),
    # MBR SCC-handling variants (Section 5 / Figure 5 & the Table 4/5
    # parenthesised numbers).
    "spareach-bfl-mbr": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", scc_mode="mbr", context=ctx),
    "spareach-int-mbr": lambda cn, ctx=None: SpaReach(cn, reach_index="interval", scc_mode="mbr", context=ctx),
    "3dreach-mbr": lambda cn, ctx=None: ThreeDReach(cn, scc_mode="mbr", context=ctx),
    "3dreach-rev-mbr": lambda cn, ctx=None: ThreeDReachRev(cn, scc_mode="mbr", context=ctx),
    # Ablation variants (not part of the paper's figures).
    "spareach-bfl-streaming": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", streaming=True, context=ctx),
    "spareach-pll": lambda cn, ctx=None: SpaReach(cn, reach_index="pll", context=ctx),
    "spareach-grail": lambda cn, ctx=None: SpaReach(cn, reach_index="grail", context=ctx),
    "spareach-feline": lambda cn, ctx=None: SpaReach(cn, reach_index="feline", context=ctx),
    "spareach-chain": lambda cn, ctx=None: SpaReach(cn, reach_index="chain", context=ctx),
    "spareach-bfl-quadtree": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", spatial_index="quadtree", context=ctx),
    "spareach-bfl-grid": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", spatial_index="grid", context=ctx),
    "spareach-bfl-linear": lambda cn, ctx=None: SpaReach(cn, reach_index="bfl", spatial_index="linear", context=ctx),
    "socreach-bptree": lambda cn, ctx=None: SocReach(cn, descendant_access="bptree", context=ctx),
}

PAPER_METHODS = ("spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev")

_BUNDLES: dict[tuple[str, float, int, tuple[str, ...]], MethodBundle] = {}


def get_bundle(
    dataset: str,
    method_names: Sequence[str] = PAPER_METHODS,
    scale: float | None = None,
    seed: int = 1,
) -> MethodBundle:
    """Build (and cache) the requested methods over one dataset."""
    scale = bench_scale() if scale is None else scale
    key = (dataset, scale, seed, tuple(method_names))
    if key in _BUNDLES:
        return _BUNDLES[key]
    condensed = get_condensed(dataset, scale, seed)
    context = get_context(dataset, scale, seed)
    methods: dict[str, RangeReachMethod] = {}
    build_seconds: dict[str, float] = {}
    for name in method_names:
        factory = _METHOD_FACTORIES[name]
        method, seconds = build_timed(lambda f=factory: f(condensed, context))
        methods[name] = method
        build_seconds[name] = seconds
    bundle = MethodBundle(dataset, methods, build_seconds, context=context)
    _BUNDLES[key] = bundle
    return bundle


def method_names_available() -> tuple[str, ...]:
    """All method keys usable with :func:`get_bundle`."""
    return tuple(_METHOD_FACTORIES)
