"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def mb(num_bytes: int | float) -> float:
    """Bytes -> megabytes (Table 4's unit)."""
    return num_bytes / (1024.0 * 1024.0)


def us(seconds: float) -> float:
    """Seconds -> microseconds (the unit of the paper's query plots)."""
    return seconds * 1e6
