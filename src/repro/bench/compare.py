"""Comparing two benchmark CSV exports.

``python -m repro.bench <exp> --csv run.csv`` freezes a run; this module
diffs two such files and reports per-cell ratios — the regression-check
companion every benchmark harness needs.

Usage::

    python -m repro.bench.compare baseline.csv candidate.csv
"""

from __future__ import annotations

import csv
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, slots=True)
class CellChange:
    """One numeric cell that moved between runs."""

    section: str
    row_key: str
    column: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline


def _parse_sections(path: str | Path) -> dict[str, dict[str, dict[str, str]]]:
    """Read a bench CSV into {section: {row_key: {column: value}}}."""
    sections: dict[str, dict[str, dict[str, str]]] = {}
    current_title = ""
    headers: list[str] | None = None
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for record in csv.reader(handle):
            if not record or all(not cell for cell in record):
                headers = None
                continue
            if record[0].startswith("# "):
                current_title = record[0][2:]
                sections[current_title] = {}
                headers = None
                continue
            if headers is None:
                headers = record
                continue
            row_key = record[0]
            sections.setdefault(current_title, {})[row_key] = dict(
                zip(headers[1:], record[1:])
            )
    return sections


def _as_float(raw: str) -> float | None:
    try:
        return float(raw.replace(",", ""))
    except (ValueError, AttributeError):
        return None


def compare_csv(
    baseline_path: str | Path,
    candidate_path: str | Path,
    threshold: float = 0.0,
) -> list[CellChange]:
    """Return every numeric cell present in both runs, as changes.

    Args:
        baseline_path / candidate_path: CSV exports of the bench CLI.
        threshold: only report cells whose relative change exceeds this
            fraction (0 = report everything comparable).
    """
    baseline = _parse_sections(baseline_path)
    candidate = _parse_sections(candidate_path)
    changes: list[CellChange] = []
    for section, rows in baseline.items():
        other_rows = candidate.get(section)
        if other_rows is None:
            continue
        for row_key, cells in rows.items():
            other_cells = other_rows.get(row_key)
            if other_cells is None:
                continue
            for column, raw in cells.items():
                a = _as_float(raw)
                b = _as_float(other_cells.get(column, ""))
                if a is None or b is None:
                    continue
                if a == 0 and b == 0:
                    continue
                relative = abs(b - a) / abs(a) if a else float("inf")
                if relative >= threshold:
                    changes.append(
                        CellChange(section, row_key, column, a, b)
                    )
    changes.sort(key=lambda c: -abs(c.ratio - 1.0))
    return changes


def format_changes(changes: list[CellChange], limit: int = 30) -> str:
    """Render the biggest movers as a readable report."""
    if not changes:
        return "no comparable numeric cells changed"
    lines = [
        f"{len(changes)} comparable cell(s); biggest movers first:",
    ]
    for change in changes[:limit]:
        direction = "x" if change.ratio >= 1 else "/"
        factor = change.ratio if change.ratio >= 1 else 1.0 / change.ratio
        lines.append(
            f"  [{change.section}] {change.row_key} / {change.column}: "
            f"{change.baseline:g} -> {change.candidate:g} "
            f"({direction}{factor:.2f})"
        )
    if len(changes) > limit:
        lines.append(f"  ... and {len(changes) - limit} more")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) < 2:
        print(
            "usage: python -m repro.bench.compare <baseline.csv> "
            "<candidate.csv> [threshold]",
            file=sys.stderr,
        )
        return 2
    threshold = float(argv[2]) if len(argv) > 2 else 0.0
    changes = compare_csv(argv[0], argv[1], threshold=threshold)
    print(format_changes(changes))
    return 0


if __name__ == "__main__":
    sys.exit(main())
