"""Experiment definitions: one function per paper table/figure.

Each ``run_*`` function returns ``(title, headers, rows)`` ready for
:func:`repro.bench.tables.format_table`; the pytest benchmarks and the
CLI both call these.  Query times are reported in microseconds — the
paper's machine (C++, 5.8 GHz) is roughly two orders of magnitude faster
than CPython, so compare *ratios between methods*, not absolute values.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import (
    PAPER_METHODS,
    bench_datasets,
    bench_num_queries,
    bench_scale,
    get_bundle,
    get_condensed,
    get_network,
    time_queries,
)
from repro.bench.tables import mb, us
from repro.labeling import build_labeling, build_reversed_labeling
from repro.workloads import (
    DEFAULT_DEGREE_BUCKETS,
    DEFAULT_EXTENTS,
    DEFAULT_SELECTIVITIES,
    QueryWorkload,
)

DEFAULT_EXTENT = 5.0
DEFAULT_BUCKET = DEFAULT_DEGREE_BUCKETS[2]

_WORKLOADS: dict[str, QueryWorkload] = {}


def get_workload(dataset: str) -> QueryWorkload:
    """Return the (cached) query workload generator for a dataset."""
    if dataset not in _WORKLOADS:
        _WORKLOADS[dataset] = QueryWorkload(get_network(dataset), seed=2)
    return _WORKLOADS[dataset]


def _bucket_label(bucket: tuple[int, int]) -> str:
    lo, hi = bucket
    return f"[{lo}-{'...' if hi >= 10**9 else hi}]"


# ----------------------------------------------------------------------
# Table 3 — dataset characteristics
# ----------------------------------------------------------------------
def run_table3(datasets: Sequence[str] | None = None):
    datasets = datasets or bench_datasets()
    headers = [
        "dataset", "#users", "#venues", "#checkins", "|V|", "|E|", "|P|",
        "#SCCs", "largest SCC",
    ]
    rows = []
    for name in datasets:
        s = get_network(name).stats()
        rows.append([
            name, s.num_users, s.num_venues, s.num_checkin_edges,
            s.num_vertices, s.num_edges, s.num_spatial, s.num_sccs,
            s.largest_scc,
        ])
    title = f"Table 3 — dataset characteristics (scale={bench_scale()})"
    return title, headers, rows


# ----------------------------------------------------------------------
# Tables 4 & 5 — index size / indexing time
# ----------------------------------------------------------------------
_T45_METHODS = ("spareach-bfl", "spareach-int", "georeach", "socreach",
                "3dreach", "3dreach-rev")
_MBR_VARIANTS = {
    "spareach-bfl": "spareach-bfl-mbr",
    "spareach-int": "spareach-int-mbr",
    "3dreach": "3dreach-mbr",
    "3dreach-rev": "3dreach-rev-mbr",
}


def _bundle_with_variants(dataset: str):
    names = list(_T45_METHODS) + list(_MBR_VARIANTS.values())
    return get_bundle(dataset, names)


def run_table4(datasets: Sequence[str] | None = None):
    datasets = datasets or bench_datasets()
    headers = ["dataset"] + list(_T45_METHODS)
    rows = []
    for name in datasets:
        bundle = _bundle_with_variants(name)
        row = [name]
        for method in _T45_METHODS:
            size = mb(bundle[method].size_bytes())
            if method in _MBR_VARIANTS:
                variant = mb(bundle[_MBR_VARIANTS[method]].size_bytes())
                row.append(f"{size:.2f} ({variant:.2f})")
            else:
                row.append(f"{size:.2f}")
        rows.append(row)
    title = (
        "Table 4 — index size [MB]; MBR-based SCC variant in parentheses "
        f"(scale={bench_scale()})"
    )
    return title, headers, rows


def run_table5(datasets: Sequence[str] | None = None):
    datasets = datasets or bench_datasets()
    headers = ["dataset"] + list(_T45_METHODS)
    rows = []
    for name in datasets:
        bundle = _bundle_with_variants(name)
        row = [name]
        for method in _T45_METHODS:
            seconds = bundle.build_seconds[method]
            if method in _MBR_VARIANTS:
                variant = bundle.build_seconds[_MBR_VARIANTS[method]]
                row.append(f"{seconds:.2f} ({variant:.2f})")
            else:
                row.append(f"{seconds:.2f}")
        rows.append(row)
    title = (
        "Table 5 — indexing time [s]; MBR-based SCC variant in parentheses "
        f"(scale={bench_scale()})"
    )
    return title, headers, rows


# ----------------------------------------------------------------------
# Table 6 — interval labeling statistics
# ----------------------------------------------------------------------
def run_table6(datasets: Sequence[str] | None = None):
    datasets = datasets or bench_datasets()
    headers = [
        "dataset",
        "fwd uncompressed", "fwd compressed",
        "rev uncompressed", "rev compressed",
    ]
    rows = []
    for name in datasets:
        dag = get_condensed(name).dag
        fwd = build_labeling(dag).stats()
        rev = build_reversed_labeling(dag).stats()
        rows.append([
            name,
            fwd.uncompressed_labels, fwd.compressed_labels,
            rev.uncompressed_labels, rev.compressed_labels,
        ])
    title = f"Table 6 — interval-labeling label counts (scale={bench_scale()})"
    return title, headers, rows


# ----------------------------------------------------------------------
# Figure helpers: query-time series
# ----------------------------------------------------------------------
def _series_by_extent(dataset: str, method_names: Sequence[str], extents, count):
    workload = get_workload(dataset)
    bundle = get_bundle(dataset, method_names)
    rows = []
    for extent in extents:
        batch = workload.batch_by_extent(extent, DEFAULT_BUCKET, count)
        row = [f"{extent:g}%"]
        for name in method_names:
            avg, _ = time_queries(bundle[name], batch)
            row.append(round(us(avg), 1))
        rows.append(row)
    return rows


def _series_by_degree(dataset: str, method_names: Sequence[str], buckets, count):
    workload = get_workload(dataset)
    bundle = get_bundle(dataset, method_names)
    rows = []
    for bucket in buckets:
        batch = workload.batch_by_extent(DEFAULT_EXTENT, bucket, count)
        row = [_bucket_label(bucket)]
        for name in method_names:
            avg, _ = time_queries(bundle[name], batch)
            row.append(round(us(avg), 1))
        rows.append(row)
    return rows


def _series_by_selectivity(dataset: str, method_names: Sequence[str], sels, count):
    workload = get_workload(dataset)
    bundle = get_bundle(dataset, method_names)
    rows = []
    for sel in sels:
        batch = workload.batch_by_selectivity(sel, DEFAULT_BUCKET, count)
        row = [f"{sel:g}%"]
        for name in method_names:
            avg, _ = time_queries(bundle[name], batch)
            row.append(round(us(avg), 1))
        rows.append(row)
    return rows


def _figure(dataset: str, method_names: Sequence[str], axes: Sequence[str], count: int):
    """Build the per-dataset rows of a query-time figure."""
    rows = []
    if "extent" in axes:
        rows.append(["-- vary region extent --"] + [""] * len(method_names))
        rows.extend(_series_by_extent(dataset, method_names, DEFAULT_EXTENTS, count))
    if "degree" in axes:
        rows.append(["-- vary vertex degree --"] + [""] * len(method_names))
        rows.extend(_series_by_degree(dataset, method_names, DEFAULT_DEGREE_BUCKETS, count))
    if "selectivity" in axes:
        rows.append(["-- vary selectivity --"] + [""] * len(method_names))
        rows.extend(
            _series_by_selectivity(dataset, method_names, DEFAULT_SELECTIVITIES, count)
        )
    return rows


# ----------------------------------------------------------------------
# Figure 5 — MBR vs non-MBR SCC handling (SpaReach-INT)
# ----------------------------------------------------------------------
def run_fig5(datasets: Sequence[str] | None = None, count: int | None = None):
    datasets = datasets or bench_datasets()
    count = count or bench_num_queries()
    methods = ("spareach-int", "spareach-int-mbr")
    headers = ["x"] + [f"{m} [us]" for m in methods]
    rows = []
    for name in datasets:
        rows.append([f"== {name} =="] + [""] * len(methods))
        rows.extend(_figure(name, methods, ("extent", "degree"), count))
    title = (
        "Figure 5 — SCC handling: replicate vs MBR variant of SpaReach-INT, "
        f"avg query time ({count} queries/point, scale={bench_scale()})"
    )
    return title, headers, rows


# ----------------------------------------------------------------------
# Figure 6 — best spatial-first method
# ----------------------------------------------------------------------
def run_fig6(datasets: Sequence[str] | None = None, count: int | None = None):
    datasets = datasets or bench_datasets()
    count = count or bench_num_queries()
    methods = ("spareach-bfl", "spareach-int")
    headers = ["x"] + [f"{m} [us]" for m in methods]
    rows = []
    for name in datasets:
        rows.append([f"== {name} =="] + [""] * len(methods))
        rows.extend(_figure(name, methods, ("extent", "degree", "selectivity"), count))
    title = (
        "Figure 6 — SpaReach-BFL vs SpaReach-INT, avg query time "
        f"({count} queries/point, scale={bench_scale()})"
    )
    return title, headers, rows


# ----------------------------------------------------------------------
# Figure 7 — all evaluation methods
# ----------------------------------------------------------------------
def run_fig7(datasets: Sequence[str] | None = None, count: int | None = None):
    datasets = datasets or bench_datasets()
    count = count or bench_num_queries()
    methods = PAPER_METHODS
    headers = ["x"] + [f"{m} [us]" for m in methods]
    rows = []
    for name in datasets:
        rows.append([f"== {name} =="] + [""] * len(methods))
        rows.extend(_figure(name, methods, ("extent", "degree", "selectivity"), count))
    title = (
        "Figure 7 — all methods, avg query time "
        f"({count} queries/point, scale={bench_scale()})"
    )
    return title, headers, rows


def chart_series(
    dataset: str,
    method_names: Sequence[str],
    axis: str = "extent",
    count: int | None = None,
):
    """Return ``(x_labels, {method: values})`` for one figure axis.

    Feeds :func:`repro.bench.ascii_chart.render_series`.
    """
    count = count or bench_num_queries()
    if axis == "extent":
        rows = _series_by_extent(dataset, method_names, DEFAULT_EXTENTS, count)
    elif axis == "degree":
        rows = _series_by_degree(dataset, method_names, DEFAULT_DEGREE_BUCKETS, count)
    elif axis == "selectivity":
        rows = _series_by_selectivity(
            dataset, method_names, DEFAULT_SELECTIVITIES, count
        )
    else:
        raise ValueError(
            "axis must be 'extent', 'degree' or 'selectivity'"
        )
    x_labels = [row[0] for row in rows]
    series = {
        name: [row[i + 1] for row in rows]
        for i, name in enumerate(method_names)
    }
    return x_labels, series


# ----------------------------------------------------------------------
# Positive vs negative answers (Section 2.2.3's asymmetry; ours)
# ----------------------------------------------------------------------
def run_negsplit(datasets: Sequence[str] | None = None, count: int | None = None):
    from repro.bench.harness import PAPER_METHODS, get_bundle, time_queries_split

    datasets = datasets or bench_datasets()
    count = count or bench_num_queries()
    extent = 1.0  # small extent keeps a healthy share of FALSE answers
    headers = ["dataset", "method", "positive [us]", "negative [us]", "positives"]
    rows = []
    for name in datasets:
        bundle = get_bundle(name, PAPER_METHODS)
        batch = get_workload(name).batch_by_extent(extent, DEFAULT_BUCKET, count)
        for method_name in PAPER_METHODS:
            split = time_queries_split(bundle[method_name], batch)
            rows.append([
                name,
                method_name,
                round(us(split.positive_avg), 1) if split.positive_avg else "-",
                round(us(split.negative_avg), 1) if split.negative_avg else "-",
                f"{split.positives}/{split.positives + split.negatives}",
            ])
    title = (
        "Positive vs negative RangeReach answers "
        f"({extent:g}% extent, {count} queries, scale={bench_scale()})"
    )
    return title, headers, rows


EXPERIMENTS = {
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "negsplit": run_negsplit,
}
