"""Benchmark harness.

Regenerates every table and figure of the paper's evaluation section
(Section 6) on the synthetic dataset replicas.  Two entry points:

* ``python -m repro.bench <experiment>`` — the CLI (``table3`` ..
  ``table6``, ``fig5`` .. ``fig7``, ``all``);
* the ``benchmarks/`` directory — pytest-benchmark wrappers around the
  same experiment functions.

Scale and workload sizes are controlled by environment variables:
``REPRO_SCALE`` (fraction of the paper's dataset sizes, default 0.002),
``REPRO_QUERIES`` (queries per configuration, default 50) and
``REPRO_DATASETS`` (comma-separated subset).
"""

from repro.bench.harness import (
    MethodBundle,
    bench_datasets,
    bench_num_queries,
    bench_scale,
    build_timed,
    get_condensed,
    get_network,
    time_queries,
    time_queries_counted,
    time_query_batch,
)
from repro.bench.tables import format_table

__all__ = [
    "MethodBundle",
    "bench_datasets",
    "bench_num_queries",
    "bench_scale",
    "build_timed",
    "get_condensed",
    "get_network",
    "time_queries",
    "time_queries_counted",
    "time_query_batch",
    "format_table",
]
