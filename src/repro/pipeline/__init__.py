"""Shared build pipeline for RangeReach index construction.

:class:`BuildContext` is the keyed artifact cache through which all
method factories construct; see :mod:`repro.pipeline.context` for the
design and :func:`repro.core.build_methods` for the high-level entry
point.
"""

from repro.pipeline.context import ArtifactKey, BuildContext

__all__ = ["ArtifactKey", "BuildContext"]
