"""The shared build pipeline: a keyed artifact cache for index builds.

Every RangeReach method factory used to rebuild its own artifacts from
the raw :class:`~repro.geosocial.CondensedNetwork` — SocReach, 3DReach
and the SpaReach variants each ran ``build_labeling`` /
``build_reversed_labeling`` and bulk-loaded their own R-trees, so a
compare-all-methods run recomputed the same DFS forests and spatial
loads once per method.  :class:`BuildContext` separates *index
construction* from *query serving* (the build-once/query-many split of
the reachability-indexing literature): methods constructed through one
context share

* the **condensation** (built at most once per context);
* the **interval labelings**, keyed by ``(direction, mode, stride)``;
* the **spatial feeds** (replicate / MBR bulk-load entry lists);
* the **bulk-loaded R-trees**, keyed by ``(feed, dims, capacity)``;
* the **columnar snapshot artifacts** (CSR coordinate columns and
  post-order slabs).

Each cache access is counted (``repro_pipeline_cache_{hits,misses}_total``
by artifact kind) and each construction is timed into a per-kind
build-seconds histogram, so "how much did sharing save?" is a metrics
query, not a guess.  Per-context numbers are also kept locally
(:meth:`BuildContext.stats`, :meth:`BuildContext.labeling_builds`) so
they work with observability disabled.

Sharing is safe because every cached artifact is immutable once built:
methods only read labels, columns and R-tree nodes at query time.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.geosocial.columnar import (
    PostOrderSlabs,
    SpatialColumns,
    build_post_slabs,
)
from repro.geosocial.network import GeosocialNetwork
from repro.geosocial.scc_handling import (
    CondensedNetwork,
    SccMode,
    condense_network,
)
from repro.kernels import (
    make_bfl_kernel,
    make_label_kernel,
    make_point_kernel,
    make_segment_kernel,
    make_slab_kernel,
    resolve_backend,
)
from repro.labeling import (
    IntervalLabeling,
    build_labeling,
    build_reversed_labeling,
)
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.spatial import RTree

#: Cache keys are flat tuples whose first element names the artifact kind.
ArtifactKey = tuple


class BuildContext:
    """Keyed artifact cache shared by all method builds over one network.

    Args:
        source: the network to build over — either a raw
            :class:`GeosocialNetwork` (condensed lazily, at most once) or
            a pre-built :class:`CondensedNetwork` (seeded into the cache;
            accessing it counts as a hit, never a rebuild).
        kernels: inner-loop backend, ``"numpy"`` or ``"python"``
            (default: :func:`repro.kernels.resolve_backend` — the
            ``REPRO_KERNELS`` env var, falling back to numpy when
            importable).  Methods built through this context inherit it
            unless they pass their own ``kernels=``.
    """

    def __init__(
        self,
        source: GeosocialNetwork | CondensedNetwork,
        kernels: str | None = None,
    ) -> None:
        if isinstance(source, CondensedNetwork):
            self._network = source.network
            seed: CondensedNetwork | None = source
        elif isinstance(source, GeosocialNetwork):
            self._network = source
            seed = None
        else:
            raise TypeError(
                "BuildContext wraps a GeosocialNetwork or a CondensedNetwork, "
                f"not {type(source).__name__}"
            )
        self._artifacts: dict[ArtifactKey, object] = {}
        self._hits: dict[ArtifactKey, int] = {}
        self._misses: dict[ArtifactKey, int] = {}
        self._build_seconds: dict[ArtifactKey, float] = {}
        # Kernels are *derived* accelerators over cached artifacts, not
        # artifacts themselves: they never enter ``_artifacts`` (the
        # snapshot writer rejects unknown kinds) so snapshots stay
        # backend-independent by construction.
        self._kernel_backend = resolve_backend(kernels)
        self._kernel_cache: dict[tuple, object] = {}
        if seed is not None:
            self._artifacts[("condense",)] = seed

    # ------------------------------------------------------------------
    # Cache core
    # ------------------------------------------------------------------
    def _get(self, key: ArtifactKey, build: Callable[[], object]):
        artifact = self._artifacts.get(key)
        kind = key[0]
        if artifact is not None:
            self._hits[key] = self._hits.get(key, 0) + 1
            if _obs_enabled():
                _inst.PIPELINE_CACHE_HITS.labels(artifact=kind).inc()
            return artifact
        self._misses[key] = self._misses.get(key, 0) + 1
        if _obs_enabled():
            _inst.PIPELINE_CACHE_MISSES.labels(artifact=kind).inc()
        started = time.perf_counter()
        artifact = build()
        elapsed = time.perf_counter() - started
        self._artifacts[key] = artifact
        self._build_seconds[key] = elapsed
        if _obs_enabled():
            _inst.pipeline_build_seconds(kind).observe(elapsed)
        return artifact

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    @property
    def network(self) -> GeosocialNetwork:
        return self._network

    def condensed(self) -> CondensedNetwork:
        """The condensation; built at most once per context."""
        return self._get(
            ("condense",), lambda: condense_network(self._network)
        )

    def labeling(
        self, mode: str = "subtree", stride: int = 1
    ) -> IntervalLabeling:
        """The forward interval labeling for one ``(mode, stride)``."""
        dag = self.condensed().dag
        return self._get(
            ("labeling", "forward", mode, stride),
            lambda: build_labeling(dag, mode=mode, post_stride=stride),
        )

    def reversed_labeling(self, mode: str = "subtree") -> IntervalLabeling:
        """The reversed interval labeling (3DReach-Rev's scheme)."""
        dag = self.condensed().dag
        return self._get(
            ("labeling", "reversed", mode, 1),
            lambda: build_reversed_labeling(dag, mode=mode),
        )

    def columns(self) -> SpatialColumns:
        """The condensation's CSR coordinate columns."""
        condensed = self.condensed()
        return self._get(("columns",), condensed.columns)

    def post_slabs(
        self, mode: str = "subtree", stride: int = 1
    ) -> PostOrderSlabs:
        """Post-order-aligned coordinate slabs over one labeling."""
        condensed = self.condensed()
        labeling = self.labeling(mode=mode, stride=stride)
        return self._get(
            ("slabs", mode, stride),
            lambda: build_post_slabs(condensed, labeling),
        )

    def replicate_feed(self) -> list:
        """2-D bulk-load entries, one degenerate box per member point."""
        condensed = self.condensed()
        return self._get(
            ("feed", "replicate-2d"),
            lambda: [
                ((p.x, p.y, p.x, p.y), component)
                for p, component in condensed.replicate_entries()
            ],
        )

    def mbr_feed(self) -> list:
        """2-D bulk-load entries, one MBR per spatial super-vertex."""
        condensed = self.condensed()
        return self._get(
            ("feed", "mbr-2d"),
            lambda: [
                (mbr.as_tuple(), component)
                for mbr, component in condensed.mbr_entries()
            ],
        )

    # ------------------------------------------------------------------
    # R-trees (keyed by feed identity, dims and capacity)
    # ------------------------------------------------------------------
    def rtree(
        self,
        feed: str | tuple,
        dims: int,
        capacity: int,
        entries: Callable[[], Iterable],
    ) -> RTree:
        """Generic keyed R-tree cache.

        ``feed`` names the entry feed (a string or tuple making the key
        unique); ``entries`` is a zero-argument callable producing the
        bulk-load feed — only invoked on a cache miss.
        """
        feed_key = feed if isinstance(feed, tuple) else (feed,)
        key = ("rtree", *feed_key, int(dims), int(capacity))
        return self._get(
            key,
            lambda: RTree.bulk_load(entries(), dims=dims, capacity=capacity),
        )

    def spatial_rtree(self, scc_mode: SccMode, capacity: int = 16) -> RTree:
        """The 2-D R-tree over the replicate or MBR feed (SpaReach)."""
        feed = (
            self.replicate_feed()
            if scc_mode == "replicate"
            else self.mbr_feed()
        )
        return self.rtree(("2d", scc_mode), 2, capacity, lambda: feed)

    def point_rtree_3d(
        self,
        scc_mode: SccMode,
        mode: str = "subtree",
        stride: int = 1,
        capacity: int = 16,
    ) -> RTree:
        """The 3-D ``(x, y, post)`` R-tree of 3DReach, values = components."""
        condensed = self.condensed()
        post = self.labeling(mode=mode, stride=stride).post
        if scc_mode == "replicate":
            def entries():
                return (
                    ((p.x, p.y, post[c], p.x, p.y, post[c]), c)
                    for p, c in condensed.replicate_entries()
                )
        else:
            def entries():
                return (
                    ((m.xlo, m.ylo, post[c], m.xhi, m.yhi, post[c]), c)
                    for m, c in condensed.mbr_entries()
                )
        return self.rtree(
            ("3d-points", scc_mode, mode, stride), 3, capacity, entries
        )

    def segment_rtree_3d(
        self,
        scc_mode: SccMode,
        mode: str = "subtree",
        capacity: int = 16,
    ) -> RTree:
        """The 3-D segment R-tree of 3DReach-Rev (reversed labels)."""
        condensed = self.condensed()
        labels = self.reversed_labeling(mode=mode).labels

        def entries():
            if scc_mode == "replicate":
                for point, component in condensed.replicate_entries():
                    for lo, hi in labels[component]:
                        yield (
                            (point.x, point.y, lo, point.x, point.y, hi),
                            component,
                        )
            else:
                for mbr, component in condensed.mbr_entries():
                    for lo, hi in labels[component]:
                        yield (
                            (mbr.xlo, mbr.ylo, lo, mbr.xhi, mbr.yhi, hi),
                            component,
                        )

        return self.rtree(
            ("3d-segments", scc_mode, mode), 3, capacity, entries
        )

    def vertex_rtree_3d(
        self, mode: str = "subtree", stride: int = 1, capacity: int = 16
    ) -> RTree:
        """The 3-D point R-tree keyed by *original* spatial vertex ids.

        Used by :class:`~repro.core.GeosocialQueryEngine`, whose extended
        queries (witnesses, nearest) must report original vertices.
        """
        condensed = self.condensed()
        post = self.labeling(mode=mode, stride=stride).post

        def entries():
            return (
                ((p.x, p.y, post[c], p.x, p.y, post[c]), vertex)
                for p, c, vertex in condensed.vertex_entries()
            )

        return self.rtree(("3d-vertices", mode, stride), 3, capacity, entries)

    # ------------------------------------------------------------------
    # Derived reachability artifacts (SpaGraph, BFL)
    # ------------------------------------------------------------------
    def spa_graph(self, params=None):
        """GeoReach's materialized SPA-graph for one parameter set.

        The dominant single-artifact build cost of a five-method run, so
        caching (and persisting) it is what makes warm starts fast.
        """
        from repro.core.georeach import GeoReachParams, build_spa_graph

        params = params or GeoReachParams()
        condensed = self.condensed()
        key = (
            "spa",
            params.grid_levels,
            params.merge_count,
            params.max_reach_grids,
            params.max_rmbr_ratio,
        )
        return self._get(key, lambda: build_spa_graph(condensed, params))

    def bfl_reach(self, filter_bits: int = 256, seed: int = 7):
        """The Bloom-filter-labeling reachability index over the DAG."""
        from repro.reach.bfl import BflReach

        dag = self.condensed().dag
        return self._get(
            ("reach", "bfl", int(filter_bits), int(seed)),
            lambda: BflReach(dag, filter_bits=filter_bits, seed=seed),
        )

    # ------------------------------------------------------------------
    # Kernels (derived, non-persisted accelerators)
    # ------------------------------------------------------------------
    @property
    def kernels(self) -> str:
        """The resolved kernel backend methods inherit from this context."""
        return self._kernel_backend

    def set_kernels(self, kernels: str | None) -> None:
        """Re-resolve the backend (used by warm starts); clears kernel cache."""
        backend = resolve_backend(kernels)
        if backend != self._kernel_backend:
            self._kernel_backend = backend
            self._kernel_cache.clear()

    def _kernel(self, key: tuple, build: Callable[[], object]):
        kernel = self._kernel_cache.get(key)
        if kernel is None:
            kernel = self._kernel_cache[key] = build()
        return kernel

    def _backend(self, backend: str | None) -> str:
        return self._kernel_backend if backend is None else resolve_backend(backend)

    def slab_kernel(
        self,
        mode: str = "subtree",
        stride: int = 1,
        backend: str | None = None,
    ):
        """Slab-scan kernel over :meth:`post_slabs` (SocReach, cuboid sweeps)."""
        backend = self._backend(backend)
        return self._kernel(
            ("slab", backend, mode, stride),
            lambda: make_slab_kernel(
                backend, self.post_slabs(mode=mode, stride=stride), stride
            ),
        )

    def point_kernel(self, backend: str | None = None):
        """Point-probe kernel over :meth:`columns` (MBR verification, GeoReach)."""
        backend = self._backend(backend)
        return self._kernel(
            ("points", backend), lambda: make_point_kernel(backend, self.columns())
        )

    def bfl_kernel(
        self,
        filter_bits: int = 256,
        seed: int = 7,
        backend: str | None = None,
    ):
        """Batched BFL kernel over :meth:`bfl_reach` (SpaReach candidates)."""
        backend = self._backend(backend)
        return self._kernel(
            ("bfl", backend, int(filter_bits), int(seed)),
            lambda: make_bfl_kernel(
                backend, self.bfl_reach(filter_bits=filter_bits, seed=seed)
            ),
        )

    def label_kernel(
        self,
        mode: str = "subtree",
        stride: int = 1,
        backend: str | None = None,
    ):
        """Batched interval-coverage kernel over :meth:`labeling`."""
        backend = self._backend(backend)
        return self._kernel(
            ("labels", backend, mode, stride),
            lambda: make_label_kernel(
                backend, self.labeling(mode=mode, stride=stride)
            ),
        )

    def segment_kernel(self, mode: str = "subtree", backend: str | None = None):
        """Segment-sweep kernel over :meth:`reversed_labeling` (3DReach-Rev)."""
        backend = self._backend(backend)
        return self._kernel(
            ("segments", backend, mode),
            lambda: make_segment_kernel(
                backend, self.condensed(), self.reversed_labeling(mode=mode)
            ),
        )

    # ------------------------------------------------------------------
    # Persistence (repro.store)
    # ------------------------------------------------------------------
    def seed_artifact(self, key: ArtifactKey, artifact: object) -> None:
        """Install a pre-built artifact under ``key`` without counting.

        Used by the snapshot loader: seeded artifacts behave exactly like
        cache contents (every subsequent ``_get`` is a hit), so a warm
        start shows zero misses and ``labeling_builds() == []``.
        """
        self._artifacts[tuple(key)] = artifact

    def artifact_items(self) -> list[tuple[ArtifactKey, object]]:
        """All cached ``(key, artifact)`` pairs, for the snapshot writer."""
        return list(self._artifacts.items())

    def save(self, directory) -> dict:
        """Persist every cached artifact as a snapshot at ``directory``.

        Returns the save summary of :func:`repro.store.save_context`.
        """
        from repro.store import save_context

        return save_context(self, directory)

    @classmethod
    def load(cls, directory, kernels: str | None = None) -> "BuildContext":
        """Rebuild a context from a snapshot written by :meth:`save`.

        Snapshots are backend-independent (kernels are derived, never
        persisted), so ``kernels=`` freely re-targets a snapshot saved
        under the other backend.

        Raises:
            repro.store.SnapshotError: on a missing, malformed or
                corrupted snapshot.
        """
        from repro.store import load_context

        context = load_context(directory)
        if kernels is not None:
            context.set_kernels(kernels)
        return context

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-artifact-kind hit/miss/build-time totals for this context."""
        hits: dict[str, int] = {}
        misses: dict[str, int] = {}
        seconds: dict[str, float] = {}
        for key, n in self._hits.items():
            hits[key[0]] = hits.get(key[0], 0) + n
        for key, n in self._misses.items():
            misses[key[0]] = misses.get(key[0], 0) + n
        for key, s in self._build_seconds.items():
            seconds[key[0]] = seconds.get(key[0], 0.0) + s
        return {
            "hits": hits,
            "misses": misses,
            "build_seconds": seconds,
            "artifacts": len(self._artifacts),
        }

    def miss_keys(self) -> list[ArtifactKey]:
        """The full keys actually constructed (each at most once)."""
        return sorted(self._misses)

    def labeling_builds(self) -> list[tuple]:
        """Distinct ``(direction, mode, stride)`` labelings constructed.

        The acceptance check of the shared pipeline: building N methods
        through one context must run at most one labeling construction
        per distinct key, i.e. the labeling-miss count always equals
        ``len(context.labeling_builds())``.
        """
        return sorted(
            key[1:] for key in self._misses if key[0] == "labeling"
        )
