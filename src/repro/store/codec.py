"""Deterministic binary records: the payload encoding of snapshot parts.

Every artifact the store persists is first reduced to a flat record — a
mapping of field names to scalars (int / float / str / bytes) and typed
arrays (``array('q')`` / ``array('d')``) — and then serialized with
:func:`encode_record`.  The encoding is **canonical**: fields are written
sorted by name, integers and floats are fixed-width little-endian, and
arrays carry an explicit element count.  Canonical bytes are what makes
the snapshot format *byte-stable*: serializing an artifact, loading it,
and serializing it again reproduces the identical byte string (and hence
the identical part checksum).

Layout::

    magic   b"RPRT1\\0"
    u32     number of fields
    per field (sorted by name):
        u16   name length, then the UTF-8 name
        u8    type tag (i/f/s/b/I/F)
        u64   payload length in bytes
        payload

Decoding is strict — any structural surprise (bad magic, short payload,
trailing bytes, unknown tag) raises
:class:`~repro.store.errors.SnapshotError`.
"""

from __future__ import annotations

import struct
import sys
from array import array

from repro.store.errors import SnapshotError

MAGIC = b"RPRT1\x00"

_TAG_INT = ord("i")
_TAG_FLOAT = ord("f")
_TAG_STR = ord("s")
_TAG_BYTES = ord("b")
_TAG_INT_ARRAY = ord("I")
_TAG_FLOAT_ARRAY = ord("F")

_SWAP = sys.byteorder == "big"


def _array_bytes(values: array) -> bytes:
    """Return the little-endian byte image of a typed array."""
    if _SWAP:  # pragma: no cover - big-endian hosts only
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _array_from_bytes(typecode: str, payload: bytes) -> array:
    values = array(typecode)
    try:
        values.frombytes(payload)
    except ValueError as exc:
        raise SnapshotError(f"truncated array payload: {exc}") from None
    if _SWAP:  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values


def encode_record(fields: dict[str, object]) -> bytes:
    """Serialize a field mapping into canonical record bytes.

    Accepted value types: ``bool``/``int`` (64-bit signed), ``float``,
    ``str``, ``bytes``, ``array('q')`` and ``array('d')``.  Anything else
    raises :class:`SnapshotError` — the store never falls back to pickle.
    """
    out = [MAGIC, struct.pack("<I", len(fields))]
    for name in sorted(fields):
        value = fields[name]
        name_bytes = name.encode("utf-8")
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            tag, payload = _TAG_INT, struct.pack("<q", value)
        elif isinstance(value, float):
            tag, payload = _TAG_FLOAT, struct.pack("<d", value)
        elif isinstance(value, str):
            tag, payload = _TAG_STR, value.encode("utf-8")
        elif isinstance(value, bytes):
            tag, payload = _TAG_BYTES, value
        elif isinstance(value, array) and value.typecode == "q":
            tag, payload = _TAG_INT_ARRAY, _array_bytes(value)
        elif isinstance(value, array) and value.typecode == "d":
            tag, payload = _TAG_FLOAT_ARRAY, _array_bytes(value)
        else:
            raise SnapshotError(
                f"field {name!r} has unsupported type {type(value).__name__}"
            )
        out.append(struct.pack("<HBQ", len(name_bytes), tag, len(payload)))
        out.append(name_bytes)
        out.append(payload)
    return b"".join(out)


def decode_record(data: bytes) -> dict[str, object]:
    """Parse record bytes back into a field mapping (strict)."""
    if not data.startswith(MAGIC):
        raise SnapshotError("not a snapshot part record (bad magic)")
    offset = len(MAGIC)
    if len(data) < offset + 4:
        raise SnapshotError("truncated record header")
    (num_fields,) = struct.unpack_from("<I", data, offset)
    offset += 4
    fields: dict[str, object] = {}
    for _ in range(num_fields):
        if len(data) < offset + 11:
            raise SnapshotError("truncated field header")
        name_len, tag, payload_len = struct.unpack_from("<HBQ", data, offset)
        offset += 11
        if len(data) < offset + name_len + payload_len:
            raise SnapshotError("truncated field payload")
        name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        payload = data[offset : offset + payload_len]
        offset += payload_len
        if tag == _TAG_INT:
            if payload_len != 8:
                raise SnapshotError(f"field {name!r}: bad int payload")
            fields[name] = struct.unpack("<q", payload)[0]
        elif tag == _TAG_FLOAT:
            if payload_len != 8:
                raise SnapshotError(f"field {name!r}: bad float payload")
            fields[name] = struct.unpack("<d", payload)[0]
        elif tag == _TAG_STR:
            fields[name] = payload.decode("utf-8")
        elif tag == _TAG_BYTES:
            fields[name] = payload
        elif tag == _TAG_INT_ARRAY:
            fields[name] = _array_from_bytes("q", payload)
        elif tag == _TAG_FLOAT_ARRAY:
            fields[name] = _array_from_bytes("d", payload)
        else:
            raise SnapshotError(f"field {name!r}: unknown type tag {tag}")
    if offset != len(data):
        raise SnapshotError(f"{len(data) - offset} trailing bytes after record")
    return fields


def require(fields: dict[str, object], name: str, kind: type):
    """Fetch a typed field, raising :class:`SnapshotError` when absent/wrong."""
    try:
        value = fields[name]
    except KeyError:
        raise SnapshotError(f"record is missing field {name!r}") from None
    if kind is int and isinstance(value, bool):  # pragma: no cover - guard
        value = int(value)
    if kind is array:
        if not isinstance(value, array):
            raise SnapshotError(f"field {name!r} is not an array")
        return value
    if not isinstance(value, kind):
        raise SnapshotError(
            f"field {name!r} has type {type(value).__name__}, "
            f"expected {kind.__name__}"
        )
    return value
