"""The typed failure mode of the snapshot store.

Every way a persisted snapshot can be unusable — missing manifest,
unknown format version, truncated or corrupted part file, checksum
mismatch, malformed record — surfaces as :class:`SnapshotError`, never
as a bare ``KeyError``/``struct.error``/silently wrong artifacts.
Callers that want to degrade gracefully (warm-start falling back to a
cold build, ``snapshot inspect`` reporting per-part damage) catch this
one exception type.
"""

from __future__ import annotations


class SnapshotError(Exception):
    """A persisted snapshot is missing, malformed, or fails verification."""
