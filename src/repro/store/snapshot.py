"""The versioned on-disk snapshot format and its (de)serializers.

A snapshot is a directory::

    <dir>/
      manifest.json          # format id, version, part table (written last)
      parts/<nnn>-<slug>.bin # one canonical binary record per artifact

The manifest lists every part with its artifact kind, full
:class:`~repro.pipeline.BuildContext` cache key, byte size and SHA-256
checksum.  Loading verifies each checksum before decoding; any mismatch,
truncation, unknown format version or missing manifest raises
:class:`~repro.store.errors.SnapshotError`.

**Atomicity** — :func:`save_context` stages everything into a ``.tmp``
sibling directory (manifest last) and renames it into place, so a crash
mid-save leaves either the old snapshot or none, never a torn one.

**Byte-stability** — every serializer is canonical (parts sorted by key,
record fields sorted by name, cell sets sorted, no timestamps), so
saving a freshly *loaded* context reproduces bit-identical parts and an
identical manifest.

Artifact kinds covered (the first element of each cache key):
``network`` (the raw geosocial network, so a snapshot is self-contained),
``condense``, ``labeling``, ``columns``, ``slabs``, ``feed``, ``rtree``
(flattened node arrays — never pickled objects), ``spa`` (GeoReach's
SPA-graph) and ``reach`` (the BFL filters).
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
import time
from array import array
from pathlib import Path
from typing import TYPE_CHECKING

from repro.store.codec import decode_record, encode_record, require
from repro.store.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline import BuildContext

FORMAT = "repro-snapshot"
VERSION = 1
MANIFEST_NAME = "manifest.json"
PARTS_DIR = "parts"

#: Decode order: later kinds may depend on earlier ones (everything needs
#: the network; reach needs the condensation DAG).
_KIND_ORDER = (
    "network",
    "condense",
    "labeling",
    "columns",
    "slabs",
    "feed",
    "rtree",
    "spa",
    "reach",
)


def _key_json(key: tuple) -> str:
    """Canonical JSON form of a cache key (the manifest/sort identity)."""
    return json.dumps(list(key), sort_keys=True, separators=(",", ":"))


def _key_from_json(raw: list) -> tuple:
    if not isinstance(raw, list) or not raw or not isinstance(raw[0], str):
        raise SnapshotError(f"malformed part key in manifest: {raw!r}")
    return tuple(raw)


_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(key: tuple) -> str:
    return "-".join(_SLUG_RE.sub("_", str(element)) for element in key)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# The three bulk builders below construct the geometry dataclasses with
# ``__new__`` + ``object.__setattr__`` instead of their constructors.
# Part payloads are checksum-verified before any decoder sees them, so
# the per-object validation round (``__post_init__``) is redundant on
# this path — and skipping it roughly halves the decode cost of the
# object-heavy artifacts, which is what makes warm starts cheap.
def _build_rects(bounds) -> list:
    """``[xlo, ylo, xhi, yhi, ...]`` column -> list of ``Rect``."""
    from repro.geometry import Rect

    new = Rect.__new__
    set_ = object.__setattr__
    out: list = []
    append = out.append
    it = iter(bounds)
    for xlo, ylo, xhi, yhi in zip(it, it, it, it):
        rect = new(Rect)
        set_(rect, "xlo", xlo)
        set_(rect, "ylo", ylo)
        set_(rect, "xhi", xhi)
        set_(rect, "yhi", yhi)
        append(rect)
    return out


def _build_points(xs, ys) -> list:
    """Parallel coordinate columns -> list of ``Point``."""
    from repro.geometry import Point

    new = Point.__new__
    set_ = object.__setattr__
    out: list = []
    append = out.append
    for x, y in zip(xs, ys):
        point = new(Point)
        set_(point, "x", x)
        set_(point, "y", y)
        append(point)
    return out


# ======================================================================
# Per-kind serializers.  Each encoder reduces an artifact to flat codec
# fields; each decoder rebuilds the exact in-memory object.  Decoders
# receive the artifacts already loaded (dependency kinds come first).
# ======================================================================
def _encode_graph(graph) -> dict:
    """Reduce a :class:`DiGraph` to the four adjacency columns."""
    out_counts = array("q")
    out_targets = array("q")
    in_counts = array("q")
    in_sources = array("q")
    for v in range(graph.num_vertices):
        row = graph.successors(v)
        out_counts.append(len(row))
        out_targets.extend(row)
        row = graph.predecessors(v)
        in_counts.append(len(row))
        in_sources.extend(row)
    return {
        "out_counts": out_counts,
        "out_targets": out_targets,
        "in_counts": in_counts,
        "in_sources": in_sources,
    }


def _decode_graph(fields: dict, num_vertices: int, what: str):
    from repro.graph.digraph import DiGraph

    try:
        return DiGraph.from_adjacency(
            num_vertices,
            require(fields, "out_counts", array),
            require(fields, "out_targets", array),
            require(fields, "in_counts", array),
            require(fields, "in_sources", array),
        )
    except (ValueError, IndexError) as exc:
        raise SnapshotError(f"corrupt {what} adjacency: {exc}") from None


def _encode_network(network) -> dict:
    spatial = array("q")
    xs = array("d")
    ys = array("d")
    for v, point in enumerate(network.points):
        if point is not None:
            spatial.append(v)
            xs.append(point.x)
            ys.append(point.y)
    fields = {
        "name": network.name,
        "num_vertices": network.num_vertices,
        "spatial_ids": spatial,
        "xs": xs,
        "ys": ys,
        "has_kinds": network.kinds is not None,
        **_encode_graph(network.graph),
    }
    if network.kinds is not None:
        fields["kinds"] = ",".join(network.kinds)
    return fields


def _decode_network(fields: dict):
    from repro.geosocial.network import GeosocialNetwork

    n = require(fields, "num_vertices", int)
    graph = _decode_graph(fields, n, "network")
    points: list = [None] * n
    spatial = require(fields, "spatial_ids", array)
    xs = require(fields, "xs", array)
    ys = require(fields, "ys", array)
    if not (len(spatial) == len(xs) == len(ys)):
        raise SnapshotError("network point columns disagree in length")
    if len(spatial) and not (0 <= min(spatial) and max(spatial) < n):
        raise SnapshotError("network spatial index out of range")
    for v, point in zip(spatial, _build_points(xs, ys)):
        points[v] = point
    kinds = None
    if require(fields, "has_kinds", int):
        raw = require(fields, "kinds", str)
        kinds = raw.split(",") if n else []
    return GeosocialNetwork(
        graph, points, kinds=kinds, name=require(fields, "name", str)
    )


def _encode_condense(condensed) -> dict:
    members_offsets = array("q", [0])
    members_flat = array("q")
    for members in condensed.members:
        members_flat.extend(members)
        members_offsets.append(len(members_flat))
    return {
        "component_of": array("q", condensed.component_of),
        "members_offsets": members_offsets,
        "members_flat": members_flat,
        "num_components": condensed.dag.num_vertices,
        **_encode_graph(condensed.dag),
    }


def _decode_condense(fields: dict, network):
    from repro.geosocial.scc_handling import CondensedNetwork
    from repro.graph.condensation import Condensation

    num_components = require(fields, "num_components", int)
    dag = _decode_graph(fields, num_components, "condensation")
    offsets = require(fields, "members_offsets", array)
    flat = require(fields, "members_flat", array)
    if len(offsets) != num_components + 1:
        raise SnapshotError("condensation member offsets disagree with DAG")
    members_flat = list(flat)
    members = [
        members_flat[a:b] for a, b in zip(offsets, offsets[1:])
    ]
    condensation = Condensation(
        dag=dag,
        component_of=list(require(fields, "component_of", array)),
        members=members,
    )
    return CondensedNetwork(network, condensation)


def _encode_labeling(labeling) -> dict:
    from repro.labeling.io import labeling_state

    return labeling_state(labeling)


def _decode_labeling(fields: dict):
    from repro.labeling.io import labeling_from_state

    return labeling_from_state(
        {
            "post": require(fields, "post", array),
            "parent": require(fields, "parent", array),
            "roots": require(fields, "roots", array),
            "stride": require(fields, "stride", int),
            "uncompressed": require(fields, "uncompressed", int),
            "label_counts": require(fields, "label_counts", array),
            "label_lo": require(fields, "label_lo", array),
            "label_hi": require(fields, "label_hi", array),
        }
    )


def _encode_columns(columns) -> dict:
    return {
        "xs": columns.xs,
        "ys": columns.ys,
        "offsets": columns.offsets,
        "vertices": columns.vertices,
    }


def _decode_columns(fields: dict):
    from repro.geosocial.columnar import SpatialColumns

    xs = require(fields, "xs", array)
    ys = require(fields, "ys", array)
    vertices = require(fields, "vertices", array)
    offsets = require(fields, "offsets", array)
    if not (len(xs) == len(ys) == len(vertices)):
        raise SnapshotError("column arrays disagree in length")
    return SpatialColumns(xs, ys, offsets, vertices)


def _encode_slabs(slabs) -> dict:
    return {"offsets": slabs.offsets, "xs": slabs.xs, "ys": slabs.ys}


def _decode_slabs(fields: dict):
    from repro.geosocial.columnar import PostOrderSlabs

    xs = require(fields, "xs", array)
    ys = require(fields, "ys", array)
    if len(xs) != len(ys):
        raise SnapshotError("slab coordinate arrays disagree in length")
    return PostOrderSlabs(require(fields, "offsets", array), xs, ys)


def _encode_feed(feed: list) -> dict:
    bounds = array("d")
    items = array("q")
    width = None
    for box, item in feed:
        if width is None:
            width = len(box)
        elif len(box) != width:
            raise SnapshotError("feed entries have inconsistent bounds width")
        if not isinstance(item, int):
            raise SnapshotError("feed items must be integers")
        bounds.extend(box)
        items.append(item)
    return {"width": width or 4, "bounds": bounds, "items": items}


def _decode_feed(fields: dict) -> list:
    width = require(fields, "width", int)
    bounds = require(fields, "bounds", array)
    items = require(fields, "items", array)
    if width < 2 or len(bounds) != width * len(items):
        raise SnapshotError("feed columns disagree in length")
    bounds_it = iter(bounds)
    return list(zip(zip(*([bounds_it] * width)), items))


def _encode_rtree(rtree) -> dict:
    flat = rtree.flatten()
    return {
        "dims": flat["dims"],
        "capacity": flat["capacity"],
        "split": flat["split"],
        "size": flat["size"],
        "node_kinds": flat["node_kinds"],
        "child_counts": flat["child_counts"],
        "entry_counts": flat["entry_counts"],
        "node_bounds": flat["node_bounds"],
        "entry_bounds": flat["entry_bounds"],
        "entry_items": flat["entry_items"],
    }


def _decode_rtree(fields: dict):
    from repro.spatial import RTree

    try:
        return RTree.from_flat(
            dims=require(fields, "dims", int),
            capacity=require(fields, "capacity", int),
            split=require(fields, "split", str),
            size=require(fields, "size", int),
            node_kinds=require(fields, "node_kinds", array),
            child_counts=require(fields, "child_counts", array),
            entry_counts=require(fields, "entry_counts", array),
            node_bounds=require(fields, "node_bounds", array),
            entry_bounds=require(fields, "entry_bounds", array),
            entry_items=require(fields, "entry_items", array),
        )
    except ValueError as exc:
        raise SnapshotError(f"corrupt R-tree part: {exc}") from None


def _encode_spa(spa) -> dict:
    classes = array("q", spa.vertex_class)
    geo_bits = array("q", (1 if bit else 0 for bit in spa.geo_bit))
    rmbr_index = array("q")
    rmbr_bounds = array("d")
    for v, box in enumerate(spa.rmbr):
        if box is not None:
            rmbr_index.append(v)
            rmbr_bounds.extend((box.xlo, box.ylo, box.xhi, box.yhi))
    rg_index = array("q")
    rg_counts = array("q")
    rg_cells = array("q")
    for v, cells in enumerate(spa.reach_grid):
        if cells is None:
            continue
        rg_index.append(v)
        rg_counts.append(len(cells))
        for cell in sorted(cells, key=lambda c: (c.level, c.row, c.col)):
            rg_cells.extend((cell.level, cell.row, cell.col))
    params = spa.params
    return {
        "max_rmbr_ratio": params.max_rmbr_ratio,
        "max_reach_grids": params.max_reach_grids,
        "merge_count": params.merge_count,
        "grid_levels": params.grid_levels,
        "space_xlo": spa.space.xlo,
        "space_ylo": spa.space.ylo,
        "space_xhi": spa.space.xhi,
        "space_yhi": spa.space.yhi,
        "classes": classes,
        "geo_bits": geo_bits,
        "rmbr_index": rmbr_index,
        "rmbr_bounds": rmbr_bounds,
        "rg_index": rg_index,
        "rg_counts": rg_counts,
        "rg_cells": rg_cells,
    }


def _decode_spa(fields: dict):
    from repro.core.georeach import GeoReachParams, SpaGraph
    from repro.geometry import Rect

    classes = require(fields, "classes", array)
    geo_bits = require(fields, "geo_bits", array)
    n = len(classes)
    if len(geo_bits) != n:
        raise SnapshotError("SPA-graph per-vertex arrays disagree in length")
    rmbr: list = [None] * n
    rmbr_index = require(fields, "rmbr_index", array)
    rmbr_bounds = require(fields, "rmbr_bounds", array)
    if len(rmbr_bounds) != 4 * len(rmbr_index):
        raise SnapshotError("SPA-graph RMBR columns disagree in length")
    if len(rmbr_index) and not (
        0 <= min(rmbr_index) and max(rmbr_index) < n
    ):
        raise SnapshotError("SPA-graph RMBR index out of range")
    for v, box in zip(rmbr_index, _build_rects(rmbr_bounds)):
        rmbr[v] = box
    reach_grid: list = [None] * n
    rg_index = require(fields, "rg_index", array)
    rg_counts = require(fields, "rg_counts", array)
    rg_cells = require(fields, "rg_cells", array)
    if len(rg_counts) != len(rg_index) or len(rg_cells) != 3 * sum(rg_counts):
        raise SnapshotError("SPA-graph ReachGrid columns disagree in length")
    if len(rg_index) and not (0 <= min(rg_index) and max(rg_index) < n):
        raise SnapshotError("SPA-graph ReachGrid index out of range")
    # Reach-grid cells repeat heavily across vertices (nearby components
    # see the same popular areas), so intern both the ``Cell`` objects
    # and the per-vertex grid sets.  The encoder emits each grid's cells
    # in canonical sorted order, which makes the raw byte slice a stable
    # identity key for an entire grid.
    from repro.spatial.grid import Cell

    new = Cell.__new__
    set_ = object.__setattr__
    cell_of: dict = {}
    all_cells: list = []
    cell_append = all_cells.append
    it = iter(rg_cells)
    for triple in zip(it, it, it):
        cell = cell_of.get(triple)
        if cell is None:
            level, row, col = triple
            cell = new(Cell)
            set_(cell, "level", level)
            set_(cell, "row", row)
            set_(cell, "col", col)
            cell_of[triple] = cell
        cell_append(cell)
    grid_of: dict = {}
    cursor = 0
    for v, count in zip(rg_index, rg_counts):
        nxt = cursor + count
        key = rg_cells[3 * cursor : 3 * nxt].tobytes()
        grid = grid_of.get(key)
        if grid is None:
            grid = grid_of[key] = frozenset(all_cells[cursor:nxt])
        reach_grid[v] = grid
        cursor = nxt
    return SpaGraph(
        params=GeoReachParams(
            max_rmbr_ratio=require(fields, "max_rmbr_ratio", float),
            max_reach_grids=require(fields, "max_reach_grids", int),
            merge_count=require(fields, "merge_count", int),
            grid_levels=require(fields, "grid_levels", int),
        ),
        space=Rect(
            require(fields, "space_xlo", float),
            require(fields, "space_ylo", float),
            require(fields, "space_xhi", float),
            require(fields, "space_yhi", float),
        ),
        vertex_class=list(classes),
        geo_bit=[bool(bit) for bit in geo_bits],
        rmbr=rmbr,
        reach_grid=reach_grid,
    )


def _encode_reach(reach) -> dict:
    state = reach.state()
    width = state["filter_bits"] // 8
    return {
        "filter_bits": state["filter_bits"],
        "post": array("q", state["post"]),
        "min_post": array("q", state["min_post"]),
        "out_filters": b"".join(
            f.to_bytes(width, "little") for f in state["out_filters"]
        ),
        "in_filters": b"".join(
            f.to_bytes(width, "little") for f in state["in_filters"]
        ),
    }


def _decode_reach(fields: dict, dag):
    from repro.reach import BflReach

    bits = require(fields, "filter_bits", int)
    if bits < 8 or bits % 8:
        raise SnapshotError(f"bad BFL filter width: {bits}")
    width = bits // 8
    post = list(require(fields, "post", array))
    min_post = list(require(fields, "min_post", array))
    n = dag.num_vertices
    if len(post) != n or len(min_post) != n:
        raise SnapshotError("BFL interval arrays disagree with the DAG")
    out_blob = require(fields, "out_filters", bytes)
    in_blob = require(fields, "in_filters", bytes)
    if len(out_blob) != n * width or len(in_blob) != n * width:
        raise SnapshotError("BFL filter blobs disagree with the DAG")
    out_filters = [
        int.from_bytes(out_blob[i * width : (i + 1) * width], "little")
        for i in range(n)
    ]
    in_filters = [
        int.from_bytes(in_blob[i * width : (i + 1) * width], "little")
        for i in range(n)
    ]
    return BflReach.from_state(
        dag,
        filter_bits=bits,
        post=post,
        min_post=min_post,
        out_filters=out_filters,
        in_filters=in_filters,
    )


def _encode_artifact(key: tuple, artifact) -> bytes:
    kind = key[0]
    if kind == "network":
        fields = _encode_network(artifact)
    elif kind == "condense":
        fields = _encode_condense(artifact)
    elif kind == "labeling":
        fields = _encode_labeling(artifact)
    elif kind == "columns":
        fields = _encode_columns(artifact)
    elif kind == "slabs":
        fields = _encode_slabs(artifact)
    elif kind == "feed":
        fields = _encode_feed(artifact)
    elif kind == "rtree":
        fields = _encode_rtree(artifact)
    elif kind == "spa":
        fields = _encode_spa(artifact)
    elif kind == "reach":
        fields = _encode_reach(artifact)
    else:
        raise SnapshotError(f"cannot serialize artifact kind {kind!r}")
    return encode_record(fields)


# ======================================================================
# Manifest + part I/O
# ======================================================================
def _load_manifest(directory: Path) -> dict:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest: {exc}") from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise SnapshotError(f"{manifest_path} is not a {FORMAT} manifest")
    version = manifest.get("version")
    if version != VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version!r} "
            f"(this build reads version {VERSION})"
        )
    parts = manifest.get("parts")
    if not isinstance(parts, list):
        raise SnapshotError("snapshot manifest has no part table")
    return manifest


def _read_part(directory: Path, entry: dict) -> bytes:
    for field in ("file", "kind", "key", "bytes", "sha256"):
        if field not in entry:
            raise SnapshotError(f"manifest part entry missing {field!r}")
    path = directory / PARTS_DIR / entry["file"]
    if not path.is_file():
        raise SnapshotError(f"missing snapshot part {entry['file']}")
    data = path.read_bytes()
    if len(data) != entry["bytes"]:
        raise SnapshotError(
            f"part {entry['file']} is {len(data)} bytes, "
            f"manifest says {entry['bytes']} (truncated or padded)"
        )
    digest = _sha256(data)
    if digest != entry["sha256"]:
        raise SnapshotError(
            f"part {entry['file']} checksum mismatch: "
            f"{digest[:12]}… != {entry['sha256'][:12]}…"
        )
    return data


# ======================================================================
# Public API
# ======================================================================
def save_context(context: "BuildContext", directory: str | Path) -> dict:
    """Persist every built artifact of ``context`` (plus its network).

    Writes into a ``.tmp`` sibling and renames atomically; an existing
    snapshot at ``directory`` is replaced only after the new one is fully
    on disk.  Returns ``{"path", "parts", "bytes", "seconds"}``.
    """
    from repro.obs import instruments as _inst
    from repro.obs.metrics import enabled as _obs_enabled

    directory = Path(directory)
    if directory.name in ("", ".", ".."):
        raise SnapshotError(f"bad snapshot directory {str(directory)!r}")
    started = time.perf_counter()
    items: list[tuple[tuple, object]] = [(("network",), context.network)]
    items.extend(context.artifact_items())
    items.sort(key=lambda kv: _key_json(kv[0]))

    staging = directory.with_name(directory.name + ".tmp")
    if staging.exists():
        shutil.rmtree(staging)
    (staging / PARTS_DIR).mkdir(parents=True)
    part_entries = []
    total = 0
    for index, (key, artifact) in enumerate(items):
        data = _encode_artifact(key, artifact)
        filename = f"{index:03d}-{_slug(key)}.bin"
        (staging / PARTS_DIR / filename).write_bytes(data)
        total += len(data)
        part_entries.append(
            {
                "file": filename,
                "kind": key[0],
                "key": list(key),
                "bytes": len(data),
                "sha256": _sha256(data),
            }
        )
    manifest = {
        "format": FORMAT,
        "version": VERSION,
        "network": context.network.name,
        "parts": part_entries,
    }
    (staging / MANIFEST_NAME).write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    if directory.exists():
        retired = directory.with_name(directory.name + ".old")
        if retired.exists():
            shutil.rmtree(retired)
        directory.rename(retired)
        staging.rename(directory)
        shutil.rmtree(retired)
    else:
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging.rename(directory)
    elapsed = time.perf_counter() - started
    if _obs_enabled():
        _inst.STORE_SAVES.inc()
        _inst.STORE_SAVE_BYTES.inc(total)
        _inst.STORE_SAVE_SECONDS.observe(elapsed)
    return {
        "path": str(directory),
        "parts": len(part_entries),
        "bytes": total,
        "seconds": elapsed,
    }


def load_context(directory: str | Path) -> "BuildContext":
    """Rebuild a :class:`BuildContext` from a saved snapshot.

    Every persisted artifact is verified (size + checksum), decoded and
    seeded into the fresh context's cache, so subsequent method builds
    are 100% cache hits — a warm start performs zero labeling (or any
    other artifact) constructions.
    """
    from repro.obs import instruments as _inst
    from repro.obs.metrics import enabled as _obs_enabled
    from repro.pipeline import BuildContext

    directory = Path(directory)
    started = time.perf_counter()
    manifest = _load_manifest(directory)
    by_kind: dict[str, list[tuple[tuple, dict]]] = {}
    total = 0
    for entry in manifest["parts"]:
        key = _key_from_json(entry["key"])
        if key[0] != entry["kind"]:
            raise SnapshotError(
                f"part {entry['file']}: kind {entry['kind']!r} disagrees "
                f"with key {key!r}"
            )
        if key[0] not in _KIND_ORDER:
            raise SnapshotError(f"unknown artifact kind {key[0]!r}")
        data = _read_part(directory, entry)
        total += len(data)
        by_kind.setdefault(key[0], []).append((key, decode_record(data)))

    network_parts = by_kind.get("network")
    if not network_parts:
        raise SnapshotError("snapshot has no network part")
    try:
        network = _decode_network(network_parts[0][1])
        context = BuildContext(network)
        condensed = None
        for key, fields in by_kind.get("condense", ()):
            condensed = _decode_condense(fields, network)
            context.seed_artifact(key, condensed)
        for key, fields in by_kind.get("labeling", ()):
            context.seed_artifact(key, _decode_labeling(fields))
        for key, fields in by_kind.get("columns", ()):
            columns = _decode_columns(fields)
            context.seed_artifact(key, columns)
            if condensed is not None:
                # The condensation lazily compiles its own columns; seed
                # them so direct CondensedNetwork.columns() calls reuse
                # the loaded artifact too.
                condensed._columns = columns
        for key, fields in by_kind.get("slabs", ()):
            context.seed_artifact(key, _decode_slabs(fields))
        for key, fields in by_kind.get("feed", ()):
            context.seed_artifact(key, _decode_feed(fields))
        for key, fields in by_kind.get("rtree", ()):
            context.seed_artifact(key, _decode_rtree(fields))
        for key, fields in by_kind.get("spa", ()):
            context.seed_artifact(key, _decode_spa(fields))
        reach_parts = by_kind.get("reach", ())
        if reach_parts:
            if condensed is None:
                raise SnapshotError(
                    "snapshot has reachability filters but no condensation"
                )
            for key, fields in reach_parts:
                context.seed_artifact(key, _decode_reach(fields, condensed.dag))
    except SnapshotError:
        raise
    except (ValueError, IndexError, TypeError, OverflowError) as exc:
        raise SnapshotError(f"corrupt snapshot artifact: {exc}") from None
    elapsed = time.perf_counter() - started
    if _obs_enabled():
        _inst.STORE_LOADS.inc()
        _inst.STORE_LOAD_BYTES.inc(total)
        _inst.STORE_LOAD_SECONDS.observe(elapsed)
    return context


def inspect_snapshot(directory: str | Path) -> dict:
    """Verify a snapshot without decoding artifacts.

    Reads the manifest (raising :class:`SnapshotError` when it is
    missing, malformed or version-gated) and checks every part's
    existence, size and checksum, reporting per-part status instead of
    failing on the first damaged part.
    """
    directory = Path(directory)
    manifest = _load_manifest(directory)
    parts = []
    total = 0
    ok = True
    for entry in manifest["parts"]:
        status = "ok"
        try:
            data = _read_part(directory, entry)
            decode_record(data)
            total += len(data)
        except SnapshotError as exc:
            status = f"error: {exc}"
            ok = False
        parts.append(
            {
                "file": entry.get("file"),
                "kind": entry.get("kind"),
                "key": entry.get("key"),
                "bytes": entry.get("bytes"),
                "sha256": entry.get("sha256"),
                "status": status,
            }
        )
    return {
        "path": str(directory),
        "format": manifest["format"],
        "version": manifest["version"],
        "network": manifest.get("network"),
        "parts": parts,
        "total_bytes": total,
        "ok": ok,
    }
