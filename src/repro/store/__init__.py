"""Persistent snapshot store for built RangeReach indexes.

Serializes every :class:`~repro.pipeline.BuildContext` artifact —
condensation, interval labelings, columnar coordinates, post-order
slabs, spatial feeds, bulk-loaded R-trees (as flattened node arrays),
GeoReach's SPA-graph and the BFL filters — into a versioned on-disk
format with per-part checksums and atomic write-then-rename, so a
process can warm-start serving without rebuilding anything.

Entry points: :func:`save_context`, :func:`load_context`,
:func:`inspect_snapshot`; every failure mode raises
:class:`SnapshotError`.
"""

from repro.store.errors import SnapshotError
from repro.store.snapshot import (
    FORMAT,
    MANIFEST_NAME,
    VERSION,
    inspect_snapshot,
    load_context,
    save_context,
)

__all__ = [
    "FORMAT",
    "MANIFEST_NAME",
    "VERSION",
    "SnapshotError",
    "inspect_snapshot",
    "load_context",
    "save_context",
]
