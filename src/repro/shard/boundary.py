"""The cross-shard boundary graph: source pruning for scatter-gather.

Shards own their intra-shard edges; every edge whose endpoints live in
different shards is kept *here*, at the planner.  Source pruning is then
a BFS over ``(shard, entry-vertex)`` states: from an entry vertex the
planner asks the owning shard which of its **exit sources** (the shard's
endpoints of outgoing cross edges) are intra-shard reachable, and each
reachable exit activates the cross edge's target as an entry vertex of
its shard.  A shard never activated contributes nothing to the query and
is skipped entirely.

The per-``(shard, entry)`` exit sets are memoized; any write touching a
shard bumps its version and lazily discards that shard's memo.  The
intra-shard reachability test itself is delegated to the caller (the
sharded database answers it with the shard's interval labels — one O(1)
probe per exit candidate on a clean snapshot).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

#: reaches(shard, u_global, v_global) -> bool, intra-shard.
ReachesFn = Callable[[int, int, int], bool]

#: reaches_many(shard, u_global, candidates) -> per-candidate flags.
ReachesManyFn = Callable[[int, int, Sequence[int]], Sequence[bool]]


class BoundaryGraph:
    """Cross-shard edges plus a versioned reach-to-exit memo."""

    def __init__(self) -> None:
        self._succ: dict[int, list[int]] = {}
        self._num_edges = 0
        # shard -> its vertices that source at least one cross edge.
        self._exit_sources: dict[int, set[int]] = {}
        # shard -> (version at memo build, {entry vertex -> exit set}).
        self._memo: dict[int, tuple[int, dict[int, frozenset[int]]]] = {}
        self._version: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, shard_u: int) -> None:
        """Record the cross edge ``u -> v`` (``u`` lives in ``shard_u``)."""
        self._succ.setdefault(u, []).append(v)
        self._num_edges += 1
        self._exit_sources.setdefault(shard_u, set()).add(u)
        self.bump(shard_u)

    def remove_edge(self, u: int, v: int, shard_u: int) -> None:
        """Drop the cross edge ``u -> v``; raises ``ValueError`` if absent."""
        targets = self._succ.get(u)
        if targets is None or v not in targets:
            raise ValueError(f"edge ({u}, {v}) not present")
        targets.remove(v)
        self._num_edges -= 1
        if not targets:
            del self._succ[u]
            sources = self._exit_sources.get(shard_u)
            if sources is not None:
                sources.discard(u)
                if not sources:
                    del self._exit_sources[shard_u]
        self.bump(shard_u)

    def bump(self, shard: int) -> None:
        """Invalidate the memo of one shard (any write to it)."""
        self._version[shard] = self._version.get(shard, 0) + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    def edges(self) -> Iterator[tuple[int, int]]:
        """Every cross edge as ``(source, target)`` global-id pairs."""
        for u in sorted(self._succ):
            for v in self._succ[u]:
                yield (u, v)

    def successors(self, u: int) -> tuple[int, ...]:
        return tuple(self._succ.get(u, ()))

    # ------------------------------------------------------------------
    # Source pruning
    # ------------------------------------------------------------------
    def frontier(
        self,
        start: int,
        shard_of: Callable[[int], int],
        reaches: ReachesFn,
        reaches_many: ReachesManyFn | None = None,
    ) -> dict[int, set[int]]:
        """All shards reachable from ``start``, with their entry vertices.

        Returns ``{shard: entry vertices}``; querying each listed shard
        from its entry vertices (and no other shard) is equivalent to
        querying the whole graph from ``start``.

        With ``reaches_many`` supplied, each memo miss resolves the
        shard's whole exit set through one batched call instead of one
        scalar probe per candidate — the scalar ``reaches`` is then only
        a fallback for callers without a batch path.
        """
        s0 = shard_of(start)
        sources: dict[int, set[int]] = {s0: {start}}
        queue: deque[tuple[int, int]] = deque([(s0, start)])
        while queue:
            shard, vertex = queue.popleft()
            for exit_vertex in self._exits(shard, vertex, reaches, reaches_many):
                for target in self._succ.get(exit_vertex, ()):
                    target_shard = shard_of(target)
                    bucket = sources.setdefault(target_shard, set())
                    if target not in bucket:
                        bucket.add(target)
                        queue.append((target_shard, target))
        return sources

    def _exits(
        self,
        shard: int,
        vertex: int,
        reaches: ReachesFn,
        reaches_many: ReachesManyFn | None = None,
    ) -> frozenset[int]:
        version = self._version.get(shard, 0)
        cached = self._memo.get(shard)
        if cached is None or cached[0] != version:
            cached = (version, {})
            self._memo[shard] = cached
        table = cached[1]
        exits = table.get(vertex)
        if exits is None:
            candidates = sorted(self._exit_sources.get(shard, ()))
            if reaches_many is not None:
                others = [c for c in candidates if c != vertex]
                flags = (
                    reaches_many(shard, vertex, others) if others else []
                )
                reached = {c for c, hit in zip(others, flags) if hit}
                exits = frozenset(
                    c for c in candidates if c == vertex or c in reached
                )
            else:
                exits = frozenset(
                    c
                    for c in candidates
                    if c == vertex or reaches(shard, vertex, c)
                )
            table[vertex] = exits
        return exits
