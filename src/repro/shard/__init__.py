"""Sharded scatter-gather serving (the ROADMAP's millions-of-users item).

The package partitions one geosocial network into ``N`` shards — spatial
grid tiles over SPACE, with whole condensation components assigned
atomically so no SCC is ever split — and serves ``RangeReach`` through a
scatter-gather planner:

* :mod:`repro.shard.partition` — the grid + component assignment;
* :mod:`repro.shard.boundary` — the cross-shard boundary graph that
  prunes shards unreachable from the query source;
* :mod:`repro.shard.database` — :class:`ShardedDatabase`, a drop-in
  :class:`~repro.core.RangeReachMethod` whose shards are each a full
  :class:`~repro.system.GeosocialDatabase` (own snapshot directory, own
  delta overlay, own rebuild blast radius).

See ``docs/SHARDING.md`` for the design.
"""

from repro.shard.boundary import BoundaryGraph
from repro.shard.database import LAYOUT_NAME, ShardedDatabase, has_layout
from repro.shard.partition import GridSpec, ShardAssignment, partition_network

__all__ = [
    "BoundaryGraph",
    "GridSpec",
    "LAYOUT_NAME",
    "ShardAssignment",
    "ShardedDatabase",
    "has_layout",
    "partition_network",
]
