"""Partitioning a geosocial network into spatial grid shards.

The partitioning rule follows the paper's spatial-pruning insight (and
GeoReach's grid): SPACE is cut into ``nx × ny`` tiles and each tile maps
to one shard, so a region query can discard shards whose venues lie
entirely outside ``R``.  Reachability pruning needs a second rule:
vertices of one strongly connected component are mutually reachable, so
a component must never straddle shards — the whole **condensation
component** is assigned atomically:

* a component with spatial members goes to the majority tile-shard of
  its member points (ties break toward the smallest shard id);
* a purely social component goes to the most common shard among its
  *successor* components — it exists to reach venues, so co-locating it
  with what it reaches turns cross-shard edges into intra-shard ones.
  Components are processed in reverse topological order (Tarjan's
  emission order), so every successor is assigned first.  A component
  with no successors falls back to ``component_id % shards``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.geometry import Rect
from repro.geosocial.network import GeosocialNetwork
from repro.graph.condensation import Condensation, condense


@dataclass(frozen=True, slots=True)
class GridSpec:
    """The tile grid over SPACE: ``nx × ny`` tiles, row-major order.

    ``bounds`` is the reference rectangle (typically the seed network's
    :meth:`~repro.geosocial.network.GeosocialNetwork.space`); points
    outside it clamp to the border tiles, so venues added later always
    route somewhere.
    """

    bounds: Rect
    nx: int
    ny: int

    @classmethod
    def for_shards(cls, bounds: Rect, shards: int) -> "GridSpec":
        """The most-square grid with at least ``shards`` tiles."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        nx = max(1, math.ceil(math.sqrt(shards)))
        ny = max(1, math.ceil(shards / nx))
        return cls(bounds=bounds, nx=nx, ny=ny)

    @property
    def num_tiles(self) -> int:
        return self.nx * self.ny

    def tile_of(self, x: float, y: float) -> int:
        """Row-major tile index of ``(x, y)``, clamped into the grid."""
        bounds = self.bounds
        width = bounds.xhi - bounds.xlo
        height = bounds.yhi - bounds.ylo
        fx = (x - bounds.xlo) / width if width > 0 else 0.0
        fy = (y - bounds.ylo) / height if height > 0 else 0.0
        ix = min(self.nx - 1, max(0, int(fx * self.nx)))
        iy = min(self.ny - 1, max(0, int(fy * self.ny)))
        return iy * self.nx + ix

    def shard_of_tile(self, tile: int, shards: int) -> int:
        """Tile → shard: round-robin keeps all N shards populated even
        when the grid has more tiles than shards."""
        return tile % shards

    def shard_of_point(self, x: float, y: float, shards: int) -> int:
        return self.shard_of_tile(self.tile_of(x, y), shards)


@dataclass(frozen=True, slots=True)
class ShardAssignment:
    """The result of :func:`partition_network`."""

    shards: int
    grid: GridSpec
    shard_of: list[int]  # original vertex id -> shard id
    condensation: Condensation

    def members_of(self, shard: int) -> list[int]:
        return [v for v, s in enumerate(self.shard_of) if s == shard]


def partition_network(
    network: GeosocialNetwork, shards: int
) -> ShardAssignment:
    """Assign every vertex of ``network`` to one of ``shards`` shards.

    Components are assigned atomically (see the module docstring); the
    returned assignment also carries the condensation so callers can
    reuse it for cross-shard edge classification.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if network.num_spatial == 0:
        raise ValueError("cannot partition a network with no venues")
    grid = GridSpec.for_shards(network.space(), shards)
    condensation = condense(network.graph)
    points = network.points
    dag = condensation.dag

    shard_of_component: list[int] = [-1] * condensation.num_components
    # Reverse topological order: every successor component is assigned
    # before the components that point at it.
    for cid in range(condensation.num_components):
        member_points = [
            points[v] for v in condensation.members[cid]
            if points[v] is not None
        ]
        if member_points:
            votes = Counter(
                grid.shard_of_point(p.x, p.y, shards) for p in member_points
            )
            # max count first, then smallest shard id.
            shard_of_component[cid] = min(
                votes, key=lambda s: (-votes[s], s)
            )
            continue
        succ_votes = Counter(
            shard_of_component[t]
            for t in dag.successors(cid)
            if shard_of_component[t] >= 0
        )
        if succ_votes:
            shard_of_component[cid] = min(
                succ_votes, key=lambda s: (-succ_votes[s], s)
            )
        else:
            shard_of_component[cid] = cid % shards

    shard_of = [
        shard_of_component[condensation.component_of[v]]
        for v in range(network.num_vertices)
    ]
    return ShardAssignment(
        shards=shards,
        grid=grid,
        shard_of=shard_of,
        condensation=condensation,
    )
