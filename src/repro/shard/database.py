"""`ShardedDatabase`: scatter-gather RangeReach over N shard databases.

Each shard is a full :class:`~repro.system.GeosocialDatabase` — its own
snapshot (optionally persisted under ``<snapshot_dir>/shard-NNN``), its
own delta overlay, its own rebuild — over the *intra-shard* subgraph in
shard-local dense vertex ids.  Cross-shard edges live in a
:class:`~repro.shard.boundary.BoundaryGraph` at the planner.

A query plans in two pruning steps before any shard is touched:

* **source pruning** — the boundary BFS finds the shards reachable from
  the query vertex, with the entry vertices to query them from;
* **region pruning** — shards whose venue MBR misses ``R`` are dropped
  (venue MBRs only ever grow, so the test is conservative in the safe
  direction and exact while venues are never deleted).

Surviving ``(shard, entry)`` pairs become per-shard sub-batches merged
with ``any()`` per original query; batches run through the shared
:class:`~repro.exec.ParallelExecutor` protocol, so chunk deadlines
(:class:`~repro.exec.BatchTimeoutError` → HTTP 504) and trace stitching
(``shard[i]`` spans inside ``exec.chunk[j]`` subtrees) come from the
same machinery the monolithic path uses.

Writes route to the owning shard: removing a snapshot edge invalidates
(and later re-persists) *only that shard's* snapshot — the whole point
of the refactor (see ``docs/SHARDING.md`` on blast radius).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core.base import RangeReachBase
from repro.exec import UNSET as _UNSET_TIMEOUT
from repro.geometry import Point, Rect, as_rect
from repro.geosocial.network import GeosocialNetwork
from repro.graph.digraph import DiGraph
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.shard.boundary import BoundaryGraph
from repro.shard.partition import GridSpec, partition_network
from repro.system.database import DEFAULT_REFRESH_THRESHOLD, GeosocialDatabase

LAYOUT_NAME = "layout.json"
_LAYOUT_FORMAT = "repro-shard-layout"
_LAYOUT_VERSION = 1

#: Grid bounds used when a sharded database starts empty (no network to
#: take SPACE from); out-of-bounds venues clamp to border tiles.
_DEFAULT_BOUNDS = Rect(0.0, 0.0, 1.0, 1.0)


def has_layout(directory: str | os.PathLike) -> bool:
    """True iff ``directory`` holds a sharded layout manifest."""
    return (Path(directory) / LAYOUT_NAME).is_file()


class _ScatterTarget:
    """Executor-facing adapter over the shards.

    The batch pairs are ``((shard, local_vertex), region)`` — the
    executor treats pairs opaquely (it only slices the list into
    chunks), so the tag rides along for free.  Each chunk groups its
    pairs by shard and runs one vectorized ``range_reach_many`` per
    shard, wrapped in a ``shard[i]`` span for trace stitching.
    """

    name = "shard-scatter"

    def __init__(self, owner: "ShardedDatabase") -> None:
        self._owner = owner

    @property
    def kernels(self) -> str:
        return self._owner.kernels

    def query(self, key: tuple[int, int], region: Rect) -> bool:
        shard, local = key
        return self._owner._shards[shard].range_reach(local, region)

    def query_batch(self, chunk) -> list[bool]:
        if not chunk:
            return []
        out: list[bool] = [False] * len(chunk)
        groups: dict[int, tuple[list[int], list[tuple[int, Rect]]]] = {}
        for i, ((shard, local), region) in enumerate(chunk):
            indexes, pairs = groups.setdefault(shard, ([], []))
            indexes.append(i)
            pairs.append((local, region))
        shards = self._owner._shards
        for shard in sorted(groups):
            indexes, pairs = groups[shard]
            with _span(f"shard[{shard}]"):
                answers = shards[shard].range_reach_many(pairs)
            for i, answer in zip(indexes, answers):
                out[i] = answer
        return out


class ShardedDatabase(RangeReachBase):
    """N shard databases behind one ``RangeReachMethod`` surface.

    Speaks the same query *and* write vocabulary as
    :class:`~repro.system.GeosocialDatabase` (global vertex ids
    everywhere), so :class:`~repro.serve.QueryService` serves either
    transparently.

    Args:
        shards: number of shards (>= 1).
        refresh_threshold: per-shard delta threshold, passed through to
            every shard database.
        snapshot_dir: base directory for persistence; each shard
            persists under ``shard-NNN/`` and the global layout manifest
            (vertex placement, cross edges, shard fingerprints) is
            written to ``layout.json`` by :meth:`refresh`.  A directory
            already holding a layout must be opened with :meth:`load`.
        bounds: grid bounds for an empty start (defaults to the unit
            square; :meth:`from_network` uses the network's SPACE).
        kernels: inner-loop backend (``"numpy"``/``"python"``) passed to
            every shard database; boundary-graph exit-set probes resolve
            through each shard's batched ``reaches_many`` so the knob
            reaches the planner too.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 4,
        refresh_threshold: int = DEFAULT_REFRESH_THRESHOLD,
        snapshot_dir: str | None = None,
        *,
        bounds: Rect | None = None,
        kernels: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if refresh_threshold < 0:
            raise ValueError("refresh_threshold must be non-negative")
        if snapshot_dir is not None and has_layout(snapshot_dir):
            raise ValueError(
                f"{snapshot_dir!r} already holds a shard layout; "
                "open it with ShardedDatabase.load()"
            )
        self._num_shards = shards
        self._refresh_threshold = refresh_threshold
        self._snapshot_dir = snapshot_dir
        self._kernels = kernels
        self._grid = GridSpec.for_shards(
            bounds if bounds is not None else _DEFAULT_BOUNDS, shards
        )
        # Global vertex tables.
        self._shard_of: list[int] = []
        self._local_of: list[int] = []
        self._global_of: list[list[int]] = [[] for _ in range(shards)]
        self._kinds: list[str] = []
        self._points: list[Point | None] = []
        self._edges: set[tuple[int, int]] = set()
        self._boundary = BoundaryGraph()
        self._mbr: list[Rect | None] = [None] * shards
        self._shards: list[GeosocialDatabase] = [
            self._fresh_shard(i) for i in range(shards)
        ]
        self._next_user_shard = 0
        # Planner counters surfaced by stats().
        self._plans = 0
        self._scatter_batches = 0
        self._scatter_subqueries = 0
        self._region_checks = 0
        self._region_pruned = 0
        self._source_pruned = 0
        self._boundary_probes = 0
        self._layout_saves = 0
        self._layout_warm_starts = 0
        self._ops_since_save = 0
        self._scatter = _ScatterTarget(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        network: GeosocialNetwork,
        *,
        shards: int = 4,
        refresh_threshold: int = DEFAULT_REFRESH_THRESHOLD,
        snapshot_dir: str | None = None,
        kernels: str | None = None,
    ) -> "ShardedDatabase":
        """Partition ``network`` into ``shards`` shards and serve it.

        With ``snapshot_dir`` set, the layout manifest is written
        immediately (shard snapshots follow lazily, on each shard's
        first build).  A directory that already holds a layout raises —
        use :meth:`load` for restarts.
        """
        database = cls(
            shards=shards,
            refresh_threshold=refresh_threshold,
            snapshot_dir=snapshot_dir,
            bounds=network.space() if network.num_spatial else None,
            kernels=kernels,
        )
        assignment = partition_network(network, shards)
        database._grid = assignment.grid
        database._adopt(network, assignment.shard_of)
        database._save_layout()
        return database

    @classmethod
    def load(
        cls,
        snapshot_dir: str,
        *,
        refresh_threshold: int = DEFAULT_REFRESH_THRESHOLD,
        kernels: str | None = None,
    ) -> "ShardedDatabase":
        """Warm-start a sharded database from a saved layout.

        ``layout.json`` is authoritative for the global state (vertex
        placement, kinds, points, every edge).  A shard whose persisted
        snapshot still matches the fingerprint recorded at the last
        layout save warm-starts from it (no labeling builds); any shard
        whose snapshot is missing, stale or ahead of the layout is
        reseeded cold from the layout instead — the maps must never
        disagree with the shard's local ids.
        """
        path = Path(snapshot_dir) / LAYOUT_NAME
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ValueError(
                f"no shard layout in {snapshot_dir!r}"
            ) from None
        except ValueError as exc:
            raise ValueError(f"corrupt shard layout {path}: {exc}") from None
        if (
            data.get("format") != _LAYOUT_FORMAT
            or data.get("version") != _LAYOUT_VERSION
        ):
            raise ValueError(
                f"unsupported shard layout {path}: "
                f"format={data.get('format')!r} version={data.get('version')!r}"
            )
        shards = int(data["shards"])
        grid = data["grid"]
        database = cls.__new__(cls)
        ShardedDatabase.__init__(
            database,
            shards=shards,
            refresh_threshold=refresh_threshold,
            snapshot_dir=None,
            bounds=Rect(*grid["bounds"]),
            kernels=kernels,
        )
        database._snapshot_dir = snapshot_dir
        database._grid = GridSpec(
            bounds=Rect(*grid["bounds"]), nx=int(grid["nx"]), ny=int(grid["ny"])
        )
        shard_of: list[int] = []
        points: list[Point | None] = []
        kinds: list[str] = []
        for shard, x, y in data["vertices"]:
            shard_of.append(int(shard))
            if x is None:
                points.append(None)
                kinds.append("user")
            else:
                points.append(Point(float(x), float(y)))
                kinds.append("venue")
        graph = DiGraph(len(shard_of))
        for u, v in data["edges"]:
            graph.add_edge(int(u), int(v))
        network = GeosocialNetwork(graph, points, kinds=kinds, name="layout")
        fingerprints = data.get("shard_fingerprints") or [None] * shards
        database._adopt(network, shard_of, fingerprints=fingerprints)
        database._next_user_shard = int(data.get("next_user_shard", 0))
        database._ops_since_save = 0
        return database

    def _adopt(
        self,
        network: GeosocialNetwork,
        shard_of: list[int],
        *,
        fingerprints: list[str | None] | None = None,
    ) -> None:
        """Install a partitioned network: maps, shard databases, MBRs."""
        n = network.num_vertices
        shards = self._num_shards
        self._shard_of = list(shard_of)
        self._points = list(network.points)
        if network.kinds is not None:
            self._kinds = list(network.kinds)
        else:
            self._kinds = [
                "venue" if p is not None else "user" for p in network.points
            ]
        self._local_of = [0] * n
        self._global_of = [[] for _ in range(shards)]
        for v in range(n):
            members = self._global_of[self._shard_of[v]]
            self._local_of[v] = len(members)
            members.append(v)
        self._edges = set(network.graph.edges())
        self._boundary = BoundaryGraph()
        local_edges: list[list[tuple[int, int]]] = [[] for _ in range(shards)]
        local_of = self._local_of
        for u, v in self._edges:
            su, sv = self._shard_of[u], self._shard_of[v]
            if su == sv:
                local_edges[su].append((local_of[u], local_of[v]))
            else:
                self._boundary.add_edge(u, v, su)
        self._mbr = [None] * shards
        for v, point in enumerate(self._points):
            if point is not None:
                self._expand_mbr(self._shard_of[v], point)
        self._shards = []
        for i in range(shards):
            members = self._global_of[i]
            local_net = GeosocialNetwork(
                DiGraph.from_edges(len(members), local_edges[i]),
                [self._points[g] for g in members],
                kinds=[self._kinds[g] for g in members],
                name=f"shard-{i}",
            )
            self._shards.append(
                self._seeded_shard(
                    i,
                    local_net,
                    fingerprint=(
                        fingerprints[i] if fingerprints is not None else None
                    ),
                )
            )

    def _shard_dir(self, index: int) -> str | None:
        if self._snapshot_dir is None:
            return None
        return os.path.join(self._snapshot_dir, f"shard-{index:03d}")

    def _fresh_shard(self, index: int) -> GeosocialDatabase:
        empty = GeosocialNetwork(
            DiGraph(0), [], kinds=[], name=f"shard-{index}"
        )
        return GeosocialDatabase.from_network(
            empty,
            refresh_threshold=self._refresh_threshold,
            snapshot_dir=self._shard_dir(index),
            prefer_snapshot=False,
            kernels=self._kernels,
        )

    def _seeded_shard(
        self,
        index: int,
        local_net: GeosocialNetwork,
        *,
        fingerprint: str | None,
    ) -> GeosocialDatabase:
        directory = self._shard_dir(index)
        if (
            fingerprint is not None
            and directory is not None
            and self._manifest_fingerprint(directory) == fingerprint
        ):
            # The persisted snapshot is byte-identical to what the layout
            # recorded: warm-start from it (it embeds the same network).
            self._layout_warm_starts += 1
            return GeosocialDatabase.from_network(
                local_net,
                refresh_threshold=self._refresh_threshold,
                snapshot_dir=directory,
                prefer_snapshot=True,
                kernels=self._kernels,
            )
        return GeosocialDatabase.from_network(
            local_net,
            refresh_threshold=self._refresh_threshold,
            snapshot_dir=directory,
            prefer_snapshot=False,
            kernels=self._kernels,
        )

    @staticmethod
    def _manifest_fingerprint(directory: str) -> str | None:
        from repro.store import MANIFEST_NAME

        manifest = Path(directory) / MANIFEST_NAME
        try:
            return hashlib.sha256(manifest.read_bytes()).hexdigest()
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------
    # Writes (routed to the owning shard)
    # ------------------------------------------------------------------
    def add_user(self, *, shard_hint: int | None = None) -> int:
        """Register a user; round-robin placement unless hinted."""
        if shard_hint is not None:
            shard = self._check_shard(shard_hint)
        else:
            shard = self._next_user_shard
            self._next_user_shard = (shard + 1) % self._num_shards
        local = self._shards[shard].add_user()
        return self._register_vertex(shard, local, "user", None)

    def add_venue(self, x: float, y: float) -> int:
        """Register a venue; placed by its grid tile."""
        shard = self._grid.shard_of_point(x, y, self._num_shards)
        local = self._shards[shard].add_venue(x, y)
        point = Point(x, y)
        self._expand_mbr(shard, point)
        return self._register_vertex(shard, local, "venue", point)

    def _register_vertex(
        self, shard: int, local: int, kind: str, point: Point | None
    ) -> int:
        global_id = len(self._kinds)
        self._shard_of.append(shard)
        self._local_of.append(local)
        self._global_of[shard].append(global_id)
        self._kinds.append(kind)
        self._points.append(point)
        self._note_write()
        return global_id

    def _expand_mbr(self, shard: int, point: Point) -> None:
        mbr = self._mbr[shard]
        self._mbr[shard] = (
            Rect(point.x, point.y, point.x, point.y)
            if mbr is None
            else mbr.expanded_to(point)
        )

    def add_follow(self, follower: int, followee: int) -> bool:
        """Record ``follower -> followee``; returns False if duplicate."""
        self._check_follow_edge(follower, followee)
        return self._add_edge(follower, followee)

    def add_checkin(self, user: int, venue: int) -> bool:
        """Record a check-in; repeat check-ins deduplicate."""
        self._check_checkin_edge(user, venue)
        return self._add_edge(user, venue)

    def remove_follow(self, follower: int, followee: int) -> None:
        """Remove a follow edge (raises if absent or not a follow edge)."""
        self._check_follow_edge(follower, followee)
        self._remove_edge(follower, followee)

    def remove_checkin(self, user: int, venue: int) -> None:
        """Remove a check-in edge (raises if absent or not a check-in)."""
        self._check_checkin_edge(user, venue)
        self._remove_edge(user, venue)

    def _add_edge(self, source: int, target: int) -> bool:
        if source == target or (source, target) in self._edges:
            return False
        su, st = self._shard_of[source], self._shard_of[target]
        if su == st:
            self._apply_local_edge(su, source, target, add=True)
            self._boundary.bump(su)
        else:
            self._boundary.add_edge(source, target, su)
        self._edges.add((source, target))
        self._note_write()
        return True

    def _remove_edge(self, source: int, target: int) -> None:
        if (source, target) not in self._edges:
            raise ValueError(f"edge ({source}, {target}) not present")
        su, st = self._shard_of[source], self._shard_of[target]
        if su == st:
            self._apply_local_edge(su, source, target, add=False)
            self._boundary.bump(su)
        else:
            self._boundary.remove_edge(source, target, su)
        self._edges.discard((source, target))
        self._note_write()

    def _apply_local_edge(
        self, shard: int, source: int, target: int, *, add: bool
    ) -> None:
        db = self._shards[shard]
        lu, lv = self._local_of[source], self._local_of[target]
        if self._kinds[target] == "venue":
            db.add_checkin(lu, lv) if add else db.remove_checkin(lu, lv)
        else:
            db.add_follow(lu, lv) if add else db.remove_follow(lu, lv)

    def _note_write(self) -> None:
        self._ops_since_save += 1
        if _obs_enabled():
            for i, db in enumerate(self._shards):
                _inst.SHARD_DELTA_OPS.labels(shard=str(i)).set(db.delta_size)

    # -- validation (global-id mirrors of the monolithic checks) --------
    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._kinds)):
            raise IndexError(f"vertex {v} out of range")

    def _check_shard(self, shard: int) -> int:
        if isinstance(shard, bool) or not isinstance(shard, int):
            raise ValueError(f"shard must be an integer, got {shard!r}")
        if not (0 <= shard < self._num_shards):
            raise ValueError(
                f"shard {shard} out of range (0..{self._num_shards - 1})"
            )
        return shard

    def _check_follow_edge(self, follower: int, followee: int) -> None:
        self._check_vertex(follower)
        self._check_vertex(followee)
        if self._kinds[followee] != "user" or self._kinds[follower] != "user":
            raise ValueError("follow edges connect users")

    def _check_checkin_edge(self, user: int, venue: int) -> None:
        self._check_vertex(user)
        self._check_vertex(venue)
        if self._kinds[user] != "user":
            raise ValueError(f"vertex {user} is not a user")
        if self._kinds[venue] != "venue":
            raise ValueError(f"vertex {venue} is not a venue")

    # ------------------------------------------------------------------
    # Scatter-gather planning
    # ------------------------------------------------------------------
    def _shard_reaches(self, shard: int, u: int, v: int) -> bool:
        self._count_boundary_probes(1)
        local_of = self._local_of
        return self._shards[shard].reaches(local_of[u], local_of[v])

    def _shard_reaches_many(
        self, shard: int, u: int, candidates
    ) -> list[bool]:
        """Batched exit-set probe: one shard call for all candidates."""
        self._count_boundary_probes(len(candidates))
        local_of = self._local_of
        return self._shards[shard].reaches_many(
            local_of[u], [local_of[c] for c in candidates]
        )

    def _count_boundary_probes(self, count: int) -> None:
        self._boundary_probes += count
        if count and _obs_enabled():
            _inst.SHARD_BOUNDARY_PROBES.inc(count)

    def _frontier(self, vertex: int) -> dict[int, set[int]]:
        return self._boundary.frontier(
            vertex,
            self._shard_of.__getitem__,
            self._shard_reaches,
            reaches_many=self._shard_reaches_many,
        )

    def _plan(
        self,
        vertex: int,
        region: Rect,
        frontier_cache: dict[int, dict[int, set[int]]],
        shard_hint: int | None = None,
    ) -> tuple[list[int], dict[int, set[int]]]:
        """One query's plan: the shards to touch, with entry vertices.

        Region pruning (venue-MBR ∩ R) and source pruning (boundary
        BFS) both run here, on the calling thread, so the scatter only
        ever ships sub-batches that can contribute to the answer.
        """
        frontier = frontier_cache.get(vertex)
        if frontier is None:
            frontier = frontier_cache[vertex] = self._frontier(vertex)
        shards = self._num_shards
        touched: list[int] = []
        region_pruned = 0
        source_pruned = 0
        for shard in range(shards):
            mbr = self._mbr[shard]
            if mbr is None or not mbr.intersects(region):
                region_pruned += 1
                continue
            if not frontier.get(shard):
                source_pruned += 1
                continue
            touched.append(shard)
        if shard_hint is not None and shard_hint in touched:
            touched.remove(shard_hint)
            touched.insert(0, shard_hint)
        self._plans += 1
        self._region_checks += shards
        self._region_pruned += region_pruned
        self._source_pruned += source_pruned
        if _obs_enabled():
            _inst.SHARD_PLANS.inc()
            _inst.SHARD_REGION_PRUNED.inc(region_pruned)
            _inst.SHARD_SOURCE_PRUNED.inc(source_pruned)
            _inst.SHARD_TOUCHED.inc(len(touched))
        return touched, frontier

    def _ensure_built(self, shards: set[int]) -> None:
        """Pre-build stale shard snapshots on the calling thread.

        The executor's workers must never race a rebuild; a shard that
        reaches the scatter stage is guaranteed a live engine here (a
        touched shard has venues by the MBR test, so the build cannot
        fail).
        """
        for shard in shards:
            db = self._shards[shard]
            if db.is_stale:
                db.refresh()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_reach(
        self, vertex: int, region: Rect, *, shard_hint: int | None = None
    ) -> bool:
        """Can ``vertex`` geosocially reach ``region``? (scatter-gather)

        ``shard_hint`` is advisory: a valid hinted shard is probed
        first, which pays off when the caller knows where the answer
        likely lives (it never changes the answer).
        """
        self._check_vertex(vertex)
        region = as_rect(region)
        with _span("shard.plan"):
            touched, frontier = self._plan(vertex, region, {}, shard_hint)
        local_of = self._local_of
        for shard in touched:
            pairs = [
                (local_of[g], region) for g in sorted(frontier[shard])
            ]
            self._count_scatter(shard, len(pairs))
            with _span(f"shard[{shard}]"):
                if any(self._shards[shard].range_reach_many(pairs)):
                    return True
        return False

    def query(self, vertex: int, region: Rect) -> bool:
        """Protocol alias of :meth:`range_reach` (the unified name)."""
        return self.range_reach(vertex, region)

    def range_reach_many(
        self,
        pairs,
        executor=None,
        *,
        timeout=_UNSET_TIMEOUT,
        shard_hint: int | None = None,
    ) -> list[bool]:
        """Answer many ``(vertex, region)`` queries via scatter-gather.

        Every query is planned (region + source pruning, one boundary
        frontier per distinct vertex), the surviving ``(shard, entry)``
        sub-queries are flattened into one tagged batch, and the batch
        runs through ``executor`` when given — inheriting its chunking,
        per-batch deadline (``timeout``) and trace stitching — or
        through the scatter target directly.  Answers merge back with
        ``any()`` over each query's slice.
        """
        pairs = [(vertex, as_rect(region)) for vertex, region in pairs]
        if not pairs:
            return []
        for vertex, _ in pairs:
            self._check_vertex(vertex)
        with _span("shard.batch"):
            self._scatter_batches += 1
            if _obs_enabled():
                _inst.SHARD_SCATTER_BATCHES.inc()
            frontier_cache: dict[int, dict[int, set[int]]] = {}
            local_of = self._local_of
            tagged: list[tuple[tuple[int, int], Rect]] = []
            plans: list[tuple[int, int]] = []
            per_shard: dict[int, int] = {}
            with _span("shard.plan"):
                for vertex, region in pairs:
                    touched, frontier = self._plan(
                        vertex, region, frontier_cache, shard_hint
                    )
                    start = len(tagged)
                    for shard in touched:
                        entries = sorted(frontier[shard])
                        per_shard[shard] = per_shard.get(shard, 0) + len(
                            entries
                        )
                        tagged.extend(
                            ((shard, local_of[g]), region) for g in entries
                        )
                    plans.append((start, len(tagged)))
            for shard, count in per_shard.items():
                self._count_scatter(shard, count)
            if not tagged:
                answers: list[bool] = []
            elif executor is not None:
                self._ensure_built(set(per_shard))
                answers = executor.run(self._scatter, tagged, timeout=timeout)
            else:
                answers = self._scatter.query_batch(tagged)
            return [any(answers[start:end]) for start, end in plans]

    def query_batch(self, pairs) -> list[bool]:
        """Protocol alias of :meth:`range_reach_many` (no executor)."""
        return self.range_reach_many(pairs)

    def _count_scatter(self, shard: int, count: int) -> None:
        self._scatter_subqueries += count
        if count and _obs_enabled():
            _inst.SHARD_SUBQUERIES.labels(shard=str(shard)).inc(count)

    # -- extended query family (global ids in, global ids out) ----------
    def _gathered_witnesses(self, vertex: int, region: Rect) -> set[int]:
        touched, frontier = self._plan(vertex, region, {})
        local_of = self._local_of
        out: set[int] = set()
        for shard in touched:
            db = self._shards[shard]
            members = self._global_of[shard]
            found: set[int] = set()
            for g in sorted(frontier[shard]):
                found.update(db.reachable_venues(local_of[g], region))
            out.update(members[local] for local in found)
        return out

    def count_reachable(self, vertex: int, region: Rect) -> int:
        self._check_vertex(vertex)
        return len(self._gathered_witnesses(vertex, as_rect(region)))

    def reachable_venues(self, vertex: int, region: Rect) -> list[int]:
        """All reachable venues inside ``region`` (sorted global ids)."""
        self._check_vertex(vertex)
        return sorted(self._gathered_witnesses(vertex, as_rect(region)))

    def reaches_at_least(self, vertex: int, region: Rect, k: int) -> bool:
        self._check_vertex(vertex)
        if k <= 0:
            return True
        region = as_rect(region)
        touched, frontier = self._plan(vertex, region, {})
        local_of = self._local_of
        found: set[int] = set()
        for shard in touched:
            db = self._shards[shard]
            members = self._global_of[shard]
            for g in sorted(frontier[shard]):
                for local in db.reachable_venues(local_of[g], region):
                    found.add(members[local])
                    if len(found) >= k:
                        return True
        return False

    def nearest_reachable(self, vertex: int, x: float, y: float):
        """Return ``(venue, distance)`` or None — min over shards."""
        self._check_vertex(vertex)
        frontier = self._frontier(vertex)
        local_of = self._local_of
        best: tuple[float, int] | None = None
        for shard, entries in frontier.items():
            if self._mbr[shard] is None:
                continue
            db = self._shards[shard]
            members = self._global_of[shard]
            for g in sorted(entries):
                hit = db.nearest_reachable(local_of[g], x, y)
                if hit is not None:
                    candidate = (hit[1], members[hit[0]])
                    if best is None or candidate < best:
                        best = candidate
        if best is None:
            return None
        return best[1], best[0]

    def reaches(self, u: int, v: int) -> bool:
        """Exact vertex-to-vertex reachability across shards."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return True
        frontier = self._frontier(u)
        entries = frontier.get(self._shard_of[v])
        if not entries:
            return False
        return any(
            self._shard_reaches(self._shard_of[v], g, v) for g in entries
        )

    def size_bytes(self) -> int:
        """Summed index footprint of the built shard snapshots."""
        return sum(db.size_bytes() for db in self._shards)

    # ------------------------------------------------------------------
    # Persistence (layout manifest + per-shard snapshots)
    # ------------------------------------------------------------------
    def _save_layout(self) -> None:
        if self._snapshot_dir is None:
            return
        directory = Path(self._snapshot_dir)
        directory.mkdir(parents=True, exist_ok=True)
        vertices = [
            [shard, point.x if point is not None else None,
             point.y if point is not None else None]
            for shard, point in zip(self._shard_of, self._points)
        ]
        payload = {
            "format": _LAYOUT_FORMAT,
            "version": _LAYOUT_VERSION,
            "shards": self._num_shards,
            "grid": {
                "bounds": list(self._grid.bounds.as_tuple()),
                "nx": self._grid.nx,
                "ny": self._grid.ny,
            },
            "vertices": vertices,
            "edges": sorted([u, v] for u, v in self._edges),
            "next_user_shard": self._next_user_shard,
            "shard_fingerprints": [
                self._manifest_fingerprint(self._shard_dir(i))
                for i in range(self._num_shards)
            ],
        }
        staged = directory / (LAYOUT_NAME + ".tmp")
        staged.write_text(json.dumps(payload), encoding="utf-8")
        staged.replace(directory / LAYOUT_NAME)
        self._ops_since_save = 0
        self._layout_saves += 1

    def refresh(self) -> None:
        """Rebuild every dirty shard and persist layout + snapshots.

        A shard is dirty when its snapshot is stale or carries a delta;
        venue-less shards (nothing to index) are skipped.  The layout
        manifest is saved afterwards so its shard fingerprints match the
        snapshots just written.
        """
        for db in self._shards:
            if db.num_venues == 0:
                continue
            if db.is_stale or db.delta_size > 0:
                db.refresh()
        self._save_layout()

    @property
    def is_stale(self) -> bool:
        """True iff some shard would rebuild on its next query."""
        return any(
            db.is_stale and db.num_venues > 0 for db in self._shards
        )

    @property
    def delta_size(self) -> int:
        """Write operations since the last layout save."""
        return self._ops_since_save

    @property
    def refresh_threshold(self) -> int:
        return self._refresh_threshold

    @property
    def snapshot_dir(self) -> str | None:
        return self._snapshot_dir

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def kernels(self) -> str:
        """Resolved inner-loop backend (uniform across every shard)."""
        return self._shards[0].kernels

    def shard_of(self, vertex: int) -> int:
        """The shard owning ``vertex`` (global id)."""
        self._check_vertex(vertex)
        return self._shard_of[vertex]

    def mbr_of(self, shard: int) -> Rect | None:
        """The venue MBR of one shard (None while it has no venues)."""
        return self._mbr[self._check_shard(shard)]

    @property
    def num_users(self) -> int:
        return sum(1 for k in self._kinds if k == "user")

    @property
    def num_venues(self) -> int:
        return sum(1 for k in self._kinds if k == "venue")

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_rebuilds(self) -> int:
        return sum(db.num_rebuilds for db in self._shards)

    def stats(self) -> dict:
        """Aggregated shard counters plus the scatter-gather planner's."""
        per_shard = [db.stats() for db in self._shards]
        aggregated = {
            key: sum(s[key] for s in per_shard)
            for key in (
                "rebuilds",
                "overlay_queries",
                "delta_size",
                "delta_edges",
                "removal_refreshes",
                "threshold_refreshes",
                "warm_starts",
                "snapshot_saves",
            )
        }
        aggregated["refresh_threshold"] = self._refresh_threshold
        aggregated["shards"] = self._num_shards
        aggregated["scatter"] = {
            "plans": self._plans,
            "batches": self._scatter_batches,
            "subqueries": self._scatter_subqueries,
            "region_checks": self._region_checks,
            "region_pruned": self._region_pruned,
            "source_pruned": self._source_pruned,
            "boundary_probes": self._boundary_probes,
            "cross_edges": self._boundary.num_edges,
            "layout_saves": self._layout_saves,
            "layout_warm_starts": self._layout_warm_starts,
        }
        aggregated["per_shard"] = per_shard
        return aggregated
