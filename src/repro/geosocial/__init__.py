"""Geosocial network model.

A geosocial network ``G = (V, E, P)`` is a directed graph whose vertices
may carry a point in the plane (Section 2.1 of the paper).  Reachability
labelings require a DAG, so arbitrary networks are *condensed*: every
strongly connected component becomes a super-vertex whose spatial
information is handled by one of the two strategies of Section 5
(replicating member points, or the MBR variant).
"""

from repro.geosocial.columnar import (
    PostOrderSlabs,
    SpatialColumns,
    build_post_slabs,
)
from repro.geosocial.network import GeosocialNetwork, NetworkStats
from repro.geosocial.scc_handling import CondensedNetwork, condense_network

__all__ = [
    "GeosocialNetwork",
    "NetworkStats",
    "CondensedNetwork",
    "condense_network",
    "SpatialColumns",
    "PostOrderSlabs",
    "build_post_slabs",
]
