"""Columnar (struct-of-arrays) spatial layout for condensed networks.

The hot query loops of every RangeReach method ultimately reduce to
"does any member point of these super-vertices fall inside the region?".
Walking lists of :class:`~repro.geometry.point.Point` objects pays one
attribute access per coordinate; this module compiles the same data into
flat ``array('d')`` coordinate columns so the loops become C-speed slice
iteration (via :meth:`repro.geometry.Rect.any_contained` /
:meth:`~repro.geometry.Rect.first_contained`):

* :class:`SpatialColumns` — one CSR layout over super-vertices: member
  points of super-vertex ``c`` occupy ``xs[offsets[c]:offsets[c+1]]``,
  with the original spatial vertex ids kept aligned in ``vertices``.
* :class:`PostOrderSlabs` — the same coordinates re-ordered by a
  labeling's post-order slots, so SocReach's descendant scan of a label
  ``[l, h]`` is a *single* contiguous slice instead of a per-slot loop.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.geometry import Point
    from repro.geosocial.scc_handling import CondensedNetwork
    from repro.labeling import IntervalLabeling


class SpatialColumns:
    """CSR struct-of-arrays view of a condensed network's member points.

    Attributes:
        xs, ys: flat coordinate columns, grouped by super-vertex.
        offsets: CSR offsets (length ``num_components + 1``); super-vertex
            ``c`` owns the half-open range ``offsets[c]:offsets[c+1]``.
        vertices: original spatial vertex ids aligned with ``xs``/``ys``.
    """

    __slots__ = ("xs", "ys", "offsets", "vertices")

    def __init__(
        self,
        xs: array,
        ys: array,
        offsets: array,
        vertices: array,
    ) -> None:
        self.xs = xs
        self.ys = ys
        self.offsets = offsets
        self.vertices = vertices

    @property
    def num_points(self) -> int:
        return len(self.xs)

    @property
    def num_components(self) -> int:
        return len(self.offsets) - 1

    def slice_of(self, component: int) -> tuple[int, int]:
        """Return the half-open ``(lo, hi)`` column range of a super-vertex."""
        return self.offsets[component], self.offsets[component + 1]


def compile_columns(
    points_of: Sequence[Sequence["Point"]],
    spatial_members: Sequence[Sequence[int]],
) -> SpatialColumns:
    """Compile per-component point lists into one CSR column set."""
    xs = array("d")
    ys = array("d")
    vertices = array("q")
    offsets = array("q", [0])
    for points, members in zip(points_of, spatial_members):
        for point in points:
            xs.append(point.x)
            ys.append(point.y)
        vertices.extend(members)
        offsets.append(len(xs))
    return SpatialColumns(xs, ys, offsets, vertices)


class PostOrderSlabs:
    """Coordinate slabs aligned with a labeling's post-order slots.

    Slot ``s`` (0-based; the vertex whose post number is ``(s + 1) *
    stride``) owns ``xs[offsets[s]:offsets[s+1]]``.  Because a label
    ``[l, h]`` covers a *contiguous* run of slots, its whole descendant
    scan is the single flat range ``offsets[first_slot] ..
    offsets[last_slot + 1]`` — non-spatial descendants contribute
    zero-width slabs and vanish from the loop entirely.
    """

    __slots__ = ("offsets", "xs", "ys")

    def __init__(self, offsets: array, xs: array, ys: array) -> None:
        self.offsets = offsets
        self.xs = xs
        self.ys = ys

    @property
    def num_slots(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_points(self) -> int:
        return len(self.xs)


def build_post_slabs(
    network: "CondensedNetwork", labeling: "IntervalLabeling"
) -> PostOrderSlabs:
    """Re-order a network's coordinate columns by post-order slot."""
    columns = network.columns()
    col_offsets = columns.offsets
    col_xs, col_ys = columns.xs, columns.ys
    xs = array("d")
    ys = array("d")
    offsets = array("q", [0])
    for component in labeling.vertex_at_post:
        lo, hi = col_offsets[component], col_offsets[component + 1]
        if hi > lo:
            xs.extend(col_xs[lo:hi])
            ys.extend(col_ys[lo:hi])
        offsets.append(len(xs))
    return PostOrderSlabs(offsets, xs, ys)
