"""The geosocial network container."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.geometry import Point, Rect
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    read_edge_list,
    read_point_table,
    write_edge_list,
    write_point_table,
)


@dataclass(frozen=True, slots=True)
class NetworkStats:
    """The per-dataset characteristics reported in the paper's Table 3."""

    name: str
    num_users: int
    num_venues: int
    num_checkin_edges: int
    num_vertices: int
    num_edges: int
    num_spatial: int
    num_sccs: int
    largest_scc: int


class GeosocialNetwork:
    """A directed graph whose vertices may carry a 2-D point.

    Vertices are dense integers; ``points[v]`` is the point of spatial
    vertex ``v`` or ``None``.  The optional ``kinds`` list tags vertices as
    ``"user"`` / ``"venue"`` for dataset statistics and the examples; it is
    not consulted by any query method.
    """

    __slots__ = ("graph", "points", "kinds", "name", "_space")

    def __init__(
        self,
        graph: DiGraph,
        points: list[Point | None],
        kinds: list[str] | None = None,
        name: str = "network",
    ) -> None:
        if len(points) != graph.num_vertices:
            raise ValueError(
                f"point table has {len(points)} entries for "
                f"{graph.num_vertices} vertices"
            )
        if kinds is not None and len(kinds) != graph.num_vertices:
            raise ValueError("kinds list length must match the vertex count")
        self.graph = graph
        self.points = points
        self.kinds = kinds
        self.name = name
        self._space: Rect | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def is_spatial(self, v: int) -> bool:
        """Return True iff vertex ``v`` carries a point."""
        return self.points[v] is not None

    def point_of(self, v: int) -> Point:
        """Return the point of a spatial vertex (raises if non-spatial)."""
        point = self.points[v]
        if point is None:
            raise ValueError(f"vertex {v} is not spatial")
        return point

    def spatial_vertices(self) -> list[int]:
        """Return all vertices that carry a point."""
        return [v for v, p in enumerate(self.points) if p is not None]

    @property
    def num_spatial(self) -> int:
        return sum(1 for p in self.points if p is not None)

    def space(self) -> Rect:
        """Return the MBR of all points — the SPACE of the paper.

        Query extents are expressed as a percentage of this rectangle.
        """
        if self._space is None:
            points = (p for p in self.points if p is not None)
            self._space = Rect.from_points(points)
        return self._space

    # ------------------------------------------------------------------
    # Statistics (Table 3)
    # ------------------------------------------------------------------
    def stats(self) -> NetworkStats:
        """Compute the Table 3 row for this network (runs SCC detection)."""
        condensation = condense(self.graph)
        if self.kinds is not None:
            num_users = sum(1 for k in self.kinds if k == "user")
            num_venues = sum(1 for k in self.kinds if k == "venue")
            kinds = self.kinds
            checkins = sum(
                1
                for _, target in self.graph.edges()
                if kinds[target] == "venue"
            )
        else:
            num_venues = self.num_spatial
            num_users = self.num_vertices - num_venues
            points = self.points
            checkins = sum(
                1
                for _, target in self.graph.edges()
                if points[target] is not None
            )
        return NetworkStats(
            name=self.name,
            num_users=num_users,
            num_venues=num_venues,
            num_checkin_edges=checkins,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            num_spatial=self.num_spatial,
            num_sccs=condensation.num_components,
            largest_scc=condensation.largest_component_size(),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Write the network as ``meta.txt`` + ``edges.txt`` + ``points.txt``.

        The meta file records the vertex count (isolated trailing vertices
        are invisible in the edge list) and the optional vertex kinds.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "meta.txt", "w", encoding="utf-8") as handle:
            handle.write(f"name {self.name}\n")
            handle.write(f"num_vertices {self.num_vertices}\n")
            if self.kinds is not None:
                num_users = sum(1 for k in self.kinds if k == "user")
                if self.kinds == ["user"] * num_users + ["venue"] * (
                    self.num_vertices - num_users
                ):
                    handle.write(f"num_users {num_users}\n")
        write_edge_list(self.graph, directory / "edges.txt", header=self.name)
        spatial = (
            (v, p) for v, p in enumerate(self.points) if p is not None
        )
        write_point_table(spatial, directory / "points.txt", header=self.name)

    @classmethod
    def load(cls, directory: str | Path, name: str | None = None) -> "GeosocialNetwork":
        """Read a network written by :meth:`save`."""
        directory = Path(directory)
        meta: dict[str, str] = {}
        meta_path = directory / "meta.txt"
        if meta_path.exists():
            with open(meta_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    key, _, value = line.strip().partition(" ")
                    if key:
                        meta[key] = value
        num_vertices = (
            int(meta["num_vertices"]) if "num_vertices" in meta else None
        )
        graph = read_edge_list(directory / "edges.txt", num_vertices)
        table = read_point_table(directory / "points.txt")
        max_spatial = max(table, default=-1)
        if max_spatial >= graph.num_vertices:
            raise ValueError(
                "point table references vertices beyond the edge list"
            )
        points: list[Point | None] = [None] * graph.num_vertices
        for v, p in table.items():
            points[v] = p
        kinds = None
        if "num_users" in meta:
            num_users = int(meta["num_users"])
            kinds = ["user"] * num_users + ["venue"] * (
                graph.num_vertices - num_users
            )
        return cls(
            graph, points, kinds=kinds,
            name=name or meta.get("name") or directory.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeosocialNetwork({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, |P|={self.num_spatial})"
        )
