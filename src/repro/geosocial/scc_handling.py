"""Condensing geosocial networks (Section 5 of the paper).

Graph-reachability labelings assume a DAG, so every strongly connected
component is collapsed into a super-vertex.  SCCs may contain spatial
vertices, and the paper discusses two ways to carry their spatial extent:

1. **replicate** — index every member point individually, mapping it back
   to its super-vertex (the super-vertex's reachability information is
   effectively replicated per point);
2. **mbr** — give the super-vertex a single MBR enclosing all member
   points.

:class:`CondensedNetwork` precomputes everything both strategies need;
the query methods select the strategy with their ``scc_mode`` argument.
"""

from __future__ import annotations

from typing import Iterator, Literal

from repro.geometry import Point, Rect
from repro.graph.condensation import Condensation, condense
from repro.graph.digraph import DiGraph
from repro.geosocial.columnar import SpatialColumns, compile_columns
from repro.geosocial.network import GeosocialNetwork

SccMode = Literal["replicate", "mbr"]

SCC_MODES: tuple[SccMode, ...] = ("replicate", "mbr")


class CondensedNetwork:
    """A geosocial network condensed to a DAG of super-vertices.

    Attributes:
        network: the original network.
        dag: the condensation (vertex = super-vertex, edges deduplicated).
        component_of: original vertex -> super-vertex id.
        members: super-vertex id -> original vertices.
    """

    __slots__ = (
        "network",
        "dag",
        "component_of",
        "members",
        "_points_of",
        "_spatial_members",
        "_mbr_of",
        "_spatial_components",
        "_columns",
    )

    def __init__(self, network: GeosocialNetwork, condensation: Condensation) -> None:
        self.network = network
        self.dag: DiGraph = condensation.dag
        self.component_of: list[int] = condensation.component_of
        self.members: list[list[int]] = condensation.members

        # Spatial info per super-vertex; points and the original spatial
        # vertices they came from are kept aligned.  Derived lazily — a
        # warm-started engine that serves from snapshot artifacts (which
        # include the compiled columns) never scans the points at all.
        self._points_of: list[list[Point]] | None = None
        self._spatial_members: list[list[int]] | None = None
        self._mbr_of: list[Rect | None] | None = None
        self._spatial_components: list[int] | None = None
        self._columns: SpatialColumns | None = None

    def _group_points(self) -> list[list[Point]]:
        points_of: list[list[Point]] = [[] for _ in range(self.dag.num_vertices)]
        spatial_members: list[list[int]] = [[] for _ in range(self.dag.num_vertices)]
        component_of = self.component_of
        for v, point in enumerate(self.network.points):
            if point is not None:
                component = component_of[v]
                points_of[component].append(point)
                spatial_members[component].append(v)
        self._points_of = points_of
        self._spatial_members = spatial_members
        return points_of

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return self.dag.num_vertices

    def super_of(self, v: int) -> int:
        """Map an original vertex to its super-vertex."""
        return self.component_of[v]

    def points_of(self, component: int) -> list[Point]:
        """Return the member points of a super-vertex (possibly empty)."""
        points_of = self._points_of
        if points_of is None:
            points_of = self._group_points()
        return points_of[component]

    def has_spatial(self, component: int) -> bool:
        points_of = self._points_of
        if points_of is None:
            points_of = self._group_points()
        return bool(points_of[component])

    def spatial_components(self) -> list[int]:
        """Return all super-vertices that contain at least one point."""
        if self._spatial_components is None:
            points_of = self._points_of
            if points_of is None:
                points_of = self._group_points()
            self._spatial_components = [
                c for c, pts in enumerate(points_of) if pts
            ]
        return self._spatial_components

    def columns(self) -> SpatialColumns:
        """Return the compiled struct-of-arrays view of the member points.

        Built once on first use; the CSR columns back the columnar inner
        loops of :meth:`component_hits_region` and the query methods.
        """
        if self._columns is None:
            if self._points_of is None:
                self._group_points()
            self._columns = compile_columns(
                self._points_of, self._spatial_members
            )
        return self._columns

    def mbr_of(self, component: int) -> Rect | None:
        """Return the MBR of the super-vertex's points (Section 5, option 2)."""
        if self._mbr_of is None:
            points_of = self._points_of
            if points_of is None:
                points_of = self._group_points()
            self._mbr_of = [
                Rect.from_points(pts) if pts else None
                for pts in points_of
            ]
        return self._mbr_of[component]

    # ------------------------------------------------------------------
    # Index feeds
    # ------------------------------------------------------------------
    def replicate_entries(self) -> Iterator[tuple[Point, int]]:
        """Yield ``(point, super-vertex)`` for every original spatial vertex.

        The *replicate* strategy: every member point is indexed on its own
        and inherits the super-vertex's reachability information.
        """
        points_of = self._points_of
        if points_of is None:
            points_of = self._group_points()
        for component, points in enumerate(points_of):
            for point in points:
                yield point, component

    def spatial_members(self, component: int) -> list[int]:
        """Original spatial vertices of a super-vertex, aligned with
        :meth:`points_of`."""
        if self._spatial_members is None:
            self._group_points()
        return self._spatial_members[component]

    def vertex_entries(self) -> Iterator[tuple[Point, int, int]]:
        """Yield ``(point, super-vertex, original vertex)`` triples.

        Like :meth:`replicate_entries` but keeps the original spatial
        vertex id, for queries that must report witnesses.
        """
        if self._spatial_members is None:
            self._group_points()
        for component, members in enumerate(self._spatial_members):
            points = self._points_of[component]
            for point, vertex in zip(points, members):
                yield point, component, vertex

    def mbr_entries(self) -> Iterator[tuple[Rect, int]]:
        """Yield ``(mbr, super-vertex)`` for every spatial super-vertex."""
        for component in self.spatial_components():
            mbr = self.mbr_of(component)
            assert mbr is not None
            yield mbr, component

    # ------------------------------------------------------------------
    # Spatial verification (shared by the MBR-variant methods)
    # ------------------------------------------------------------------
    def component_hits_region(self, component: int, region: Rect) -> bool:
        """Return True iff some member point of ``component`` is in ``region``.

        The containment short-circuit (region encloses the whole MBR) makes
        the common single-point case one rectangle test.
        """
        mbr = self.mbr_of(component)
        if mbr is None or not mbr.intersects(region):
            return False
        if region.contains_rect(mbr):
            return True
        columns = self.columns()
        lo, hi = columns.slice_of(component)
        return region.any_contained(columns.xs, columns.ys, lo, hi)


def condense_network(network: GeosocialNetwork) -> CondensedNetwork:
    """Condense a geosocial network into a DAG of super-vertices."""
    return CondensedNetwork(network, condense(network.graph))
