"""Command-line interface.

``python -m repro <command>``:

* ``generate`` — write a synthetic dataset replica to a directory;
* ``stats``    — print the Table-3 characteristics of a saved network;
  with ``--obs`` instead run a query batch and dump the metrics registry
  as JSON or Prometheus text;
* ``label``    — build the interval labeling of a saved network's
  condensation and write it to a file (offline index construction);
* ``query``    — answer one RangeReach query with a chosen method
  (``--vertex``/``--region``), or a whole batch from a file
  (``--batch FILE``, optionally ``--workers N`` / ``--timeout S``);
  ``--trace`` prints the per-query (or per-batch) span breakdown;
* ``serve``    — run the long-lived HTTP query service over a mutable
  :class:`~repro.system.GeosocialDatabase`, warm-starting from
  ``--snapshot-dir`` and/or seeding from a saved ``--network``;
  observability knobs: ``--access-log FILE`` (JSONL, one line per
  request with stage attribution), ``--slow-k N`` (flight-recorder
  slow-trace retention), ``--no-tracing``;
* ``slo``      — query a running server's ``/healthz`` and print the
  per-endpoint SLO burn rates (exit 0 healthy, 1 fast burn in
  progress, 2 unreachable/invalid).

Exit codes: 0 success, 2 usage/input error (one line on stderr, never a
traceback), 3 batch deadline expired.

The benchmark CLI lives separately under ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.core import METHOD_REGISTRY, build_method, build_methods
from repro.datasets import DATASET_PROFILES, make_network
from repro.exec import BatchTimeoutError, ParallelExecutor
from repro.geometry import Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.labeling import build_labeling, build_reversed_labeling, save_labeling
from repro.pipeline import BuildContext


def _cmd_generate(args: argparse.Namespace) -> int:
    network = make_network(args.profile, scale=args.scale, seed=args.seed)
    network.save(args.directory)
    stats = network.stats()
    print(
        f"wrote {args.directory}: |V|={stats.num_vertices} "
        f"|E|={stats.num_edges} |P|={stats.num_spatial}"
    )
    if args.verify:
        from repro.datasets import validate_network

        report = validate_network(network, args.profile)
        print(report.summary())
        if not report.ok:
            return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    network = GeosocialNetwork.load(args.directory)
    if args.obs:
        return _dump_obs(network, args)
    s = network.stats()
    print(f"dataset      {s.name}")
    print(f"#users       {s.num_users}")
    print(f"#venues      {s.num_venues}")
    print(f"#checkins    {s.num_checkin_edges}")
    print(f"|V|          {s.num_vertices}")
    print(f"|E|          {s.num_edges}")
    print(f"|P|          {s.num_spatial}")
    print(f"#SCCs        {s.num_sccs}")
    print(f"largest SCC  {s.largest_scc}")
    return 0


def _dump_obs(network: GeosocialNetwork, args: argparse.Namespace) -> int:
    """Run a query batch with metrics on, then print the registry."""
    from repro.workloads import QueryWorkload

    methods = args.obs_methods or sorted(METHOD_REGISTRY)
    for name in methods:
        if name not in METHOD_REGISTRY:
            known = ", ".join(sorted(METHOD_REGISTRY))
            print(f"error: unknown method {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
    queries = QueryWorkload(network, seed=args.seed).batch_by_extent(
        5.0, (1, 10**9), args.obs_queries
    )
    obs.REGISTRY.reset()
    with obs.observability(True):
        # One shared BuildContext: the dump also shows the pipeline's
        # cache hit/miss counters for the build phase.
        built = build_methods(methods, network)
        for method in built.values():
            for query in queries:
                method.query(query.vertex, query.region)
    if args.obs == "json":
        print(obs.render_json())
    else:
        print(obs.render_prometheus(), end="")
    return 0


def _cmd_label(args: argparse.Namespace) -> int:
    network = GeosocialNetwork.load(args.directory)
    condensed = condense_network(network)
    start = time.perf_counter()
    if args.reversed:
        labeling = build_reversed_labeling(condensed.dag)
    else:
        labeling = build_labeling(condensed.dag)
    elapsed = time.perf_counter() - start
    save_labeling(labeling, args.output)
    stats = labeling.stats()
    print(
        f"wrote {args.output}: {stats.num_vertices} vertices, "
        f"{stats.compressed_labels} labels "
        f"({stats.uncompressed_labels} before compression), "
        f"built in {elapsed:.2f}s"
    )
    return 0


def _parse_region(raw: str) -> Rect:
    parts = raw.split(",")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "region must be xlo,ylo,xhi,yhi (four comma-separated numbers)"
        )
    try:
        xlo, ylo, xhi, yhi = (float(p) for p in parts)
        return Rect(xlo, ylo, xhi, yhi)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _read_batch_file(path: str) -> list[tuple[int, Rect]]:
    """Parse a batch file: one ``vertex xlo,ylo,xhi,yhi`` per line.

    Blank lines and ``#`` comments are skipped.  Raises ``ValueError``
    with the offending line number on malformed input.
    """
    pairs: list[tuple[int, Rect]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'vertex xlo,ylo,xhi,yhi', "
                    f"got {line!r}"
                )
            try:
                vertex = int(parts[0])
                region = _parse_region(parts[1])
            except (ValueError, argparse.ArgumentTypeError) as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            pairs.append((vertex, region))
    return pairs


def _cmd_query(args: argparse.Namespace) -> int:
    single = args.vertex is not None or args.region is not None
    if args.batch is not None and single:
        print(
            "error: --batch is mutually exclusive with --vertex/--region",
            file=sys.stderr,
        )
        return 2
    if args.batch is None and (args.vertex is None or args.region is None):
        print(
            "error: provide --vertex and --region, or --batch FILE",
            file=sys.stderr,
        )
        return 2
    network = GeosocialNetwork.load(args.directory)
    if args.batch is not None:
        return _run_query_batch(args, network)
    if not (0 <= args.vertex < network.num_vertices):
        print(
            f"error: vertex {args.vertex} outside 0..{network.num_vertices - 1}",
            file=sys.stderr,
        )
        return 2
    condensed = condense_network(network)
    context = BuildContext(condensed, kernels=args.kernels)
    build_start = time.perf_counter()
    method = build_method(args.method, condensed, context=context)
    build_elapsed = time.perf_counter() - build_start
    query_trace = None
    query_start = time.perf_counter()
    with obs.measure() as work:
        if args.trace:
            with obs.trace("query") as query_trace:
                answer = method.query(args.vertex, args.region)
        else:
            answer = method.query(args.vertex, args.region)
    query_elapsed = time.perf_counter() - query_start
    print(f"RangeReach(G, {args.vertex}, {args.region.as_tuple()}) = {answer}")
    print(
        f"method={args.method} build={build_elapsed:.3f}s "
        f"query={query_elapsed * 1e6:.1f}us"
    )
    if work:
        detail = " ".join(f"{k}={v}" for k, v in sorted(work.items()))
        print(f"work: {detail}")
    if query_trace is not None:
        print(query_trace.format())
    return 0


def _run_query_batch(args: argparse.Namespace, network: GeosocialNetwork) -> int:
    try:
        pairs = _read_batch_file(args.batch)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for vertex, _ in pairs:
        if not (0 <= vertex < network.num_vertices):
            print(
                f"error: vertex {vertex} outside 0..{network.num_vertices - 1}",
                file=sys.stderr,
            )
            return 2
    condensed = condense_network(network)
    context = BuildContext(condensed, kernels=args.kernels)
    build_start = time.perf_counter()
    method = build_method(args.method, condensed, context=context)
    build_elapsed = time.perf_counter() - build_start
    executor = (
        ParallelExecutor(workers=args.workers, timeout=args.timeout)
        if args.workers > 1 or args.timeout is not None
        else None
    )
    batch_trace = None
    query_start = time.perf_counter()
    try:
        with obs.measure() as work:
            if args.trace:
                with obs.trace("query_batch") as batch_trace:
                    answers = (
                        executor.run(method, pairs)
                        if executor is not None
                        else method.query_batch(pairs)
                    )
            else:
                answers = (
                    executor.run(method, pairs)
                    if executor is not None
                    else method.query_batch(pairs)
                )
    except BatchTimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    finally:
        if executor is not None:
            executor.close()
    query_elapsed = time.perf_counter() - query_start
    for (vertex, region), answer in zip(pairs, answers):
        print(f"RangeReach(G, {vertex}, {region.as_tuple()}) = {answer}")
    rate = len(pairs) / query_elapsed if query_elapsed > 0 else float("inf")
    print(
        f"method={args.method} build={build_elapsed:.3f}s "
        f"batch={len(pairs)} workers={args.workers} "
        f"elapsed={query_elapsed:.3f}s ({rate:.0f} q/s)"
    )
    if work:
        detail = " ".join(f"{k}={v}" for k, v in sorted(work.items()))
        print(f"work: {detail}")
    if batch_trace is not None:
        print(batch_trace.format())
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    network = GeosocialNetwork.load(args.directory)
    methods = args.methods or sorted(METHOD_REGISTRY)
    for name in methods:
        if name not in METHOD_REGISTRY:
            known = ", ".join(sorted(METHOD_REGISTRY))
            print(f"error: unknown method {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
    context = BuildContext(network)
    build_start = time.perf_counter()
    build_methods(methods, context=context)
    build_elapsed = time.perf_counter() - build_start
    summary = context.save(args.snapshot)
    print(
        f"wrote {summary['path']}: {summary['parts']} parts, "
        f"{summary['bytes']} bytes (build={build_elapsed:.3f}s "
        f"save={summary['seconds']:.3f}s)"
    )
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    from repro.store import SnapshotError

    try:
        load_start = time.perf_counter()
        context = BuildContext.load(args.snapshot)
        load_elapsed = time.perf_counter() - load_start
        methods = args.methods or sorted(METHOD_REGISTRY)
        built = build_methods(methods, context=context)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = context.stats()
    print(
        f"loaded {args.snapshot}: network={context.network.name} "
        f"|V|={context.network.num_vertices} "
        f"artifacts={stats['artifacts']} (load={load_elapsed:.3f}s)"
    )
    print(
        f"built {len(built)} methods warm: "
        f"hits={sum(stats['hits'].values())} "
        f"misses={sum(stats['misses'].values())} "
        f"labeling_builds={len(context.labeling_builds())}"
    )
    return 0


def _cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    from repro.store import SnapshotError, inspect_snapshot

    try:
        report = inspect_snapshot(args.snapshot)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{report['path']}: format={report['format']} "
        f"v{report['version']} network={report['network']} "
        f"parts={len(report['parts'])} bytes={report['total_bytes']}"
    )
    for part in report["parts"]:
        key = ",".join(str(k) for k in part["key"])
        print(
            f"  {part['file']:<28} {part['kind']:<9} {part['bytes']:>8}B "
            f"[{key}] {part['status']}"
        )
    if not report["ok"]:
        print("error: snapshot failed verification", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import FlightRecorder
    from repro.serve import QueryService, run_server
    from repro.shard import ShardedDatabase, has_layout
    from repro.system import GeosocialDatabase

    if args.network is None and args.snapshot_dir is None:
        print(
            "error: provide --network DIR and/or --snapshot-dir DIR",
            file=sys.stderr,
        )
        return 2
    if args.shards < 0:
        print("error: --shards must be >= 0", file=sys.stderr)
        return 2
    if args.snapshot_dir is not None and has_layout(args.snapshot_dir):
        # A directory with a shard layout restarts sharded; the layout
        # is authoritative, an explicit conflicting --shards is an error
        # (re-sharding means a fresh directory).
        database = ShardedDatabase.load(
            args.snapshot_dir,
            refresh_threshold=args.refresh_threshold,
            kernels=args.kernels,
        )
        if args.shards and args.shards != database.num_shards:
            print(
                f"error: {args.snapshot_dir!r} holds a "
                f"{database.num_shards}-shard layout but --shards "
                f"{args.shards} was given; re-shard into a fresh "
                "directory instead",
                file=sys.stderr,
            )
            return 2
    elif args.shards:
        if args.network is None:
            print(
                f"error: {args.snapshot_dir!r} holds no shard layout "
                "and no --network was given",
                file=sys.stderr,
            )
            return 2
        network = GeosocialNetwork.load(args.network)
        database = ShardedDatabase.from_network(
            network,
            shards=args.shards,
            refresh_threshold=args.refresh_threshold,
            snapshot_dir=args.snapshot_dir,
            kernels=args.kernels,
        )
    elif args.network is not None:
        network = GeosocialNetwork.load(args.network)
        database = GeosocialDatabase.from_network(
            network,
            refresh_threshold=args.refresh_threshold,
            snapshot_dir=args.snapshot_dir,
            kernels=args.kernels,
        )
    else:
        # Snapshot-only start: a missing snapshot is a hard error (there
        # would be nothing to serve), a corrupt one raises SnapshotError.
        database = GeosocialDatabase(
            refresh_threshold=args.refresh_threshold,
            snapshot_dir=args.snapshot_dir,
            kernels=args.kernels,
        )
        if database.is_stale:
            print(
                f"error: {args.snapshot_dir!r} holds no snapshot and no "
                "--network was given",
                file=sys.stderr,
            )
            return 2
    executor = (
        ParallelExecutor(workers=args.workers) if args.workers > 1 else None
    )
    recorder = FlightRecorder(
        slow_k=args.slow_k, access_log=args.access_log
    )
    service = QueryService(
        database,
        executor=executor,
        max_inflight=args.max_inflight,
        default_timeout=args.timeout,
        recorder=recorder,
        tracing=not args.no_tracing,
    )
    try:
        service.warm_up()
    except ValueError:
        pass  # no venues yet: the first effective query builds the index
    return run_server(
        service, args.host, args.port, verbose=args.verbose
    )


def _cmd_slo(args: argparse.Namespace) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/healthz"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            payload = _json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: {url}: {exc}", file=sys.stderr)
        return 2
    slo = payload.get("slo")
    if not isinstance(slo, dict) or "endpoints" not in slo:
        print(
            f"error: {url} carries no SLO block (server started with "
            "slo=False?)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(_json.dumps(slo, indent=2, sort_keys=True))
    else:
        windows = [w["name"] for w in slo["windows"]]
        print(
            f"SLO status from {url} "
            f"(fast-burn factor {slo['fast_burn_factor']:g})"
        )
        for endpoint in sorted(slo["endpoints"]):
            report = slo["endpoints"][endpoint]
            flag = "FAST BURN" if report["fast_burn"] else "ok"
            print(
                f"{endpoint}: {flag}  "
                f"({report['requests']} requests in longest window)"
            )
            for sli in ("latency", "availability"):
                burns = report[sli]["burn_rates"]
                rates = " ".join(
                    f"{name}={burns.get(name, 0.0):.2f}" for name in windows
                )
                print(
                    f"  {sli:<12} burn {rates}  "
                    f"budget {report[sli]['budget_remaining']:.1%}"
                )
    any_fast = any(
        report["fast_burn"] for report in slo["endpoints"].values()
    )
    return 1 if any_fast else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Geosocial reachability (RangeReach) toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("profile", choices=sorted(DATASET_PROFILES))
    gen.add_argument("directory")
    gen.add_argument("--scale", type=float, default=0.002)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument(
        "--verify", action="store_true",
        help="check the generated network against the profile's "
        "structural invariants",
    )
    gen.set_defaults(func=_cmd_generate)

    stats = sub.add_parser(
        "stats",
        help="print a saved network's statistics; --obs dumps the "
        "metrics registry after a query batch",
    )
    stats.add_argument("directory")
    stats.add_argument(
        "--obs", choices=("json", "prom"), default=None,
        help="run --obs-queries RangeReach queries per method with "
        "metrics on, then print the registry in this format",
    )
    stats.add_argument(
        "--obs-queries", type=int, default=20,
        help="size of the query batch behind --obs (default: 20)",
    )
    stats.add_argument(
        "--obs-methods", nargs="*", metavar="METHOD",
        help="methods to exercise (default: every registered method)",
    )
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    label = sub.add_parser("label", help="build and save the interval labeling")
    label.add_argument("directory")
    label.add_argument("output")
    label.add_argument(
        "--reversed", action="store_true",
        help="build the reversed labeling (3DReach-Rev's scheme)",
    )
    label.set_defaults(func=_cmd_label)

    query = sub.add_parser(
        "query", help="answer one RangeReach query, or a batch from a file"
    )
    query.add_argument("directory")
    query.add_argument("--vertex", type=int, default=None)
    query.add_argument(
        "--region", type=_parse_region, default=None,
        help="xlo,ylo,xhi,yhi",
    )
    query.add_argument(
        "--batch", metavar="FILE", default=None,
        help="answer every query in FILE (one 'vertex xlo,ylo,xhi,yhi' "
        "per line; blank lines and # comments skipped)",
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool size for --batch (default: 1 = sequential)",
    )
    query.add_argument(
        "--timeout", type=float, default=None,
        help="per-batch deadline in seconds for --batch",
    )
    query.add_argument(
        "--method", default="3dreach", choices=sorted(METHOD_REGISTRY),
    )
    query.add_argument(
        "--trace", action="store_true",
        help="print the per-query span breakdown (timings and counter "
        "deltas)",
    )
    query.add_argument(
        "--kernels", choices=("numpy", "python"), default=None,
        help="inner-loop backend (default: REPRO_KERNELS env, else numpy "
        "when importable)",
    )
    query.set_defaults(func=_cmd_query)

    snap = sub.add_parser(
        "snapshot",
        help="persist built indexes to disk and warm-start from them",
    )
    snap_sub = snap.add_subparsers(dest="snapshot_command", required=True)

    snap_save = snap_sub.add_parser(
        "save", help="build methods over a saved network and persist "
        "every artifact as a snapshot"
    )
    snap_save.add_argument("directory", help="saved network directory")
    snap_save.add_argument("snapshot", help="snapshot output directory")
    snap_save.add_argument(
        "--methods", nargs="*", metavar="METHOD",
        help="methods to build before saving (default: every registered "
        "method)",
    )
    snap_save.set_defaults(func=_cmd_snapshot_save)

    snap_load = snap_sub.add_parser(
        "load", help="load a snapshot and rebuild methods warm "
        "(verifies the zero-constructions property)"
    )
    snap_load.add_argument("snapshot", help="snapshot directory")
    snap_load.add_argument(
        "--methods", nargs="*", metavar="METHOD",
        help="methods to build from the loaded artifacts",
    )
    snap_load.set_defaults(func=_cmd_snapshot_load)

    snap_inspect = snap_sub.add_parser(
        "inspect", help="verify a snapshot's manifest and per-part "
        "checksums without loading it"
    )
    snap_inspect.add_argument("snapshot", help="snapshot directory")
    snap_inspect.set_defaults(func=_cmd_snapshot_inspect)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP query service (see docs/API.md, 'repro.serve')",
    )
    serve.add_argument(
        "--network", metavar="DIR", default=None,
        help="saved network to seed the database from (ignored when "
        "--snapshot-dir already holds a snapshot)",
    )
    serve.add_argument(
        "--snapshot-dir", metavar="DIR", default=None,
        help="persistent snapshot store: warm-start from it if present, "
        "persist to it on rebuilds and at graceful shutdown",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="partition the network into N shards and serve them "
        "scatter-gather (0 = monolithic; a --snapshot-dir holding a "
        "shard layout always restarts sharded)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port; 0 binds an ephemeral port (default: 8642)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool size for /batch requests (default: 1 = "
        "sequential)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-batch deadline in seconds (a request's own "
        "'timeout' field overrides it)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission-control bound; requests beyond it get 429 "
        "(default: 64)",
    )
    serve.add_argument(
        "--refresh-threshold", type=int, default=64,
        help="delta operations a snapshot may accumulate before rebuild "
        "(default: 64)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    serve.add_argument(
        "--access-log", metavar="FILE", default=None,
        help="append one JSONL line per request (trace id, status, "
        "per-stage seconds) to FILE",
    )
    serve.add_argument(
        "--slow-k", type=int, default=32,
        help="slowest traces the flight recorder retains for "
        "/debug/slow (default: 32)",
    )
    serve.add_argument(
        "--no-tracing", action="store_true",
        help="disable per-request tracing (requests still get ids and "
        "metrics; /debug/* stays empty)",
    )
    serve.add_argument(
        "--kernels", choices=("numpy", "python"), default=None,
        help="inner-loop backend for the served database (default: "
        "REPRO_KERNELS env, else numpy when importable)",
    )
    serve.set_defaults(func=_cmd_serve)

    slo = sub.add_parser(
        "slo",
        help="print a running server's SLO burn rates from /healthz "
        "(exit 1 when any endpoint is fast-burning)",
    )
    slo.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="server base URL (default: http://127.0.0.1:8642)",
    )
    slo.add_argument(
        "--timeout", type=float, default=5.0,
        help="HTTP timeout in seconds (default: 5)",
    )
    slo.add_argument(
        "--json", action="store_true",
        help="print the raw SLO block as JSON instead of the summary",
    )
    slo.set_defaults(func=_cmd_slo)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.store import SnapshotError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SnapshotError, OSError) as exc:
        # Input errors (missing network directory, corrupt snapshot
        # store, unbindable address) are one-line diagnostics, not
        # tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
