"""The interval labeling query API."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.labeling.intervals import (
    Interval,
    intervals_cover,
    intervals_covered_count,
)


@dataclass(frozen=True, slots=True)
class LabelingStats:
    """Label-count statistics, reproducing the paper's Table 6 columns."""

    num_vertices: int
    uncompressed_labels: int
    compressed_labels: int

    @property
    def compression_ratio(self) -> float:
        """Fraction of labels removed by compression (0 = no benefit)."""
        if self.uncompressed_labels == 0:
            return 0.0
        return 1.0 - self.compressed_labels / self.uncompressed_labels


class IntervalLabeling:
    """An interval-based reachability labeling of a DAG.

    Stores, for every vertex ``v``:

    * ``post(v)`` — its 1-based global post-order number in the spanning
      forest of Algorithm 1;
    * ``L(v)`` — its compressed label set, a sorted tuple of disjoint
      integer intervals over post-order numbers.

    ``u`` is reachable from ``v`` iff some label of ``v`` covers
    ``post(u)`` (Lemma 3.1).
    """

    __slots__ = (
        "post",
        "vertex_at_post",
        "labels",
        "parent",
        "roots",
        "stride",
        "_uncompressed",
    )

    def __init__(
        self,
        post: list[int],
        labels: list[tuple[Interval, ...]],
        parent: list[int],
        roots: list[int],
        uncompressed_labels: int,
        stride: int = 1,
    ) -> None:
        if len(post) != len(labels) or len(post) != len(parent):
            raise ValueError("post/labels/parent arrays disagree in length")
        if stride < 1:
            raise ValueError("stride must be positive")
        self.post = post
        self.labels = labels
        self.parent = parent
        self.roots = roots
        self.stride = stride
        self._uncompressed = uncompressed_labels
        # Invert the post-order numbering once: with stride s, vertex i in
        # post order carries number i*s, so vertex_at_post[p // s - 1] is
        # the vertex numbered p.  SocReach's descendant enumeration is a
        # slice walk over this array.  The stride > 1 case leaves *gaps*
        # between consecutive numbers — the update head-room Section 4.1
        # mentions ("gaps in the post-order numbers ... to accommodate
        # updates"): a vertex inserted at an unused number is provably not
        # covered by any existing label (compression never merges across a
        # gap because the endpoints differ by more than one).
        self.vertex_at_post = [0] * len(post)
        vertex_at_post = self.vertex_at_post
        if stride == 1:
            # Fast path: every integer is a multiple of 1, so the check
            # inside the loop would be dead weight on the (default)
            # stride-1 labelings rebuilt from snapshots.
            for v, p in enumerate(post):
                vertex_at_post[p - 1] = v
        else:
            for v, p in enumerate(post):
                if p % stride != 0:
                    raise ValueError(
                        f"post number {p} is not a multiple of stride {stride}"
                    )
                vertex_at_post[p // stride - 1] = v

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.post)

    def post_of(self, v: int) -> int:
        """Return the post-order number of ``v``."""
        return self.post[v]

    def labels_of(self, v: int) -> tuple[Interval, ...]:
        """Return the compressed label set ``L(v)``."""
        return self.labels[v]

    def covers_post(self, v: int, post_number: int) -> bool:
        """Return True iff some label of ``v`` covers ``post_number``."""
        return intervals_cover(self.labels[v], post_number)

    def greach(self, v: int, u: int) -> bool:
        """Graph reachability test: can ``v`` reach ``u``? (Lemma 3.1)."""
        return intervals_cover(self.labels[v], self.post[u])

    def descendants(self, v: int) -> Iterator[int]:
        """Yield all vertices reachable from ``v``, including ``v`` itself.

        Implements the ``D(v)`` computation of SocReach (Section 4.1): each
        label ``[l, h]`` is a relational range query over post-order
        numbers, answered here by slicing the post-to-vertex array (gap
        numbers, when ``stride > 1``, map to no vertex and are skipped by
        the index arithmetic).
        """
        vertex_at_post = self.vertex_at_post
        stride = self.stride
        for lo, hi in self.labels[v]:
            start = (lo + stride - 1) // stride  # first assigned slot >= lo
            end = hi // stride                   # last assigned slot <= hi
            yield from vertex_at_post[start - 1 : end]

    def num_descendants(self, v: int) -> int:
        """Return ``|D(v)|`` without materializing the set."""
        if self.stride == 1:
            return intervals_covered_count(self.labels[v])
        stride = self.stride
        total = 0
        for lo, hi in self.labels[v]:
            start = (lo + stride - 1) // stride
            end = hi // stride
            if end >= start:
                total += end - start + 1
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> LabelingStats:
        """Return the Table 6 label counts for this scheme."""
        return LabelingStats(
            num_vertices=self.num_vertices,
            uncompressed_labels=self._uncompressed,
            compressed_labels=sum(len(ls) for ls in self.labels),
        )

    def size_bytes(self) -> int:
        """Analytic index size mirroring a C++ layout (Table 4 accounting).

        Each label is two 4-byte integers; each vertex additionally stores
        its post-order number (4 bytes) and a pointer/offset into the label
        array (8 bytes).
        """
        per_vertex = 4 + 8
        per_label = 8
        total_labels = sum(len(ls) for ls in self.labels)
        return self.num_vertices * per_vertex + total_labels * per_label

    def validate(self, descendant_sets: Sequence[set[int]]) -> None:
        """Check the labeling against ground-truth descendant sets.

        Used by tests: ``descendant_sets[v]`` must be the true set of
        vertices reachable from ``v`` (including ``v``).
        """
        for v in range(self.num_vertices):
            got = set(self.descendants(v))
            if got != descendant_sets[v]:
                missing = descendant_sets[v] - got
                extra = got - descendant_sets[v]
                raise AssertionError(
                    f"label set of vertex {v} wrong: missing={missing}, "
                    f"extra={extra}"
                )
