"""Persistence for interval labelings.

Offline index construction is the whole point of labeling schemes, so a
production deployment builds once and reloads on start.  The format is a
plain-text, line-oriented dump: stable across platforms, diff-able, and
fast enough for the sizes this library targets.

Layout::

    # repro interval labeling v1
    n <num_vertices> uncompressed <count>
    roots <r0> <r1> ...
    v <post> <parent> <k> <lo1> <hi1> ... <lok> <hik>      (one per vertex)
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import Mapping, Sequence

from repro.labeling.labeling import IntervalLabeling

_MAGIC = "# repro interval labeling v1"


def labeling_state(labeling: IntervalLabeling) -> dict:
    """Reduce a labeling to flat typed arrays (the binary-store form).

    The inverse of :func:`labeling_from_state`; label intervals are
    emitted per vertex in their stored (sorted) order, so the round trip
    is exact and deterministic.
    """
    counts = array("q", (len(ls) for ls in labeling.labels))
    lo = array("q")
    hi = array("q")
    for vertex_labels in labeling.labels:
        for low, high in vertex_labels:
            lo.append(low)
            hi.append(high)
    return {
        "post": array("q", labeling.post),
        "parent": array("q", labeling.parent),
        "roots": array("q", labeling.roots),
        "stride": labeling.stride,
        "uncompressed": labeling.stats().uncompressed_labels,
        "label_counts": counts,
        "label_lo": lo,
        "label_hi": hi,
        # The inverse post-order permutation is derived state, persisted
        # so a reload can assign it instead of re-inverting vertex by
        # vertex (it dominates __init__ time on snapshot-sized graphs).
        "vertex_at_post": array("q", labeling.vertex_at_post),
    }


def labeling_from_state(state: Mapping[str, object]) -> IntervalLabeling:
    """Rebuild a labeling from :func:`labeling_state` arrays.

    Raises:
        ValueError: when the arrays are inconsistent (count/offset
            mismatches, bad stride multiples — the checks
            :class:`IntervalLabeling` itself enforces included).
    """
    post: Sequence[int] = state["post"]
    parent: Sequence[int] = state["parent"]
    counts: Sequence[int] = state["label_counts"]
    lo: Sequence[int] = state["label_lo"]
    hi: Sequence[int] = state["label_hi"]
    if len(counts) != len(post):
        raise ValueError("label counts disagree with the vertex count")
    if len(lo) != len(hi) or len(lo) != sum(counts):
        raise ValueError("label endpoint arrays disagree with the counts")
    pairs = list(zip(lo, hi))
    labels: list[tuple[tuple[int, int], ...]] = []
    cursor = 0
    for count in counts:
        labels.append(tuple(pairs[cursor : cursor + count]))
        cursor += count
    vertex_at_post = state.get("vertex_at_post")
    if vertex_at_post is None:
        # States written before the column existed: let __init__ invert
        # the post-order numbering (and re-check stride multiples).
        return IntervalLabeling(
            post=list(post),
            labels=labels,
            parent=list(parent),
            roots=list(state["roots"]),
            uncompressed_labels=int(state["uncompressed"]),
            stride=int(state["stride"]),
        )
    if len(vertex_at_post) != len(post):
        raise ValueError(
            "vertex_at_post column disagrees with the vertex count"
        )
    stride = int(state["stride"])
    if stride < 1:
        raise ValueError("stride must be positive")
    if len(parent) != len(post):
        raise ValueError("post/labels/parent arrays disagree in length")
    # Assign the persisted inverse permutation instead of re-deriving it;
    # the state arrays come out of a checksummed snapshot part, so the
    # per-element stride checks of __init__ are already known to hold.
    labeling = IntervalLabeling.__new__(IntervalLabeling)
    labeling.post = list(post)
    labeling.labels = labels
    labeling.parent = list(parent)
    labeling.roots = list(state["roots"])
    labeling.stride = stride
    labeling._uncompressed = int(state["uncompressed"])
    labeling.vertex_at_post = list(vertex_at_post)
    return labeling


def save_labeling(labeling: IntervalLabeling, path: str | Path) -> None:
    """Write a labeling to ``path`` in the v1 text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{_MAGIC}\n")
        handle.write(
            f"n {labeling.num_vertices} "
            f"uncompressed {labeling.stats().uncompressed_labels} "
            f"stride {labeling.stride}\n"
        )
        handle.write("roots " + " ".join(map(str, labeling.roots)) + "\n")
        for v in range(labeling.num_vertices):
            labels = labeling.labels[v]
            flat = " ".join(f"{lo} {hi}" for lo, hi in labels)
            handle.write(
                f"v {labeling.post[v]} {labeling.parent[v]} "
                f"{len(labels)}{' ' + flat if flat else ''}\n"
            )


def load_labeling(path: str | Path) -> IntervalLabeling:
    """Read a labeling written by :func:`save_labeling`.

    Raises:
        ValueError: on a missing/garbled header or malformed record.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or lines[0] != _MAGIC:
        raise ValueError(f"{path}: not a repro interval labeling file")
    header = lines[1].split()
    if (
        len(header) not in (4, 6)
        or header[0] != "n"
        or header[2] != "uncompressed"
        or (len(header) == 6 and header[4] != "stride")
    ):
        raise ValueError(f"{path}: malformed size header: {lines[1]!r}")
    n = int(header[1])
    uncompressed = int(header[3])
    stride = int(header[5]) if len(header) == 6 else 1
    roots_line = lines[2].split()
    if not roots_line or roots_line[0] != "roots":
        raise ValueError(f"{path}: malformed roots line: {lines[2]!r}")
    roots = [int(x) for x in roots_line[1:]]

    post = [0] * n
    parent = [0] * n
    labels: list[tuple[tuple[int, int], ...]] = [()] * n
    records = [line for line in lines[3:] if line]
    if len(records) != n:
        raise ValueError(
            f"{path}: expected {n} vertex records, found {len(records)}"
        )
    for v, line in enumerate(records):
        parts = line.split()
        if parts[0] != "v" or len(parts) < 4:
            raise ValueError(f"{path}: malformed vertex record: {line!r}")
        post[v] = int(parts[1])
        parent[v] = int(parts[2])
        count = int(parts[3])
        values = [int(x) for x in parts[4:]]
        if len(values) != 2 * count:
            raise ValueError(
                f"{path}: vertex {v} declares {count} labels but carries "
                f"{len(values) // 2}"
            )
        labels[v] = tuple(
            (values[i], values[i + 1]) for i in range(0, len(values), 2)
        )
    return IntervalLabeling(
        post=post,
        labels=labels,
        parent=parent,
        roots=roots,
        uncompressed_labels=uncompressed,
        stride=stride,
    )
