"""Persistence for interval labelings.

Offline index construction is the whole point of labeling schemes, so a
production deployment builds once and reloads on start.  The format is a
plain-text, line-oriented dump: stable across platforms, diff-able, and
fast enough for the sizes this library targets.

Layout::

    # repro interval labeling v1
    n <num_vertices> uncompressed <count>
    roots <r0> <r1> ...
    v <post> <parent> <k> <lo1> <hi1> ... <lok> <hik>      (one per vertex)
"""

from __future__ import annotations

from pathlib import Path

from repro.labeling.labeling import IntervalLabeling

_MAGIC = "# repro interval labeling v1"


def save_labeling(labeling: IntervalLabeling, path: str | Path) -> None:
    """Write a labeling to ``path`` in the v1 text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{_MAGIC}\n")
        handle.write(
            f"n {labeling.num_vertices} "
            f"uncompressed {labeling.stats().uncompressed_labels} "
            f"stride {labeling.stride}\n"
        )
        handle.write("roots " + " ".join(map(str, labeling.roots)) + "\n")
        for v in range(labeling.num_vertices):
            labels = labeling.labels[v]
            flat = " ".join(f"{lo} {hi}" for lo, hi in labels)
            handle.write(
                f"v {labeling.post[v]} {labeling.parent[v]} "
                f"{len(labels)}{' ' + flat if flat else ''}\n"
            )


def load_labeling(path: str | Path) -> IntervalLabeling:
    """Read a labeling written by :func:`save_labeling`.

    Raises:
        ValueError: on a missing/garbled header or malformed record.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or lines[0] != _MAGIC:
        raise ValueError(f"{path}: not a repro interval labeling file")
    header = lines[1].split()
    if (
        len(header) not in (4, 6)
        or header[0] != "n"
        or header[2] != "uncompressed"
        or (len(header) == 6 and header[4] != "stride")
    ):
        raise ValueError(f"{path}: malformed size header: {lines[1]!r}")
    n = int(header[1])
    uncompressed = int(header[3])
    stride = int(header[5]) if len(header) == 6 else 1
    roots_line = lines[2].split()
    if not roots_line or roots_line[0] != "roots":
        raise ValueError(f"{path}: malformed roots line: {lines[2]!r}")
    roots = [int(x) for x in roots_line[1:]]

    post = [0] * n
    parent = [0] * n
    labels: list[tuple[tuple[int, int], ...]] = [()] * n
    records = [line for line in lines[3:] if line]
    if len(records) != n:
        raise ValueError(
            f"{path}: expected {n} vertex records, found {len(records)}"
        )
    for v, line in enumerate(records):
        parts = line.split()
        if parts[0] != "v" or len(parts) < 4:
            raise ValueError(f"{path}: malformed vertex record: {line!r}")
        post[v] = int(parts[1])
        parent[v] = int(parts[2])
        count = int(parts[3])
        values = [int(x) for x in parts[4:]]
        if len(values) != 2 * count:
            raise ValueError(
                f"{path}: vertex {v} declares {count} labels but carries "
                f"{len(values) // 2}"
            )
        labels[v] = tuple(
            (values[i], values[i + 1]) for i in range(0, len(values), 2)
        )
    return IntervalLabeling(
        post=post,
        labels=labels,
        parent=parent,
        roots=roots,
        uncompressed_labels=uncompressed,
        stride=stride,
    )
