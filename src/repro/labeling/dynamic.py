"""Incrementally maintainable interval labeling.

The paper defers "how our approach can efficiently handle updates in the
network" to future work (Section 8) and hints at the mechanism in
Section 4.1: leave "gaps in the post-order numbers ... to accommodate
updates (vertex insertions)".  This module provides the natural
incremental extension of Algorithm 1:

* **vertex insertion** either appends a fresh post-order number past the
  tail, or — with ``stride > 1`` — claims an unused number inside a gap
  (:meth:`DynamicIntervalLabeling.add_vertex_at`), provided no existing
  label covers it (a covered number would make the newcomer appear as a
  descendant of vertices that never reached it);
* **edge insertion** replays the non-spanning-edge step of Algorithm 1:
  copy ``L(u)`` into ``L(v)`` and into every *current label-ancestor* of
  ``v`` (the stabbing query over the labeling itself).  The invariant
  "``post(x) ∈ L(w)`` implies ``L(w) ⊇ L(x)``" is maintained by each
  insertion, which makes the scheme exact under any insertion order;
* **edge deletion** cannot be handled locally (a label may be justified
  by many paths), so it marks the labeling dirty and the next query
  triggers a rebuild — an honest account of why the paper calls deletions
  future work.

Cycle creation is detected on insertion (an edge ``(v, u)`` with ``u``
already reaching ``v``) and rejected: the DAG invariant is the caller's
contract, exactly as in the static construction.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator

from repro.graph.digraph import DiGraph
from repro.labeling.construction import build_labeling
from repro.labeling.intervals import (
    Interval,
    compress_intervals,
    intervals_cover,
)


class DynamicIntervalLabeling:
    """An interval labeling over a DAG that supports online growth.

    Args:
        dag: optional initial graph (bootstrapped with the static
            construction).
        stride: spacing of post-order numbers; values > 1 reserve gaps
            for :meth:`add_vertex_at`.
    """

    def __init__(self, dag: DiGraph | None = None, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be positive")
        self._stride = stride
        self._graph = DiGraph(0)
        self._post: list[int] = []          # per vertex
        self._labels: list[tuple[Interval, ...]] = []
        self._sorted_posts: list[int] = []  # all assigned posts, ordered
        self._vertex_of_post: dict[int, int] = {}
        self._dirty = False
        if dag is not None:
            self._bootstrap(dag)

    def _bootstrap(self, dag: DiGraph) -> None:
        labeling = build_labeling(dag, post_stride=self._stride)
        self._graph = DiGraph(dag.num_vertices)
        for s, t in dag.edges():
            self._graph.add_edge(s, t)
        self._post = list(labeling.post)
        self._labels = list(labeling.labels)
        self._sorted_posts = sorted(self._post)
        self._vertex_of_post = {p: v for v, p in enumerate(self._post)}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Add an isolated vertex numbered past the current tail."""
        tail = self._sorted_posts[-1] if self._sorted_posts else 0
        return self._register_vertex(tail + self._stride)

    def add_vertex_at(self, post: int) -> int:
        """Add an isolated vertex at a specific (gap) post number.

        The number must be positive, unused, and not covered by any
        existing label — coverage would fabricate reachability to the
        newcomer.  Useful with ``stride > 1``, where gaps guarantee such
        numbers exist between any two neighbors.

        Raises:
            ValueError: if the number is taken or covered.
        """
        self._ensure_clean()  # a pending rebuild renumbers everything
        if post < 1:
            raise ValueError("post numbers are positive")
        if post in self._vertex_of_post:
            raise ValueError(f"post number {post} is already assigned")
        for labels in self._labels:
            if intervals_cover(labels, post):
                raise ValueError(
                    f"post number {post} is covered by an existing label; "
                    "inserting there would fabricate reachability"
                )
        return self._register_vertex(post)

    def _register_vertex(self, post: int) -> int:
        v = self._graph.add_vertex()
        self._post.append(post)
        self._labels.append(((post, post),))
        insort(self._sorted_posts, post)
        self._vertex_of_post[post] = v
        return v

    def add_edge(self, source: int, target: int) -> None:
        """Insert edge ``source -> target``, updating labels in place.

        Raises:
            ValueError: if the edge would create a cycle (the target
                already reaches the source).
        """
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            raise ValueError("self-loops would create a cycle")
        # greach() settles any pending rebuild first, so the cycle check is
        # always evaluated against up-to-date labels.
        if self.greach(target, source):
            raise ValueError(
                f"edge ({source}, {target}) would create a cycle; collapse "
                "the component instead (repro.geosocial.condense_network)"
            )
        self._graph.add_edge(source, target)
        additions = self._labels[target]
        if intervals_cover(self._labels[source], self._post[target]):
            # Already reachable: the invariant guarantees L(source)
            # already covers L(target).
            return
        stab = self._post[source]
        # The source itself plus every current label-ancestor of it.
        self._labels[source] = compress_intervals(
            self._labels[source] + additions
        )
        for w in range(len(self._labels)):
            if w != source and intervals_cover(self._labels[w], stab):
                self._labels[w] = compress_intervals(
                    self._labels[w] + additions
                )

    def remove_edge(self, source: int, target: int) -> None:
        """Remove an edge; labels are rebuilt lazily on the next query."""
        self._graph.remove_edge(source, target)
        self._dirty = True

    def _ensure_clean(self) -> None:
        if self._dirty:
            self._bootstrap(self._graph)
            self._dirty = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def greach(self, source: int, target: int) -> bool:
        """Reachability test (Lemma 3.1) on the current graph."""
        self._ensure_clean()
        return intervals_cover(self._labels[source], self._post[target])

    def descendants(self, v: int) -> Iterator[int]:
        """Yield all vertices reachable from ``v`` (including itself)."""
        self._ensure_clean()
        posts = self._sorted_posts
        vertex_of_post = self._vertex_of_post
        for lo, hi in self._labels[v]:
            start = bisect_left(posts, lo)
            end = bisect_right(posts, hi)
            for i in range(start, end):
                yield vertex_of_post[posts[i]]

    def num_descendants(self, v: int) -> int:
        self._ensure_clean()
        posts = self._sorted_posts
        return sum(
            bisect_right(posts, hi) - bisect_left(posts, lo)
            for lo, hi in self._labels[v]
        )

    def labels_of(self, v: int) -> tuple[Interval, ...]:
        self._ensure_clean()
        return self._labels[v]

    def post_of(self, v: int) -> int:
        return self._post[v]

    @property
    def stride(self) -> int:
        return self._stride

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def graph(self) -> DiGraph:
        """The underlying graph (do not mutate directly)."""
        return self._graph

    @property
    def needs_rebuild(self) -> bool:
        """True iff a deletion left the labels stale."""
        return self._dirty

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._graph.num_vertices):
            raise IndexError(f"vertex {v} out of range")
