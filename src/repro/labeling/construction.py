"""Construction of the interval labeling (Algorithm 1 of the paper).

Two construction modes produce *identical* compressed labelings (a
property test asserts this):

* ``"faithful"`` mirrors Algorithm 1 line by line: labels start as
  post-order singletons, a priority queue ordered by in-degree (ties by
  post-order) drives the spanning-forest propagation, non-spanning edges
  are replayed in ascending source post-order, and ancestor propagation
  targets every vertex whose *current labels* cover ``post(v)`` — the
  stabbing query the paper describes ("we can identify its ancestors
  using the current version of the labeling scheme").  Propagating only
  along tree-parent chains would be incomplete: in the paper's own
  example the label ``[1,1]`` reaches vertex ``g`` through the non-tree
  ancestor relation established by edge ``(g, i)``.  Quadratic in the
  worst case — intended for small inputs and as executable documentation
  of the pseudocode.

* ``"subtree"`` (default) requires the spanning forest to be a *DFS*
  forest and exploits two structural facts: (1) the post-order numbers of
  a DFS subtree form the contiguous range ``[index(v), post(v)]``, so the
  entire spanning-forest phase collapses into one tree interval per
  vertex; and (2) with a DFS forest every DAG edge ``(v, u)`` satisfies
  ``post(u) < post(v)``, so one ascending-post sweep sees every
  non-spanning-edge target with its *final* labels, and ancestor
  propagation folds into the child-to-parent union of the sweep.
  Near-linear in the output size.

Both modes are exact: the compressed label set of ``v`` canonically
covers exactly ``{post(u) : u reachable from v}``, so the results are
equal even though intermediate label sets differ.
"""

from __future__ import annotations

import heapq

from repro.graph.digraph import DiGraph
from repro.graph.traversal import DfsForest, dfs_forest, is_acyclic
from repro.labeling.intervals import Interval, compress_intervals
from repro.labeling.labeling import IntervalLabeling

_MODES = ("subtree", "faithful")


def build_labeling(
    dag: DiGraph,
    mode: str = "subtree",
    forest: DfsForest | None = None,
    post_stride: int = 1,
) -> IntervalLabeling:
    """Build the interval labeling of a DAG.

    Args:
        dag: the input graph; must be acyclic (condense arbitrary graphs
            first, see :func:`repro.geosocial.condense_network`).
        mode: ``"subtree"`` (fast, default) or ``"faithful"`` (verbatim
            Algorithm 1).
        forest: optional pre-built spanning forest.  Only the faithful
            mode accepts an arbitrary forest (e.g. the paper's Figure 3);
            the fast mode requires a DFS forest and builds its own when
            none is given.
        post_stride: spacing of the post-order numbers.  ``1`` (default)
            is the paper's dense numbering; larger values leave *gaps*
            between consecutive numbers "to accommodate updates (vertex
            insertions)" as Section 4.1 suggests — at the cost of less
            effective compression (singleton labels no longer merge
            across a gap, which is exactly what makes gap insertion
            safe).

    Raises:
        ValueError: if the graph has a cycle, the mode is unknown, or the
            stride is not positive.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown construction mode {mode!r}; use one of {_MODES}")
    if post_stride < 1:
        raise ValueError("post_stride must be positive")
    if not is_acyclic(dag):
        raise ValueError(
            "interval labeling requires a DAG; collapse strongly connected "
            "components first (repro.geosocial.condense_network)"
        )
    forest = _strided(forest, dag, post_stride)
    if mode == "faithful":
        return _build_faithful(dag, forest, post_stride)
    return _build_subtree(dag, forest, post_stride)


def _strided(
    forest: DfsForest | None, dag: DiGraph, stride: int
) -> DfsForest | None:
    """Scale a forest's post numbers by ``stride`` (building one first if
    needed and a stride was requested)."""
    if stride == 1:
        return forest
    if forest is None:
        forest = dfs_forest(dag)
    return DfsForest(
        parent=forest.parent,
        post=[p * stride for p in forest.post],
        roots=forest.roots,
        min_post=[p * stride for p in forest.min_post],
    )


def build_reversed_labeling(dag: DiGraph, mode: str = "subtree") -> IntervalLabeling:
    """Build the *reversed* interval labeling used by 3DReach-Rev.

    Every label ``[l, h]`` of vertex ``v`` then covers the post-order
    numbers (of the reversed forest) of the *ancestors* of ``v`` in the
    original orientation; ``greach(v, u)`` on the reversed labeling
    answers "can u reach v" in the original graph.
    """
    return build_labeling(dag.reversed(), mode=mode)


# ----------------------------------------------------------------------
# Fast mode
# ----------------------------------------------------------------------
def _build_subtree(
    dag: DiGraph, forest: DfsForest | None, stride: int = 1
) -> IntervalLabeling:
    if forest is None:
        forest = dfs_forest(dag)
    post = forest.post
    n = dag.num_vertices
    parent = forest.parent

    # Vertices in ascending post-order: children precede parents, and every
    # edge target precedes its source (DFS property on a DAG).
    order = [0] * n
    for v, p in enumerate(post):
        order[p // stride - 1] = v

    labels: list[tuple[Interval, ...]] = [()] * n
    uncompressed = 0
    for v in order:
        raw: set[Interval] = {(forest.min_post[v], post[v])}
        for u in dag.successors(v):
            if parent[u] == v:
                # Tree child: its accumulated labels bubble up; its own
                # tree interval is absorbed by ours.
                raw.update(labels[u])
            else:
                # Non-spanning edge (v, u): post(u) < post(v) guarantees
                # u already carries its final labels.
                if post[u] >= post[v]:
                    raise ValueError(
                        "subtree mode requires a DFS spanning forest "
                        f"(edge {v}->{u} violates the post-order property)"
                    )
                raw.update(labels[u])
        # Tree children reached through a different parent's edge (none in
        # a deduplicated DAG) would be handled by the union either way.
        uncompressed += len(raw)
        labels[v] = compress_intervals(raw)

    return IntervalLabeling(
        post=post,
        labels=labels,
        parent=parent,
        roots=forest.roots,
        uncompressed_labels=uncompressed,
        stride=stride,
    )


# ----------------------------------------------------------------------
# Faithful mode (Algorithm 1, verbatim)
# ----------------------------------------------------------------------
def _build_faithful(
    dag: DiGraph, forest: DfsForest | None, stride: int = 1
) -> IntervalLabeling:
    # Step 1: spanning forest + global post-order numbers (lines 1-4).
    if forest is None:
        forest = dfs_forest(dag)
    post = forest.post
    parent = forest.parent
    n = dag.num_vertices

    # Step 2 initialisation: L(v) = {[post(v), post(v)]} (lines 5-6).
    label_sets: list[set[Interval]] = [{(post[v], post[v])} for v in range(n)]

    tree_children: list[list[int]] = [[] for _ in range(n)]
    for v, p in enumerate(parent):
        if p >= 0:
            tree_children[p].append(v)

    def propagate_to_ancestors(v: int) -> None:
        """Copy L(v) into every current ancestor of v (lines 14-15, 23-24).

        Ancestors are identified "using the current version of the
        labeling scheme": a stabbing query for post(v) over all label
        sets.  (An interval index could accelerate this, as the paper
        notes; the linear scan keeps the faithful mode simple.)
        """
        target = post[v]
        additions = label_sets[v]
        for w in range(n):
            if w == v:
                continue
            for lo, hi in label_sets[w]:
                if lo <= target <= hi:
                    label_sets[w].update(additions)
                    break

    # Priority queue seeded with the forest roots (lines 7-9); priority is
    # (in-degree in G, post-order number), both ascending, so zero
    # in-degree roots are examined first.
    heap: list[tuple[int, int, int]] = []
    queued = [False] * n
    for root in forest.roots:
        heapq.heappush(heap, (dag.in_degree(root), post[root], root))
        queued[root] = True

    # Spanning-forest propagation (lines 10-18).
    while heap:
        _, _, v = heapq.heappop(heap)
        for u in tree_children[v]:
            label_sets[v].update(label_sets[u])
            propagate_to_ancestors(v)
            if not queued[u]:
                queued[u] = True
                heapq.heappush(heap, (dag.in_degree(u), post[u], u))

    # Non-spanning edges sorted by source post-order (lines 19-24).
    tree_edges = forest.tree_edges()
    non_tree = [(v, u) for v, u in dag.edges() if (v, u) not in tree_edges]
    non_tree.sort(key=lambda edge: post[edge[0]])
    for v, u in non_tree:
        label_sets[v].update(label_sets[u])
        propagate_to_ancestors(v)

    # Compression (lines 25-26).
    uncompressed = sum(len(s) for s in label_sets)
    labels = [compress_intervals(s) for s in label_sets]
    return IntervalLabeling(
        post=post,
        labels=labels,
        parent=parent,
        roots=forest.roots,
        uncompressed_labels=uncompressed,
        stride=stride,
    )
