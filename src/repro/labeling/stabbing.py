"""Interval stabbing index (centered interval tree).

The paper notes that the ancestor lookup inside Algorithm 1 — "which
vertices' labels cover post(v)?" — is a stabbing query that traditional
interval indexing can accelerate.  This is that structure: a static
centered interval tree over ``(lo, hi, payload)`` entries answering
"all payloads whose interval covers q" in ``O(log n + k)``.
"""

from __future__ import annotations

from typing import Any, Iterator


class _StabNode:
    __slots__ = ("center", "by_lo", "by_hi", "left", "right")

    def __init__(self, center: int) -> None:
        self.center = center
        self.by_lo: list[tuple[int, int, Any]] = []   # sorted by lo asc
        self.by_hi: list[tuple[int, int, Any]] = []   # sorted by hi desc
        self.left: "_StabNode | None" = None
        self.right: "_StabNode | None" = None


class IntervalStabbingIndex:
    """A static index over closed integer intervals supporting stabbing."""

    def __init__(self, intervals: list[tuple[int, int, Any]]) -> None:
        for lo, hi, _ in intervals:
            if lo > hi:
                raise ValueError(f"degenerate interval [{lo}, {hi}]")
        self._size = len(intervals)
        self._root = self._build(intervals)

    @staticmethod
    def _build(intervals: list[tuple[int, int, Any]]) -> "_StabNode | None":
        # Iterative construction (explicit work list) to stay clear of the
        # recursion limit on adversarial inputs.
        if not intervals:
            return None
        endpoints = sorted({x for lo, hi, _ in intervals for x in (lo, hi)})
        root_holder: list[_StabNode | None] = [None]
        work: list[tuple[list, list, _StabNode | None, str]] = [
            (intervals, endpoints, None, "root")
        ]
        while work:
            items, points, parent, side = work.pop()
            if not items:
                continue
            center = points[len(points) // 2]
            node = _StabNode(center)
            here = [iv for iv in items if iv[0] <= center <= iv[1]]
            left = [iv for iv in items if iv[1] < center]
            right = [iv for iv in items if iv[0] > center]
            node.by_lo = sorted(here, key=lambda iv: iv[0])
            node.by_hi = sorted(here, key=lambda iv: -iv[1])
            if parent is None:
                root_holder[0] = node
            elif side == "left":
                parent.left = node
            else:
                parent.right = node
            mid = len(points) // 2
            if left:
                work.append((left, points[:mid], node, "left"))
            if right:
                work.append((right, points[mid + 1 :], node, "right"))
        return root_holder[0]

    def stab(self, q: int) -> Iterator[Any]:
        """Yield the payloads of every interval covering ``q``."""
        node = self._root
        while node is not None:
            if q < node.center:
                for lo, _, payload in node.by_lo:
                    if lo > q:
                        break
                    yield payload
                node = node.left
            elif q > node.center:
                for _, hi, payload in node.by_hi:
                    if hi < q:
                        break
                    yield payload
                node = node.right
            else:
                for _, _, payload in node.by_lo:
                    yield payload
                return

    def stab_all(self, q: int) -> list[Any]:
        """Return the stabbing result as a list."""
        return list(self.stab(q))

    def __len__(self) -> int:
        return self._size
