"""Operations on integer interval label sets.

A label is a closed integer interval ``(lo, hi)`` over post-order numbers.
Compression implements the two reductions described in Section 3.1 of the
paper: *absorbing* subsumed intervals (``[3,5]`` absorbs ``[4,5]``) and
*merging* adjacent ones (``[1,4]`` and ``[4,5]`` become ``[1,5]``).  Since
post-order numbers are integers, intervals touching at consecutive numbers
(``[1,4]`` and ``[5,7]``) merge as well — that is what collapses a chain of
singleton labels like ``[1,1] .. [9,9]`` into ``[1,9]``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

Interval = tuple[int, int]


def compress_intervals(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Return the canonical compressed form of a label set.

    The result is a sorted tuple of disjoint, non-adjacent intervals that
    covers exactly the same integers as the input.
    """
    ordered = sorted(intervals)
    if not ordered:
        return ()
    out: list[Interval] = []
    cur_lo, cur_hi = ordered[0]
    for lo, hi in ordered[1:]:
        if lo <= cur_hi + 1:
            if hi > cur_hi:
                cur_hi = hi
        else:
            out.append((cur_lo, cur_hi))
            cur_lo, cur_hi = lo, hi
    out.append((cur_lo, cur_hi))
    return tuple(out)


def intervals_cover(labels: Sequence[Interval], value: int) -> bool:
    """Return True iff a *compressed* label set covers ``value``.

    Binary search over the sorted disjoint intervals; this is the inner
    test of ``GReach`` (Lemma 3.1 of the paper).
    """
    idx = bisect_right(labels, (value, float("inf"))) - 1
    if idx < 0:
        return False
    lo, hi = labels[idx]
    return lo <= value <= hi


def intervals_covered_count(labels: Sequence[Interval]) -> int:
    """Return how many integers a compressed label set covers.

    For a labeling over a DAG this equals the number of descendants of the
    vertex (including itself).
    """
    return sum(hi - lo + 1 for lo, hi in labels)


def intervals_equal_coverage(
    a: Sequence[Interval], b: Sequence[Interval]
) -> bool:
    """Return True iff two label sets cover the same integers."""
    return compress_intervals(a) == compress_intervals(b)


def intervals_union(*label_sets: Iterable[Interval]) -> tuple[Interval, ...]:
    """Return the compressed union of several label sets."""
    merged: list[Interval] = []
    for labels in label_sets:
        merged.extend(labels)
    return compress_intervals(merged)
