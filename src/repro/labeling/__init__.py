"""Interval-based reachability labeling (Agrawal et al., adapted).

This package implements Section 3 of the paper: the construction of an
interval-based labeling for a (geo)social network DAG via a *spanning
forest* (Algorithm 1), label compression (absorbing subsumed and merging
adjacent intervals), the reversed labeling used by 3DReach-Rev, and the
query API (``GReach`` membership tests and descendant enumeration).
"""

from repro.labeling.intervals import (
    compress_intervals,
    intervals_cover,
    intervals_covered_count,
)
from repro.labeling.labeling import IntervalLabeling, LabelingStats
from repro.labeling.construction import build_labeling, build_reversed_labeling
from repro.labeling.stabbing import IntervalStabbingIndex
from repro.labeling.dynamic import DynamicIntervalLabeling
from repro.labeling.io import (
    labeling_from_state,
    labeling_state,
    load_labeling,
    save_labeling,
)

__all__ = [
    "compress_intervals",
    "intervals_cover",
    "intervals_covered_count",
    "IntervalLabeling",
    "LabelingStats",
    "build_labeling",
    "build_reversed_labeling",
    "IntervalStabbingIndex",
    "DynamicIntervalLabeling",
    "labeling_from_state",
    "labeling_state",
    "load_labeling",
    "save_labeling",
]
