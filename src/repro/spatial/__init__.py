"""Spatial indexing substrate.

The paper evaluates its methods on top of Boost's R-tree; here we provide
our own generic k-dimensional R-tree (:class:`~repro.spatial.rtree.RTree`)
with sort-tile-recursive bulk loading and quadratic-split inserts.  It
serves as the 2-D point index of SpaReach and as the 3-D point/segment/box
index of the 3DReach methods.  GeoReach's SPA-graph uses the hierarchical
quad grid (:class:`~repro.spatial.grid.HierarchicalGrid`).  A linear-scan
index is included as the correctness reference for tests.
"""

from repro.spatial.rtree import RTree, RTreeStats
from repro.spatial.grid import Cell, HierarchicalGrid
from repro.spatial.linear import LinearScanIndex
from repro.spatial.quadtree import QuadTree
from repro.spatial.uniform_grid import UniformGridIndex

__all__ = [
    "RTree",
    "RTreeStats",
    "Cell",
    "HierarchicalGrid",
    "LinearScanIndex",
    "QuadTree",
    "UniformGridIndex",
]
