"""Hierarchical quad grid.

GeoReach (Sarwat & Sun) partitions the plane with a hierarchy of grids:
level 0 is the finest partitioning (``2^(levels-1)`` cells per side) and
each step up merges quads of four sibling cells into one parent cell, until
the top level covers the whole space with a single cell.  ReachGrid sets
store cells from *any* level, so cells carry their level explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect


@dataclass(frozen=True, slots=True)
class Cell:
    """A grid cell identified by ``(level, row, col)``.

    ``level`` 0 is the finest partitioning; rows index the y-axis from the
    bottom, columns the x-axis from the left.
    """

    level: int
    row: int
    col: int


class HierarchicalGrid:
    """A quad hierarchy of grids over a rectangular space.

    Args:
        space: the extent of the indexed plane.
        num_levels: number of levels; level 0 has ``2^(num_levels-1)``
            cells per side and the top level exactly one cell.
    """

    def __init__(self, space: Rect, num_levels: int = 8) -> None:
        if num_levels < 1:
            raise ValueError("need at least one grid level")
        if space.width <= 0 or space.height <= 0:
            raise ValueError("space must have positive extent")
        self.space = space
        self.num_levels = num_levels

    # ------------------------------------------------------------------
    # Geometry of cells
    # ------------------------------------------------------------------
    def side_cells(self, level: int) -> int:
        """Return the number of cells per side at ``level``."""
        self._check_level(level)
        return 1 << (self.num_levels - 1 - level)

    def num_cells(self, level: int) -> int:
        """Return the total number of cells at ``level``."""
        side = self.side_cells(level)
        return side * side

    def cell_rect(self, cell: Cell) -> Rect:
        """Return the spatial extent of ``cell``."""
        side = self.side_cells(cell.level)
        cw = self.space.width / side
        ch = self.space.height / side
        xlo = self.space.xlo + cell.col * cw
        ylo = self.space.ylo + cell.row * ch
        return Rect(xlo, ylo, xlo + cw, ylo + ch)

    def locate(self, point: Point, level: int = 0) -> Cell:
        """Return the cell of ``level`` containing ``point``.

        Points on the space boundary are clamped into the outermost cells,
        so every point of the (closed) space maps to exactly one cell.
        """
        self._check_level(level)
        side = self.side_cells(level)
        col = int((point.x - self.space.xlo) / self.space.width * side)
        row = int((point.y - self.space.ylo) / self.space.height * side)
        col = min(max(col, 0), side - 1)
        row = min(max(row, 0), side - 1)
        return Cell(level, row, col)

    # ------------------------------------------------------------------
    # Hierarchy navigation
    # ------------------------------------------------------------------
    def parent(self, cell: Cell) -> Cell:
        """Return the enclosing cell at the next coarser level."""
        if cell.level >= self.num_levels - 1:
            raise ValueError("top-level cell has no parent")
        return Cell(cell.level + 1, cell.row // 2, cell.col // 2)

    def children(self, cell: Cell) -> list[Cell]:
        """Return the four finer cells that tile ``cell``."""
        if cell.level == 0:
            raise ValueError("level-0 cell has no children")
        level = cell.level - 1
        row, col = cell.row * 2, cell.col * 2
        return [
            Cell(level, row, col),
            Cell(level, row, col + 1),
            Cell(level, row + 1, col),
            Cell(level, row + 1, col + 1),
        ]

    # ------------------------------------------------------------------
    # Query predicates (on the cell extent)
    # ------------------------------------------------------------------
    def cell_intersects(self, cell: Cell, region: Rect) -> bool:
        """Return True iff the cell's extent overlaps ``region``."""
        return self.cell_rect(cell).intersects(region)

    def cell_inside(self, cell: Cell, region: Rect) -> bool:
        """Return True iff the cell's extent lies fully inside ``region``."""
        return region.contains_rect(self.cell_rect(cell))

    # ------------------------------------------------------------------
    # ReachGrid maintenance (GeoReach)
    # ------------------------------------------------------------------
    def merge_cells(self, cells: set[Cell], merge_count: int) -> set[Cell]:
        """Apply GeoReach's MERGE_COUNT policy to a cell set.

        Starting from the finest level, whenever more than ``merge_count``
        sibling cells (cells sharing a parent quad) are present, they are
        replaced by their parent cell.  The process cascades upward because
        merged parents may themselves form mergeable sibling groups.
        """
        if merge_count < 1:
            raise ValueError("merge_count must be positive")
        current = set(cells)
        for level in range(self.num_levels - 1):
            by_parent: dict[Cell, list[Cell]] = {}
            for cell in current:
                if cell.level == level:
                    by_parent.setdefault(self.parent(cell), []).append(cell)
            for parent_cell, siblings in by_parent.items():
                if len(siblings) > merge_count:
                    current.difference_update(siblings)
                    current.add(parent_cell)
        return current

    def cells_cover_point(self, cells: set[Cell], point: Point) -> bool:
        """Return True iff some cell in the set contains ``point``."""
        for level in range(self.num_levels):
            if self.locate(point, level) in cells:
                return True
        return False

    def _check_level(self, level: int) -> None:
        if not (0 <= level < self.num_levels):
            raise ValueError(
                f"level {level} outside [0, {self.num_levels - 1}]"
            )
