"""A uniform (single-level) grid over 2-D point entries.

"The simplest SOP index" of the paper's related-work survey: the space is
cut into ``cells_per_side x cells_per_side`` equal cells, each holding the
points that fall into it.  Range queries visit the cells overlapping the
query rectangle and filter their contents.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.geometry import Rect


class UniformGridIndex:
    """A flat grid of point buckets with rectangle range search."""

    def __init__(self, extent: Rect, cells_per_side: int = 32) -> None:
        if cells_per_side < 1:
            raise ValueError("cells_per_side must be positive")
        if extent.width <= 0 or extent.height <= 0:
            raise ValueError("extent must have positive area")
        self._extent = extent
        self._side = cells_per_side
        self._cells: list[list[tuple[float, float, Any]]] = [
            [] for _ in range(cells_per_side * cells_per_side)
        ]
        self._size = 0

    @classmethod
    def bulk_load(
        cls, entries, extent: Rect, cells_per_side: int | None = None
    ) -> "UniformGridIndex":
        """Build from ``(bounds, item)`` pairs (degenerate point bounds).

        Without an explicit resolution the grid aims at ~4 points per
        cell, the classic occupancy heuristic.
        """
        items = list(entries)
        if cells_per_side is None:
            cells_per_side = max(1, int(math.sqrt(max(1, len(items)) / 4)))
        grid = cls(extent, cells_per_side)
        for bounds, item in items:
            if bounds[0] != bounds[2] or bounds[1] != bounds[3]:
                raise ValueError("uniform grid stores point entries only")
            grid.insert_point((bounds[0], bounds[1]), item)
        return grid

    # ------------------------------------------------------------------
    def _cell_coords(self, x: float, y: float) -> tuple[int, int]:
        extent, side = self._extent, self._side
        col = int((x - extent.xlo) / extent.width * side)
        row = int((y - extent.ylo) / extent.height * side)
        return (
            min(max(row, 0), side - 1),
            min(max(col, 0), side - 1),
        )

    def insert_point(self, coords, item: Any) -> None:
        x, y = coords
        if not self._extent.contains_xy(x, y):
            raise ValueError(f"point ({x}, {y}) outside the grid extent")
        row, col = self._cell_coords(x, y)
        self._cells[row * self._side + col].append((x, y, item))
        self._size += 1

    # ------------------------------------------------------------------
    def search(self, query) -> Iterator[Any]:
        """Yield every item whose point lies inside the query bounds."""
        qxlo, qylo, qxhi, qyhi = query
        if qxlo > qxhi or qylo > qyhi:
            return
        row_lo, col_lo = self._cell_coords(max(qxlo, self._extent.xlo),
                                           max(qylo, self._extent.ylo))
        row_hi, col_hi = self._cell_coords(min(qxhi, self._extent.xhi),
                                           min(qyhi, self._extent.yhi))
        if qxhi < self._extent.xlo or qxlo > self._extent.xhi:
            return
        if qyhi < self._extent.ylo or qylo > self._extent.yhi:
            return
        side = self._side
        for row in range(row_lo, row_hi + 1):
            base = row * side
            for col in range(col_lo, col_hi + 1):
                for x, y, item in self._cells[base + col]:
                    if qxlo <= x <= qxhi and qylo <= y <= qyhi:
                        yield item

    def search_all(self, query) -> list[Any]:
        return list(self.search(query))

    def any_intersecting(self, query) -> Any | None:
        for item in self.search(query):
            return item
        return None

    def count_intersecting(self, query) -> int:
        return sum(1 for _ in self.search(query))

    def __len__(self) -> int:
        return self._size

    @property
    def cells_per_side(self) -> int:
        return self._side
