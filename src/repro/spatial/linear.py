"""Linear-scan spatial index.

The correctness reference for the R-tree in tests, and the "no index"
baseline for the indexing-ablation benchmark: a flat list of entries that
answers every query by a full scan.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.spatial.rtree import Bounds, bounds_intersect


class LinearScanIndex:
    """A flat ``(bounds, item)`` store answering queries by full scan."""

    def __init__(self, dims: int = 2) -> None:
        if dims < 1:
            raise ValueError("dims must be positive")
        self._dims = dims
        self._entries: list[tuple[Bounds, Any]] = []

    @classmethod
    def bulk_load(
        cls, entries: Iterable[tuple[Bounds, Any]], dims: int = 2
    ) -> "LinearScanIndex":
        index = cls(dims=dims)
        index._entries = list(entries)
        return index

    def insert(self, bounds: Bounds, item: Any) -> None:
        if len(bounds) != 2 * self._dims:
            raise ValueError(
                f"bounds must have {2 * self._dims} values, got {len(bounds)}"
            )
        self._entries.append((bounds, item))

    def insert_point(self, coords, item: Any) -> None:
        self.insert(tuple(coords) + tuple(coords), item)

    def search(self, query: Bounds) -> Iterator[Any]:
        """Yield every item whose bounds intersect ``query``."""
        dims = self._dims
        for bounds, item in self._entries:
            if bounds_intersect(bounds, query, dims):
                yield item

    def search_all(self, query: Bounds) -> list[Any]:
        return list(self.search(query))

    def any_intersecting(self, query: Bounds) -> Any | None:
        for item in self.search(query):
            return item
        return None

    def count_intersecting(self, query: Bounds) -> int:
        return sum(1 for _ in self.search(query))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dims(self) -> int:
        return self._dims
