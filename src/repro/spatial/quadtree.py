"""A PR quadtree over 2-D point entries.

A space-oriented-partitioning (SOP) index from the paper's related-work
survey (Section 7.2), provided as an alternative to the R-tree inside
SpaReach: the region quadtree splits a cell into four equal quadrants
whenever it holds more than ``leaf_capacity`` points.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry import Rect


class _QuadNode:
    __slots__ = ("rect", "entries", "children")

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.entries: list[tuple[float, float, Any]] | None = []
        self.children: list["_QuadNode"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A point quadtree supporting range search over a fixed extent."""

    def __init__(
        self, extent: Rect, leaf_capacity: int = 16, max_depth: int = 16
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if extent.width <= 0 or extent.height <= 0:
            raise ValueError("extent must have positive area")
        self._root = _QuadNode(extent)
        self._capacity = leaf_capacity
        self._max_depth = max_depth
        self._size = 0

    @classmethod
    def bulk_load(
        cls,
        entries,
        extent: Rect,
        leaf_capacity: int = 16,
        max_depth: int = 16,
    ) -> "QuadTree":
        """Build from ``(bounds, item)`` pairs (degenerate point bounds)."""
        tree = cls(extent, leaf_capacity, max_depth)
        for bounds, item in entries:
            if bounds[0] != bounds[2] or bounds[1] != bounds[3]:
                raise ValueError("quadtree stores point entries only")
            tree.insert_point((bounds[0], bounds[1]), item)
        return tree

    # ------------------------------------------------------------------
    def insert_point(self, coords, item: Any) -> None:
        x, y = coords
        if not self._root.rect.contains_xy(x, y):
            raise ValueError(f"point ({x}, {y}) outside the quadtree extent")
        node, depth = self._root, 0
        while not node.is_leaf:
            node = self._child_for(node, x, y)
            depth += 1
        node.entries.append((x, y, item))
        self._size += 1
        if len(node.entries) > self._capacity and depth < self._max_depth:
            self._split(node, depth)

    @staticmethod
    def _child_for(node: _QuadNode, x: float, y: float) -> _QuadNode:
        cx, cy = node.rect.center.x, node.rect.center.y
        idx = (1 if x > cx else 0) | (2 if y > cy else 0)
        return node.children[idx]

    def _split(self, node: _QuadNode, depth: int) -> None:
        r = node.rect
        cx, cy = r.center.x, r.center.y
        node.children = [
            _QuadNode(Rect(r.xlo, r.ylo, cx, cy)),       # SW
            _QuadNode(Rect(cx, r.ylo, r.xhi, cy)),       # SE
            _QuadNode(Rect(r.xlo, cy, cx, r.yhi)),       # NW
            _QuadNode(Rect(cx, cy, r.xhi, r.yhi)),       # NE
        ]
        entries = node.entries
        node.entries = None
        for x, y, item in entries:
            child = self._child_for(node, x, y)
            child.entries.append((x, y, item))
        # A pathological all-equal-point leaf re-splits on next insert and
        # stops at max_depth.
        for child in node.children:
            if len(child.entries) > self._capacity and depth + 1 < self._max_depth:
                self._split(child, depth + 1)

    # ------------------------------------------------------------------
    def search(self, query) -> Iterator[Any]:
        """Yield every item whose point lies inside the query bounds."""
        qxlo, qylo, qxhi, qyhi = query
        region = Rect(qxlo, qylo, qxhi, qyhi)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(region):
                continue
            if node.is_leaf:
                for x, y, item in node.entries:
                    if qxlo <= x <= qxhi and qylo <= y <= qyhi:
                        yield item
            else:
                stack.extend(node.children)

    def search_all(self, query) -> list[Any]:
        return list(self.search(query))

    def any_intersecting(self, query) -> Any | None:
        for item in self.search(query):
            return item
        return None

    def count_intersecting(self, query) -> int:
        return sum(1 for _ in self.search(query))

    def __len__(self) -> int:
        return self._size

    def depth(self) -> int:
        """Return the maximum leaf depth (root = 0)."""
        best = 0
        stack = [(self._root, 0)]
        while stack:
            node, d = stack.pop()
            if node.is_leaf:
                best = max(best, d)
            else:
                stack.extend((c, d + 1) for c in node.children)
        return best
