"""A generic k-dimensional R-tree.

Bounds are flat tuples ``(lo_0, ..., lo_{d-1}, hi_0, ..., hi_{d-1})``;
points are stored as degenerate boxes.  The tree supports:

* sort-tile-recursive (STR) bulk loading — how every RangeReach index is
  built in the benchmarks, matching the paper's offline construction;
* quadratic-split insertion (Guttman) for incremental updates;
* full range enumeration plus an early-terminating *exists* search, which
  is what RangeReach actually needs ("is there at least one result?").

Dimensions 2 and 3 are exercised by the library (SpaReach and 3DReach),
but the implementation is dimension-generic.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled

Bounds = tuple[float, ...]


def bounds_intersect(a: Bounds, b: Bounds, dims: int) -> bool:
    """Return True iff the two k-dim boxes share at least one point."""
    for i in range(dims):
        if a[i] > b[dims + i] or b[i] > a[dims + i]:
            return False
    return True


def bounds_contain(outer: Bounds, inner: Bounds, dims: int) -> bool:
    """Return True iff ``inner`` lies fully inside ``outer``."""
    for i in range(dims):
        if inner[i] < outer[i] or inner[dims + i] > outer[dims + i]:
            return False
    return True


def bounds_union(a: Bounds, b: Bounds, dims: int) -> Bounds:
    """Return the smallest box enclosing both operands."""
    return tuple(
        [min(a[i], b[i]) for i in range(dims)]
        + [max(a[dims + i], b[dims + i]) for i in range(dims)]
    )


def bounds_margin(a: Bounds, dims: int) -> float:
    """Return the sum of side lengths (used by the quadratic split)."""
    return sum(a[dims + i] - a[i] for i in range(dims))


def bounds_volume(a: Bounds, dims: int) -> float:
    """Return the k-dimensional volume of the box."""
    volume = 1.0
    for i in range(dims):
        volume *= a[dims + i] - a[i]
    return volume


def _union_many(items: Sequence[Bounds], dims: int) -> Bounds:
    lows = [min(b[i] for b in items) for i in range(dims)]
    highs = [max(b[dims + i] for b in items) for i in range(dims)]
    return tuple(lows + highs)


class _Node:
    """An R-tree node; leaves hold ``(bounds, item)``, inner nodes hold children."""

    __slots__ = ("is_leaf", "bounds", "entries", "children")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.bounds: Bounds | None = None
        self.entries: list[tuple[Bounds, Any]] = [] if is_leaf else None
        self.children: list["_Node"] = None if is_leaf else []

    def recompute_bounds(self, dims: int) -> None:
        if self.is_leaf:
            boxes = [b for b, _ in self.entries]
        else:
            boxes = [c.bounds for c in self.children]
        self.bounds = _union_many(boxes, dims) if boxes else None


@dataclass(frozen=True, slots=True)
class RTreeStats:
    """Structural statistics, used for the Table 4 size accounting."""

    dims: int
    height: int
    num_items: int
    num_leaves: int
    num_inner: int

    @property
    def num_nodes(self) -> int:
        return self.num_leaves + self.num_inner


class RTree:
    """A k-dimensional R-tree over ``(bounds, item)`` entries.

    ``split`` selects the overflow policy: Guttman's ``"quadratic"``
    (default) or the R*-tree's margin/overlap-driven ``"rstar"`` split
    (Beckmann et al.), the popular variant the paper's related work
    mentions.  Bulk loading (STR) is unaffected by the choice.
    """

    def __init__(
        self, dims: int = 2, capacity: int = 16, split: str = "quadratic"
    ) -> None:
        if dims < 1:
            raise ValueError("dims must be positive")
        if capacity < 2:
            raise ValueError("node capacity must be at least 2")
        if split not in ("quadratic", "rstar"):
            raise ValueError("split must be 'quadratic' or 'rstar'")
        self._dims = dims
        self._capacity = capacity
        self._split_policy = split
        self._min_fill = max(1, capacity * 2 // 5)
        self._root: _Node | None = None
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[tuple[Bounds, Any]],
        dims: int = 2,
        capacity: int = 16,
    ) -> "RTree":
        """Build a tree from all entries at once via sort-tile-recursive.

        STR produces nearly square, fully packed leaves; this is the
        offline build path used for every benchmark index.
        """
        tree = cls(dims=dims, capacity=capacity)
        items = list(entries)
        tree._size = len(items)
        if not items:
            return tree
        leaves = [
            tree._make_leaf(group)
            for group in _str_partition(items, capacity, dims, key_offset=0)
        ]
        level = leaves
        while len(level) > 1:
            pseudo = [(node.bounds, node) for node in level]
            level = [
                tree._make_inner([node for _, node in group])
                for group in _str_partition(pseudo, capacity, dims, key_offset=0)
            ]
        tree._root = level[0]
        return tree

    @classmethod
    def from_points(
        cls,
        points: Iterable[tuple[Sequence[float], Any]],
        dims: int = 2,
        capacity: int = 16,
    ) -> "RTree":
        """Bulk-load from ``(coordinates, item)`` pairs (degenerate boxes)."""
        entries = [
            (tuple(coords) + tuple(coords), item) for coords, item in points
        ]
        return cls.bulk_load(entries, dims=dims, capacity=capacity)

    def _make_leaf(self, group: list[tuple[Bounds, Any]]) -> _Node:
        node = _Node(is_leaf=True)
        node.entries = list(group)
        node.recompute_bounds(self._dims)
        return node

    def _make_inner(self, children: list[_Node]) -> _Node:
        node = _Node(is_leaf=False)
        node.children = children
        node.recompute_bounds(self._dims)
        return node

    # ------------------------------------------------------------------
    # Insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, bounds: Bounds, item: Any) -> None:
        """Insert one entry; splits overflowing nodes quadratically."""
        if len(bounds) != 2 * self._dims:
            raise ValueError(
                f"bounds must have {2 * self._dims} values, got {len(bounds)}"
            )
        self._size += 1
        if self._root is None:
            self._root = self._make_leaf([(bounds, item)])
            return
        split = self._insert_into(self._root, bounds, item)
        if split is not None:
            self._root = self._make_inner([self._root, split])

    def insert_point(self, coords: Sequence[float], item: Any) -> None:
        """Insert a point entry (degenerate box)."""
        self.insert(tuple(coords) + tuple(coords), item)

    def _insert_into(self, node: _Node, bounds: Bounds, item: Any) -> _Node | None:
        dims = self._dims
        if node.is_leaf:
            node.entries.append((bounds, item))
            node.bounds = (
                bounds if node.bounds is None
                else bounds_union(node.bounds, bounds, dims)
            )
            if len(node.entries) > self._capacity:
                return self._split_leaf(node)
            return None
        child = self._choose_subtree(node, bounds)
        split = self._insert_into(child, bounds, item)
        node.bounds = bounds_union(node.bounds, bounds, dims)
        if split is not None:
            node.children.append(split)
            node.bounds = bounds_union(node.bounds, split.bounds, dims)
            if len(node.children) > self._capacity:
                return self._split_inner(node)
        return None

    def _choose_subtree(self, node: _Node, bounds: Bounds) -> _Node:
        # Volume enlargement alone degenerates on point-heavy workloads:
        # collinear or coordinate-sharing entries make every volume 0, so
        # the choice falls through to margin (perimeter) enlargement, which
        # stays discriminating for degenerate boxes.
        dims = self._dims
        best: _Node | None = None
        best_key: tuple[float, float, float, float] | None = None
        for child in node.children:
            volume = bounds_volume(child.bounds, dims)
            margin = bounds_margin(child.bounds, dims)
            union = bounds_union(child.bounds, bounds, dims)
            key = (
                bounds_volume(union, dims) - volume,
                bounds_margin(union, dims) - margin,
                volume,
                margin,
            )
            if best_key is None or key < best_key:
                best = child
                best_key = key
        assert best is not None
        return best

    def _split_entries(self, items: list, get_bounds):
        if self._split_policy == "rstar":
            return _rstar_split(items, get_bounds, self._dims, self._min_fill)
        return _quadratic_split(items, get_bounds, self._dims, self._min_fill)

    def _split_leaf(self, node: _Node) -> _Node:
        group_a, group_b = self._split_entries(node.entries, lambda e: e[0])
        node.entries = group_a
        node.recompute_bounds(self._dims)
        sibling = _Node(is_leaf=True)
        sibling.entries = group_b
        sibling.recompute_bounds(self._dims)
        return sibling

    def _split_inner(self, node: _Node) -> _Node:
        group_a, group_b = self._split_entries(node.children, lambda c: c.bounds)
        node.children = group_a
        node.recompute_bounds(self._dims)
        sibling = _Node(is_leaf=False)
        sibling.children = group_b
        sibling.recompute_bounds(self._dims)
        return sibling

    # ------------------------------------------------------------------
    # Deletion (find leaf, remove, condense-tree with reinsertion)
    # ------------------------------------------------------------------
    def delete(self, bounds: Bounds, item: Any) -> bool:
        """Remove one entry matching ``(bounds, item)``.

        Returns True iff an entry was removed.  Underflowing nodes are
        dissolved and their surviving entries reinserted (Guttman's
        condense-tree), so the tree stays balanced under churn.
        """
        if self._root is None:
            return False
        dims = self._dims
        orphans: list[tuple[Bounds, Any]] = []

        def remove_from(node: _Node) -> bool:
            if node.is_leaf:
                for i, (b, it) in enumerate(node.entries):
                    if it == item and b == bounds:
                        node.entries.pop(i)
                        node.recompute_bounds(dims)
                        return True
                return False
            for child in node.children:
                if child.bounds is not None and bounds_contain(
                    child.bounds, bounds, dims
                ):
                    if remove_from(child):
                        if (
                            (child.is_leaf and len(child.entries) < self._min_fill)
                            or (not child.is_leaf and len(child.children) < 2)
                        ):
                            node.children.remove(child)
                            orphans.extend(_collect_entries(child))
                        node.recompute_bounds(dims)
                        return True
            return False

        if not remove_from(self._root):
            return False
        self._size -= 1
        # Normalize the root *before* reinsertion: shrink a root that lost
        # all but one child, and drop an emptied leaf root unconditionally
        # (insert() rebuilds from None), so no empty leaf can survive as
        # the root while orphans are pending and show up in stats().
        while (
            not self._root.is_leaf and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
        if self._root.is_leaf and not self._root.entries:
            self._root = None
        self._size -= len(orphans)
        for orphan_bounds, orphan_item in orphans:
            self.insert(orphan_bounds, orphan_item)
        return True

    def delete_point(self, coords: Sequence[float], item: Any) -> bool:
        """Remove a point entry (degenerate box)."""
        return self.delete(tuple(coords) + tuple(coords), item)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, query: Bounds) -> Iterator[Any]:
        """Yield every item whose bounds intersect ``query``.

        With observability enabled the traversal is served by an
        instrumented twin that counts nodes visited, leaves scanned and
        entries tested (``repro_rtree_*`` counters); the plain loop below
        stays increment-free so a disabled run pays only this one check.
        """
        if self._root is None:
            return
        if _obs_enabled():
            yield from self._search_counted(query)
            return
        dims = self._dims
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bounds is None or not bounds_intersect(node.bounds, query, dims):
                continue
            if node.is_leaf:
                for bounds, item in node.entries:
                    if bounds_intersect(bounds, query, dims):
                        yield item
            else:
                stack.extend(node.children)

    def _search_counted(self, query: Bounds) -> Iterator[Any]:
        """The metered twin of :meth:`search`.

        Counts accumulate in locals and flush once in ``finally``, which
        also runs when an early-terminating consumer (``any_intersecting``)
        closes the generator after the first hit — so per-query work is
        attributed even for abandoned searches.
        """
        dims = self._dims
        nodes = leaves = items = 0
        stack = [self._root]
        try:
            while stack:
                node = stack.pop()
                nodes += 1
                if node.bounds is None or not bounds_intersect(
                    node.bounds, query, dims
                ):
                    continue
                if node.is_leaf:
                    leaves += 1
                    for bounds, item in node.entries:
                        items += 1
                        if bounds_intersect(bounds, query, dims):
                            yield item
                else:
                    stack.extend(node.children)
        finally:
            _inst.RTREE_SEARCHES.inc()
            _inst.RTREE_NODES_VISITED.inc(nodes)
            _inst.RTREE_LEAVES_SCANNED.inc(leaves)
            _inst.RTREE_ITEMS_TESTED.inc(items)

    def search_all(self, query: Bounds) -> list[Any]:
        """Return all items intersecting ``query`` as a list."""
        return list(self.search(query))

    def any_intersecting(self, query: Bounds) -> Any | None:
        """Return one item intersecting ``query``, or None.

        The early-terminating variant used by the RangeReach methods: a
        positive answer only needs *one* witness.
        """
        for item in self.search(query):
            return item
        return None

    def count_intersecting(self, query: Bounds) -> int:
        """Return the number of items intersecting ``query``."""
        return sum(1 for _ in self.search(query))

    def nearest(
        self,
        coords: Sequence[float],
        k: int = 1,
        item_filter: Callable[[Any], bool] | None = None,
    ) -> list[tuple[float, Any]]:
        """Return the ``k`` entries nearest to ``coords`` (best-first).

        Classic incremental nearest-neighbor over the R-tree: a priority
        queue ordered by MINDIST expands the most promising node first,
        so the search touches only the neighborhood of the query point.
        Returns ``(distance, item)`` pairs, nearest first; distance to a
        box is the distance to its closest face (0 if inside).

        Args:
            coords: query point, one value per dimension.
            k: how many neighbors.
            item_filter: optional predicate; entries failing it are
                skipped (but still guide the traversal).
        """
        if len(coords) != self._dims:
            raise ValueError(f"query point must have {self._dims} coordinates")
        if k < 1:
            raise ValueError("k must be positive")
        if self._root is None:
            return []
        dims = self._dims

        def mindist(bounds: Bounds) -> float:
            total = 0.0
            for i in range(dims):
                c = coords[i]
                if c < bounds[i]:
                    d = bounds[i] - c
                elif c > bounds[dims + i]:
                    d = c - bounds[dims + i]
                else:
                    continue
                total += d * d
            return math.sqrt(total)

        results: list[tuple[float, Any]] = []
        nodes = leaves = items = 0
        counter = 0  # tie-breaker: Python can't compare nodes/items
        heap: list[tuple[float, int, bool, Any]] = [
            (mindist(self._root.bounds), counter, False, self._root)
        ]
        while heap:
            distance, _, is_entry, payload = heapq.heappop(heap)
            if len(results) == k and distance > results[-1][0]:
                break
            if is_entry:
                results.append((distance, payload))
                results.sort(key=lambda pair: pair[0])
                if len(results) > k:
                    results.pop()
            elif payload.is_leaf:
                nodes += 1
                leaves += 1
                for bounds, item in payload.entries:
                    if item_filter is not None and not item_filter(item):
                        continue
                    counter += 1
                    items += 1
                    heapq.heappush(
                        heap, (mindist(bounds), counter, True, item)
                    )
            else:
                nodes += 1
                for child in payload.children:
                    counter += 1
                    heapq.heappush(
                        heap, (mindist(child.bounds), counter, False, child)
                    )
        if _obs_enabled():
            _inst.RTREE_SEARCHES.inc()
            _inst.RTREE_NODES_VISITED.inc(nodes)
            _inst.RTREE_LEAVES_SCANNED.inc(leaves)
            _inst.RTREE_ITEMS_TESTED.inc(items)
        return results

    # ------------------------------------------------------------------
    # Flattened form (persistence)
    # ------------------------------------------------------------------
    def flatten(self) -> dict:
        """Reduce the tree to flat preorder arrays (no object graph).

        Children and leaf entries are emitted in their in-node order, so
        a tree rebuilt by :meth:`from_flat` traverses — and therefore
        answers :meth:`search` — in exactly the same order as this one.
        Node bounds are stored too (``node_bounds``, ``2 * dims`` per
        node), so the rebuild is a straight array walk with no bound
        recomputation.  Items must be integers (every index in this
        library stores component or vertex ids).
        """
        from array import array

        node_kinds = array("q")
        child_counts = array("q")
        entry_counts = array("q")
        node_bounds = array("d")
        entry_bounds = array("d")
        entry_items = array("q")

        width = 2 * self._dims

        def visit(node: _Node) -> None:
            node_kinds.append(1 if node.is_leaf else 0)
            # Only an emptied root leaf has no bounds; store zeros and
            # restore None from the zero entry count on rebuild.
            node_bounds.extend(
                node.bounds if node.bounds is not None else (0.0,) * width
            )
            if node.is_leaf:
                child_counts.append(0)
                entry_counts.append(len(node.entries))
                for bounds, item in node.entries:
                    if not isinstance(item, int):
                        raise ValueError(
                            "only integer-item R-trees can be flattened, "
                            f"got {type(item).__name__}"
                        )
                    entry_bounds.extend(bounds)
                    entry_items.append(item)
            else:
                child_counts.append(len(node.children))
                entry_counts.append(0)
                for child in node.children:
                    visit(child)

        if self._root is not None:
            visit(self._root)
        return {
            "dims": self._dims,
            "capacity": self._capacity,
            "split": self._split_policy,
            "size": self._size,
            "node_kinds": node_kinds,
            "child_counts": child_counts,
            "entry_counts": entry_counts,
            "node_bounds": node_bounds,
            "entry_bounds": entry_bounds,
            "entry_items": entry_items,
        }

    @classmethod
    def from_flat(
        cls,
        *,
        dims: int,
        capacity: int,
        split: str,
        size: int,
        node_kinds: Sequence[int],
        child_counts: Sequence[int],
        entry_counts: Sequence[int],
        node_bounds: Sequence[float],
        entry_bounds: Sequence[float],
        entry_items: Sequence[int],
    ) -> "RTree":
        """Rebuild a tree from :meth:`flatten` arrays.

        Raises ``ValueError`` when the arrays are structurally
        inconsistent (wrong lengths, dangling cursors, bad counts).
        """
        tree = cls(dims=dims, capacity=capacity, split=split)
        num_nodes = len(node_kinds)
        if len(child_counts) != num_nodes or len(entry_counts) != num_nodes:
            raise ValueError("flattened node arrays disagree in length")
        width = 2 * dims
        if len(node_bounds) != num_nodes * width:
            raise ValueError("flattened node bounds disagree with node count")
        total_entries = sum(entry_counts)
        if len(entry_items) != total_entries:
            raise ValueError("flattened entry items disagree with counts")
        if len(entry_bounds) != total_entries * width:
            raise ValueError("flattened entry bounds disagree with counts")
        if num_nodes == 0:
            if size != 0:
                raise ValueError("empty flattened tree declares a size")
            return tree
        if size != total_entries:
            raise ValueError(
                f"flattened tree declares {size} items but carries "
                f"{total_entries}"
            )
        # Pre-zip the flat float columns into per-node/per-entry tuples
        # (C-speed); the pre-order walk below only slices lists.
        bounds_it = iter(node_bounds)
        per_node_bounds = list(zip(*([bounds_it] * width)))
        entries_it = iter(entry_bounds)
        per_entry_bounds = list(zip(*([entries_it] * width)))
        entries = list(zip(per_entry_bounds, entry_items))

        # Iterative pre-order reconstruction.  ``stack`` holds the inner
        # nodes still owed children; nodes were flattened parent-first, so
        # each new node attaches to the deepest unsatisfied parent.  The
        # nodes come from checksummed snapshot payloads, so construction
        # bypasses ``_Node.__init__`` and assigns the slots directly.
        new = _Node.__new__
        entry_cursor = 0
        root = None
        stack: list[tuple[_Node, int]] = []  # (inner node, children owed)
        for i in range(num_nodes):
            if root is not None and not stack:
                raise ValueError(
                    f"{num_nodes - i} flattened nodes unreachable from the "
                    "root"
                )
            node = new(_Node)
            if node_kinds[i]:
                node.is_leaf = True
                node.children = None
                e = entry_cursor
                entry_cursor = e + entry_counts[i]
                node.entries = entries[e:entry_cursor]
                node.bounds = per_node_bounds[i] if node.entries else None
            else:
                count = child_counts[i]
                if count < 1:
                    raise ValueError("flattened inner node has no children")
                node.is_leaf = False
                node.entries = None
                node.children = []
                node.bounds = per_node_bounds[i]
            if root is None:
                root = node
            else:
                parent, owed = stack[-1]
                parent.children.append(node)
                if owed == 1:
                    stack.pop()
                else:
                    stack[-1] = (parent, owed - 1)
            if not node.is_leaf:
                stack.append((node, child_counts[i]))
        if stack:
            raise ValueError("flattened node cursor ran past the end")
        tree._root = root
        tree._size = size
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def dims(self) -> int:
        return self._dims

    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> RTreeStats:
        """Return structural statistics (height, node counts)."""
        if self._root is None:
            return RTreeStats(self._dims, 0, 0, 0, 0)
        height = 0
        leaves = 0
        inner = 0
        stack = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            height = max(height, depth)
            if node.is_leaf:
                leaves += 1
            else:
                inner += 1
                stack.extend((c, depth + 1) for c in node.children)
        return RTreeStats(self._dims, height, self._size, leaves, inner)

    def items(self) -> Iterator[tuple[Bounds, Any]]:
        """Iterate over all stored ``(bounds, item)`` entries."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on failure.

        Used by the property-based tests after random insert workloads.
        """
        if self._root is None:
            assert self._size == 0
            return
        dims = self._dims
        count = 0
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        leaf_depths: set[int] = set()
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                leaf_depths.add(depth)
                count += len(node.entries)
                for bounds, _ in node.entries:
                    assert bounds_contain(node.bounds, bounds, dims)
            else:
                assert node.children, "inner node with no children"
                for child in node.children:
                    assert bounds_contain(node.bounds, child.bounds, dims)
                    stack.append((child, depth + 1))
        assert count == self._size, f"item count {count} != size {self._size}"
        assert len(leaf_depths) == 1, f"leaves at multiple depths: {leaf_depths}"


def _collect_entries(node: _Node) -> list[tuple[Bounds, Any]]:
    """Gather every leaf entry under a node (for reinsertion)."""
    out: list[tuple[Bounds, Any]] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            out.extend(current.entries)
        else:
            stack.extend(current.children)
    return out


# ----------------------------------------------------------------------
# Packing / splitting helpers
# ----------------------------------------------------------------------
def _str_partition(
    entries: list[tuple[Bounds, Any]],
    capacity: int,
    dims: int,
    key_offset: int,
) -> list[list[tuple[Bounds, Any]]]:
    """Partition entries into groups of <= capacity via sort-tile-recursive."""

    def center(bounds: Bounds, axis: int) -> float:
        return (bounds[axis] + bounds[dims + axis]) / 2.0

    def tile(block: list[tuple[Bounds, Any]], axis: int) -> list[list[tuple[Bounds, Any]]]:
        if len(block) <= capacity:
            return [block]
        block.sort(key=lambda e: center(e[0], axis))
        if axis == dims - 1:
            return [
                block[i : i + capacity] for i in range(0, len(block), capacity)
            ]
        # Number of slabs along this axis so the remaining axes tile evenly.
        num_leaves = math.ceil(len(block) / capacity)
        slabs = math.ceil(num_leaves ** (1.0 / (dims - axis)))
        slab_size = math.ceil(len(block) / slabs)
        groups: list[list[tuple[Bounds, Any]]] = []
        for i in range(0, len(block), slab_size):
            groups.extend(tile(block[i : i + slab_size], axis + 1))
        return groups

    return tile(list(entries), key_offset)


def _overlap_volume(a: Bounds, b: Bounds, dims: int) -> float:
    """Volume of the intersection of two boxes (0 when disjoint)."""
    volume = 1.0
    for i in range(dims):
        lo = max(a[i], b[i])
        hi = min(a[dims + i], b[dims + i])
        if hi <= lo:
            return 0.0
        volume *= hi - lo
    return volume


def _rstar_split(items: list, get_bounds, dims: int, min_fill: int):
    """R*-tree split: choose the axis with minimal margin sum, then the
    distribution along it with minimal overlap (ties: minimal volume)."""
    assert len(items) >= 2
    min_fill = max(1, min_fill)
    best_axis = 0
    best_margin = math.inf
    for axis in range(dims):
        margin_sum = 0.0
        ordered = sorted(items, key=lambda it: (
            get_bounds(it)[axis], get_bounds(it)[dims + axis]
        ))
        for k in range(min_fill, len(ordered) - min_fill + 1):
            left = _union_many([get_bounds(it) for it in ordered[:k]], dims)
            right = _union_many([get_bounds(it) for it in ordered[k:]], dims)
            margin_sum += bounds_margin(left, dims) + bounds_margin(right, dims)
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_axis = axis
    ordered = sorted(items, key=lambda it: (
        get_bounds(it)[best_axis], get_bounds(it)[dims + best_axis]
    ))
    best_k = min_fill
    best_score = (math.inf, math.inf)
    for k in range(min_fill, len(ordered) - min_fill + 1):
        left = _union_many([get_bounds(it) for it in ordered[:k]], dims)
        right = _union_many([get_bounds(it) for it in ordered[k:]], dims)
        score = (
            _overlap_volume(left, right, dims),
            bounds_volume(left, dims) + bounds_volume(right, dims),
        )
        if score < best_score:
            best_score = score
            best_k = k
    return ordered[:best_k], ordered[best_k:]


def _quadratic_split(items: list, get_bounds, dims: int, min_fill: int):
    """Guttman's quadratic split: returns the two groups.

    Waste and growth compare ``(volume, margin)`` lexicographically: on
    point datasets with shared coordinates (collinear venues, grid-aligned
    check-ins) every volume is 0 and a volume-only comparison degenerates
    to "always pick the first pair", so margin breaks those ties.
    """
    assert len(items) >= 2
    # Pick the pair of seeds wasting the most (volume, margin) if grouped.
    worst = (-math.inf, -math.inf)
    seed_a = seed_b = 0
    for i in range(len(items)):
        bi = get_bounds(items[i])
        for j in range(i + 1, len(items)):
            bj = get_bounds(items[j])
            union = bounds_union(bi, bj, dims)
            waste = (
                bounds_volume(union, dims)
                - bounds_volume(bi, dims)
                - bounds_volume(bj, dims),
                bounds_margin(union, dims)
                - bounds_margin(bi, dims)
                - bounds_margin(bj, dims),
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    group_a = [items[seed_a]]
    group_b = [items[seed_b]]
    bounds_a = get_bounds(items[seed_a])
    bounds_b = get_bounds(items[seed_b])
    rest = [it for k, it in enumerate(items) if k not in (seed_a, seed_b)]
    for idx, item in enumerate(rest):
        remaining = len(rest) - idx
        # Force assignment when a group must absorb all leftovers to
        # reach the minimum fill.
        if len(group_a) + remaining <= min_fill:
            group_a.append(item)
            bounds_a = bounds_union(bounds_a, get_bounds(item), dims)
            continue
        if len(group_b) + remaining <= min_fill:
            group_b.append(item)
            bounds_b = bounds_union(bounds_b, get_bounds(item), dims)
            continue
        b = get_bounds(item)
        union_a = bounds_union(bounds_a, b, dims)
        union_b = bounds_union(bounds_b, b, dims)
        grow_a = (
            bounds_volume(union_a, dims) - bounds_volume(bounds_a, dims),
            bounds_margin(union_a, dims) - bounds_margin(bounds_a, dims),
        )
        grow_b = (
            bounds_volume(union_b, dims) - bounds_volume(bounds_b, dims),
            bounds_margin(union_b, dims) - bounds_margin(bounds_b, dims),
        )
        if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
            group_a.append(item)
            bounds_a = union_a
        else:
            group_b.append(item)
            bounds_b = union_b
    return group_a, group_b
