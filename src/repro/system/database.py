"""An updatable geosocial store with snapshot + delta-overlay serving.

Design: the raw adjacency structure is the source of truth; the expensive
reachability/spatial indexes are built per *snapshot*.  Instead of
discarding the snapshot on every write (the worst case for interleaved
update/query workloads), writes that arrive after a snapshot was built
are appended to a **delta log** and queries are answered as *base ∪
delta*:

* the indexed base query runs against the (possibly stale) snapshot from
  every union-graph-reachable snapshot vertex ("root");
* a bounded BFS over the delta edges — with the snapshot's interval
  labels deciding in O(1) whether a root reaches a delta-edge source —
  catches everything the stale snapshot misses, including venues created
  after the build, which are matched against the region by a linear scan.

Edge *removals* are absorbed exactly when the removed edge lives only in
the delta log; removing a snapshot edge invalidates the snapshot
(correctness first — no known interval labeling maintains deletions
incrementally).  The overlay BFS costs grow with the delta, so once the
logged operations exceed ``refresh_threshold`` the snapshot is dropped
and the next query rebuilds — the rebuild is thereby amortized over at
least ``refresh_threshold`` writes.  ``refresh_threshold=0`` restores the
old rebuild-per-write behavior.

The snapshot's query engine is the 3DReach transformation
(:class:`repro.core.GeosocialQueryEngine`), so besides the boolean
RangeReach the database answers counting, enumeration, thresholds and
nearest-reachable queries — all with base ∪ delta semantics.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.base import RangeReachBase
from repro.core.extensions import GeosocialQueryEngine
from repro.exec import UNSET as _UNSET_TIMEOUT
from repro.geometry import Point, Rect, as_rect
from repro.geosocial.network import GeosocialNetwork
from repro.graph.digraph import DiGraph
from repro.kernels import resolve_backend
from repro.obs import instruments as _inst
from repro.obs.metrics import enabled as _obs_enabled
from repro.obs.trace import span as _span
from repro.pipeline import BuildContext

DEFAULT_REFRESH_THRESHOLD = 64


class GeosocialDatabase(RangeReachBase):
    """A mutable geosocial network serving indexed RangeReach queries.

    Args:
        refresh_threshold: how many delta operations (new vertices and
            edges) a snapshot may accumulate before it is dropped and
            rebuilt on the next query.  ``0`` disables the overlay and
            rebuilds after every write.
        snapshot_dir: optional directory for persistent warm starts.  When
            it holds a snapshot written by ``repro.store``, the database
            loads it on construction and serves immediately — no labeling
            or R-tree construction — with later writes overlaid as usual.
            Every snapshot rebuild is then persisted back to the same
            directory (atomically), so a restarted process warm-starts
            from the latest built state.  A corrupt or incompatible
            snapshot raises :class:`repro.store.SnapshotError`.
        kernels: inner-loop backend (``"numpy"``/``"python"``) threaded
            into every snapshot build and warm start; ``None`` uses the
            process default (see :func:`repro.kernels.resolve_backend`).
            Snapshots on disk are backend-independent, so a snapshot
            saved under one backend warm-starts under the other.
    """

    def __init__(
        self,
        refresh_threshold: int = DEFAULT_REFRESH_THRESHOLD,
        snapshot_dir: str | None = None,
        kernels: str | None = None,
    ) -> None:
        if refresh_threshold < 0:
            raise ValueError("refresh_threshold must be non-negative")
        self._refresh_threshold = refresh_threshold
        self._snapshot_dir = snapshot_dir
        self.kernels = resolve_backend(kernels)
        self._graph = DiGraph(0)
        self._points: list[Point | None] = []
        self._kinds: list[str] = []
        self._edges: set[tuple[int, int]] = set()
        # Snapshot + delta state.
        self._engine: GeosocialQueryEngine | None = None
        self._snapshot_vertices = 0
        self._delta_succ: dict[int, list[int]] = {}
        self._delta_ops = 0
        # Counters surfaced by stats().
        self._rebuilds = 0
        self._overlay_queries = 0
        self._removal_refreshes = 0
        self._threshold_refreshes = 0
        self._warm_starts = 0
        self._snapshot_saves = 0
        if snapshot_dir is not None:
            self._try_warm_start(snapshot_dir)

    @classmethod
    def from_network(
        cls,
        network: GeosocialNetwork,
        *,
        refresh_threshold: int = DEFAULT_REFRESH_THRESHOLD,
        snapshot_dir: str | None = None,
        prefer_snapshot: bool = True,
        kernels: str | None = None,
    ) -> "GeosocialDatabase":
        """Create a database pre-populated from a saved network.

        When ``snapshot_dir`` already holds a persisted snapshot, the
        warm start wins and ``network`` is ignored (the snapshot embeds
        its own network); otherwise the adjacency, points and kinds are
        seeded from ``network`` and the first query builds (and, with
        ``snapshot_dir`` set, persists) the index snapshot.

        ``prefer_snapshot=False`` inverts the tie-break: ``network`` is
        authoritative and any snapshot in ``snapshot_dir`` is ignored on
        construction (the directory is still used for future persists).
        The sharded loader uses this when a shard's on-disk snapshot is
        known to disagree with the layout manifest.
        """
        if prefer_snapshot:
            database = cls(
                refresh_threshold=refresh_threshold,
                snapshot_dir=snapshot_dir,
                kernels=kernels,
            )
            if database._engine is None:
                database._seed_from_network(network)
            return database
        database = cls(refresh_threshold=refresh_threshold, kernels=kernels)
        database._snapshot_dir = snapshot_dir
        database._seed_from_network(network)
        return database

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_user(self) -> int:
        """Register a user; returns its vertex id."""
        v = self._graph.add_vertex()
        self._points.append(None)
        self._kinds.append("user")
        self._note_delta()
        return v

    def add_venue(self, x: float, y: float) -> int:
        """Register a venue at ``(x, y)``; returns its vertex id."""
        v = self._graph.add_vertex()
        self._points.append(Point(x, y))
        self._kinds.append("venue")
        self._note_delta()
        return v

    def add_follow(self, follower: int, followee: int) -> bool:
        """Record ``follower -> followee``; returns False if duplicate.

        Mutual follows are fine — the snapshot condensation collapses the
        resulting strongly connected components (delta edges may close
        cycles too; the overlay BFS does not require acyclicity).
        """
        self._check_follow_edge(follower, followee)
        return self._add_edge(follower, followee)

    def add_checkin(self, user: int, venue: int) -> bool:
        """Record a check-in; repeat check-ins deduplicate."""
        self._check_checkin_edge(user, venue)
        return self._add_edge(user, venue)

    def remove_follow(self, follower: int, followee: int) -> None:
        """Remove a follow edge (raises if absent or not a follow edge)."""
        self._check_follow_edge(follower, followee)
        self._remove_edge(follower, followee)

    def remove_checkin(self, user: int, venue: int) -> None:
        """Remove a check-in edge (raises if absent or not a check-in)."""
        self._check_checkin_edge(user, venue)
        self._remove_edge(user, venue)

    def _check_follow_edge(self, follower: int, followee: int) -> None:
        self._check_vertex(follower)
        self._check_vertex(followee)
        if self._kinds[followee] != "user" or self._kinds[follower] != "user":
            raise ValueError("follow edges connect users")

    def _check_checkin_edge(self, user: int, venue: int) -> None:
        self._check_vertex(user)
        self._check_vertex(venue)
        if self._kinds[user] != "user":
            raise ValueError(f"vertex {user} is not a user")
        if self._kinds[venue] != "venue":
            raise ValueError(f"vertex {venue} is not a venue")

    def _add_edge(self, source: int, target: int) -> bool:
        if source == target or (source, target) in self._edges:
            return False
        self._graph.add_edge(source, target)
        self._edges.add((source, target))
        if self._engine is not None:
            self._delta_succ.setdefault(source, []).append(target)
        self._note_delta()
        return True

    def _remove_edge(self, source: int, target: int) -> None:
        if (source, target) not in self._edges:
            raise ValueError(f"edge ({source}, {target}) not present")
        self._graph.remove_edge(source, target)
        self._edges.discard((source, target))
        if self._engine is None:
            return
        targets = self._delta_succ.get(source)
        if targets is not None and target in targets:
            # The edge never made it into the snapshot; dropping it from
            # the delta log restores the exact pre-insert state.
            targets.remove(target)
            if not targets:
                del self._delta_succ[source]
        else:
            # Deleting a snapshot edge cannot be patched incrementally:
            # force a rebuild on the next query (correctness first).
            self._removal_refreshes += 1
            if _obs_enabled():
                _inst.DB_REMOVAL_REFRESHES.inc()
            self._drop_snapshot()
            return
        self._sync_delta_gauges()

    def _note_delta(self) -> None:
        if self._engine is None:
            return
        self._delta_ops += 1
        if self._delta_ops > self._refresh_threshold:
            self._threshold_refreshes += 1
            if _obs_enabled():
                _inst.DB_THRESHOLD_REFRESHES.inc()
            self._drop_snapshot()
            return
        self._sync_delta_gauges()

    def _drop_snapshot(self) -> None:
        self._engine = None
        self._delta_succ = {}
        self._delta_ops = 0
        self._snapshot_vertices = 0
        self._sync_delta_gauges()

    def _sync_delta_gauges(self) -> None:
        if _obs_enabled():
            _inst.DB_DELTA_OPS.set(self._delta_ops)
            _inst.DB_DELTA_EDGES.set(
                sum(len(t) for t in self._delta_succ.values())
            )

    def _note_query(self, *, overlay: bool) -> None:
        if overlay:
            self._overlay_queries += 1
        if _obs_enabled():
            if overlay:
                _inst.DB_OVERLAY_QUERIES.inc()
            else:
                _inst.DB_SNAPSHOT_QUERIES.inc()

    # ------------------------------------------------------------------
    # Queries (base snapshot ∪ delta overlay)
    # ------------------------------------------------------------------
    name = "database"

    def range_reach(self, vertex: int, region: Rect) -> bool:
        """Can ``vertex`` geosocially reach ``region``?"""
        self._check_vertex(vertex)
        region = as_rect(region)
        engine = self._snapshot()
        if not self._has_delta():
            self._note_query(overlay=False)
            return engine.query(vertex, region)
        self._note_query(overlay=True)
        roots, delta_spatial, _ = self._overlay_frontier(vertex)
        for root in roots:
            if engine.query(root, region):
                return True
        points = self._points
        return any(region.contains_point(points[v]) for v in delta_spatial)

    def query(self, vertex: int, region: Rect) -> bool:
        """Protocol alias of :meth:`range_reach` (the unified name)."""
        return self.range_reach(vertex, region)

    def range_reach_many(
        self,
        pairs,
        executor=None,
        *,
        timeout=_UNSET_TIMEOUT,
    ) -> list[bool]:
        """Answer many ``(vertex, region)`` queries, delta-overlay aware.

        With no pending delta the whole batch goes straight to the
        snapshot engine's vectorized ``query_batch`` (or through
        ``executor``, a :class:`repro.exec.ParallelExecutor`).  With a
        delta, each query is rewritten into its overlay form — the
        delta-spatial check plus one snapshot sub-query per overlay
        root, with the per-vertex frontier computed once per distinct
        vertex — and the flattened sub-queries run as one snapshot
        batch.

        ``timeout`` propagates to ``executor.run`` as the per-batch
        deadline (``None`` lifts a constructor default; omitted keeps
        it); it is ignored without an executor.
        """
        pairs = [(vertex, as_rect(region)) for vertex, region in pairs]
        if not pairs:
            return []
        for vertex, _ in pairs:
            self._check_vertex(vertex)
        with _span("db.batch"):
            engine = self._snapshot()
            if not self._has_delta():
                for _ in pairs:
                    self._note_query(overlay=False)
                if executor is not None:
                    return executor.run(engine, pairs, timeout=timeout)
                return engine.query_batch(pairs)
            for _ in pairs:
                self._note_query(overlay=True)
            points = self._points
            frontier: dict[int, tuple[set[int], set[int], set[int]]] = {}
            sub_pairs: list[tuple[int, Rect]] = []
            plans: list[tuple[int, int, bool]] = []
            with _span("db.overlay_plan"):
                for vertex, region in pairs:
                    front = frontier.get(vertex)
                    if front is None:
                        front = frontier[vertex] = self._overlay_frontier(
                            vertex
                        )
                    roots, delta_spatial, _ = front
                    delta_hit = any(
                        region.contains_point(points[v])
                        for v in delta_spatial
                    )
                    start = len(sub_pairs)
                    if not delta_hit:
                        sub_pairs.extend((root, region) for root in roots)
                    plans.append((start, len(sub_pairs), delta_hit))
            if not sub_pairs:
                sub_answers: list[bool] = []
            elif executor is not None:
                sub_answers = executor.run(engine, sub_pairs, timeout=timeout)
            else:
                sub_answers = engine.query_batch(sub_pairs)
            return [
                delta_hit or any(sub_answers[start:end])
                for start, end, delta_hit in plans
            ]

    def query_batch(self, pairs) -> list[bool]:
        """Protocol alias of :meth:`range_reach_many` (no executor)."""
        return self.range_reach_many(pairs)

    def count_reachable(self, vertex: int, region: Rect) -> int:
        self._check_vertex(vertex)
        region = as_rect(region)
        engine = self._snapshot()
        if not self._has_delta():
            self._note_query(overlay=False)
            return engine.count(vertex, region)
        self._note_query(overlay=True)
        return len(self._overlay_witnesses(engine, vertex, region))

    def reachable_venues(self, vertex: int, region: Rect) -> list[int]:
        """All reachable spatial vertices inside ``region`` (sorted)."""
        self._check_vertex(vertex)
        region = as_rect(region)
        engine = self._snapshot()
        if not self._has_delta():
            self._note_query(overlay=False)
            return sorted(engine.witnesses(vertex, region))
        self._note_query(overlay=True)
        return sorted(self._overlay_witnesses(engine, vertex, region))

    def reaches_at_least(self, vertex: int, region: Rect, k: int) -> bool:
        self._check_vertex(vertex)
        region = as_rect(region)
        engine = self._snapshot()
        if not self._has_delta():
            self._note_query(overlay=False)
            return engine.at_least(vertex, region, k)
        self._note_query(overlay=True)
        if k <= 0:
            return True
        # Witness sets of different roots may overlap, so the early-exit
        # threshold counts distinct venues.
        found: set[int] = set()
        roots, delta_spatial, _ = self._overlay_frontier(vertex)
        points = self._points
        for root in roots:
            for witness in engine.witnesses(root, region):
                found.add(witness)
                if len(found) >= k:
                    return True
        for v in delta_spatial:
            if region.contains_point(points[v]):
                found.add(v)
                if len(found) >= k:
                    return True
        return False

    def nearest_reachable(self, vertex: int, x: float, y: float):
        """Return ``(venue, distance)`` or None."""
        self._check_vertex(vertex)
        engine = self._snapshot()
        location = Point(x, y)
        if not self._has_delta():
            self._note_query(overlay=False)
            return engine.nearest(vertex, location)
        self._note_query(overlay=True)
        roots, delta_spatial, _ = self._overlay_frontier(vertex)
        best: tuple[float, int] | None = None
        for root in roots:
            hit = engine.nearest(root, location)
            if hit is not None:
                candidate = (hit[1], hit[0])
                if best is None or candidate < best:
                    best = candidate
        points = self._points
        for v in delta_spatial:
            candidate = (location.distance_to(points[v]), v)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        return best[1], best[0]

    def reaches(self, u: int, v: int) -> bool:
        """Exact vertex-to-vertex reachability over the live graph.

        Base ∪ delta semantics like every query: with a clean snapshot
        this is one interval-label probe; with a pending delta the
        overlay frontier settles post-snapshot targets and the labels
        settle snapshot targets.  A database that cannot build a
        snapshot yet (no venues) falls back to a plain BFS — the
        cross-shard boundary planner relies on this to traverse
        venue-less shards.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return True
        if self._engine is None:
            if not any(p is not None for p in self._points):
                return self._bfs_reaches(u, v)
            self._snapshot()
        engine = self._engine
        assert engine is not None
        if not self._has_delta():
            return engine.reaches(u, v)
        roots, _, visited = self._overlay_frontier(u)
        if v in visited:
            return True
        if v < self._snapshot_vertices:
            return any(engine.reaches(root, v) for root in roots)
        return False

    def reaches_many(self, u: int, targets) -> list[bool]:
        """Batched :meth:`reaches`: one source, many targets.

        The boundary-graph planner resolves a shard's whole exit set in
        one call; with a clean snapshot the batch collapses into a
        single vectorized label sweep (numpy backend) instead of one
        python probe per exit candidate.
        """
        self._check_vertex(u)
        targets = list(targets)
        for target in targets:
            self._check_vertex(target)
        if not targets:
            return []
        if self._engine is None:
            if not any(p is not None for p in self._points):
                visited = self._bfs_visited(u)
                return [t == u or t in visited for t in targets]
            self._snapshot()
        engine = self._engine
        assert engine is not None
        if not self._has_delta():
            return engine.reaches_many(u, targets)
        roots, _, visited = self._overlay_frontier(u)
        snapshot_n = self._snapshot_vertices
        answers = []
        for t in targets:
            if t == u or t in visited:
                answers.append(True)
            elif t < snapshot_n:
                answers.append(any(engine.reaches(root, t) for root in roots))
            else:
                answers.append(False)
        return answers

    def _bfs_reaches(self, u: int, v: int) -> bool:
        graph = self._graph
        visited = {u}
        queue: deque[int] = deque([u])
        while queue:
            w = queue.popleft()
            for t in graph.successors(w):
                if t == v:
                    return True
                if t not in visited:
                    visited.add(t)
                    queue.append(t)
        return False

    def _bfs_visited(self, u: int) -> set[int]:
        """Every vertex reachable from ``u`` over the live graph."""
        graph = self._graph
        visited = {u}
        queue: deque[int] = deque([u])
        while queue:
            w = queue.popleft()
            for t in graph.successors(w):
                if t not in visited:
                    visited.add(t)
                    queue.append(t)
        return visited

    def size_bytes(self) -> int:
        """Index footprint of the current snapshot (0 while stale)."""
        return 0 if self._engine is None else self._engine.size_bytes()

    # ------------------------------------------------------------------
    # Delta overlay
    # ------------------------------------------------------------------
    def _has_delta(self) -> bool:
        return bool(self._delta_succ) or (
            self._graph.num_vertices > self._snapshot_vertices
        )

    def _overlay_frontier(
        self, vertex: int
    ) -> tuple[set[int], set[int], set[int]]:
        """Traverse the union graph from ``vertex`` without expanding the
        snapshot.

        Returns ``(roots, delta_spatial, visited)``: the snapshot
        vertices whose *indexed* base reach covers everything reachable
        through snapshot edges, the post-snapshot spatial vertices
        reached, and every vertex the delta BFS touched directly (used
        by :meth:`reaches` to settle post-snapshot targets).  The BFS
        only ever walks delta edges; reachability *within* the snapshot is
        decided by the interval labels (``engine.reaches``), so the cost
        is bounded by the delta size, not the graph size.
        """
        engine = self._engine
        assert engine is not None
        snapshot_n = self._snapshot_vertices
        adjacency = self._delta_succ
        # Delta edges can also start at snapshot vertices; those sources
        # are "activated" once any root is known to reach them.
        pending = {s for s in adjacency if s < snapshot_n}
        roots: set[int] = set()
        delta_spatial: set[int] = set()
        visited = {vertex}
        queue: deque[int] = deque([vertex])
        expanded = 0
        with _span("db.overlay_frontier"):
            while queue:
                u = queue.popleft()
                expanded += 1
                if u < snapshot_n:
                    roots.add(u)
                    activated = [
                        s for s in pending if s == u or engine.reaches(u, s)
                    ]
                    for s in activated:
                        pending.discard(s)
                        for t in adjacency[s]:
                            if t not in visited:
                                visited.add(t)
                                queue.append(t)
                else:
                    if self._points[u] is not None:
                        delta_spatial.add(u)
                    for t in adjacency.get(u, ()):
                        if t not in visited:
                            visited.add(t)
                            queue.append(t)
        if _obs_enabled():
            _inst.DB_DELTA_EXPANSIONS.inc(expanded)
        return roots, delta_spatial, visited

    def _overlay_witnesses(
        self, engine: GeosocialQueryEngine, vertex: int, region: Rect
    ) -> set[int]:
        roots, delta_spatial, _ = self._overlay_frontier(vertex)
        out: set[int] = set()
        for root in roots:
            out.update(engine.witnesses(root, region))
        points = self._points
        out.update(
            v for v in delta_spatial if region.contains_point(points[v])
        )
        return out

    # ------------------------------------------------------------------
    # Snapshot management
    # ------------------------------------------------------------------
    def _try_warm_start(self, snapshot_dir: str) -> None:
        """Load a persisted snapshot, if one exists, and serve from it.

        An empty/absent directory is a normal cold start; a present but
        unreadable snapshot raises ``SnapshotError`` (a corrupt store
        should be loud, not silently rebuilt over).
        """
        from pathlib import Path

        from repro.store import MANIFEST_NAME

        if not (Path(snapshot_dir) / MANIFEST_NAME).exists():
            return
        with _span("db.warm_start"):
            context = BuildContext.load(snapshot_dir, kernels=self.kernels)
            self._seed_from_network(context.network)
            self._engine = GeosocialQueryEngine(
                context.condensed(), context=context
            )
            self._snapshot_vertices = context.network.num_vertices
        self._warm_starts += 1

    def _seed_from_network(self, network: GeosocialNetwork) -> None:
        """Adopt a network's vertices, points, kinds and edges.

        The live adjacency is mutable; it is rebuilt as a fresh copy so
        later writes never alias an immutable snapshot artifact.
        """
        n = network.num_vertices
        self._graph = DiGraph.from_edges(n, list(network.graph.edges()))
        self._points = list(network.points)
        if network.kinds is not None:
            self._kinds = list(network.kinds)
        else:
            self._kinds = [
                "venue" if p is not None else "user"
                for p in network.points
            ]
        self._edges = set(self._graph.edges())

    def _persist_snapshot(self, context: BuildContext) -> None:
        if self._snapshot_dir is None:
            return
        context.save(self._snapshot_dir)
        self._snapshot_saves += 1

    def _snapshot(self) -> GeosocialQueryEngine:
        if self._engine is None:
            if not any(p is not None for p in self._points):
                raise ValueError("database has no venues yet")
            with _span("db.rebuild"):
                started = time.perf_counter()
                network = GeosocialNetwork(
                    self._graph, list(self._points), kinds=list(self._kinds),
                    name="live",
                )
                # Build through the shared pipeline so the rebuild's
                # condensation/labeling land in the pipeline metrics and
                # future snapshot artifacts can be shared.
                context = BuildContext(network, kernels=self.kernels)
                self._engine = GeosocialQueryEngine(
                    context.condensed(), context=context
                )
                elapsed = time.perf_counter() - started
            self._snapshot_vertices = self._graph.num_vertices
            self._delta_succ = {}
            self._delta_ops = 0
            self._rebuilds += 1
            if _obs_enabled():
                _inst.DB_REBUILDS.inc()
                _inst.DB_REBUILD_SECONDS.observe(elapsed)
            self._sync_delta_gauges()
            self._persist_snapshot(context)
        return self._engine

    def refresh(self) -> None:
        """Eagerly rebuild the snapshot (e.g. during an idle period)."""
        self._drop_snapshot()
        self._snapshot()

    @property
    def is_stale(self) -> bool:
        """True iff the next query will rebuild the snapshot.

        A pending delta does *not* make the database stale: the overlay
        serves exact answers without a rebuild (see :attr:`delta_size`).
        """
        return self._engine is None

    @property
    def delta_size(self) -> int:
        """Operations logged against the current snapshot."""
        return self._delta_ops

    @property
    def refresh_threshold(self) -> int:
        return self._refresh_threshold

    @property
    def snapshot_dir(self) -> str | None:
        """Directory persisted snapshots go to (None = in-memory only)."""
        return self._snapshot_dir

    @property
    def num_rebuilds(self) -> int:
        return self._rebuilds

    def stats(self) -> dict[str, int]:
        """Serving counters: rebuilds, overlay usage and delta sizes."""
        return {
            "rebuilds": self._rebuilds,
            "overlay_queries": self._overlay_queries,
            "delta_size": self._delta_ops,
            "delta_edges": sum(len(t) for t in self._delta_succ.values()),
            "removal_refreshes": self._removal_refreshes,
            "threshold_refreshes": self._threshold_refreshes,
            "refresh_threshold": self._refresh_threshold,
            "warm_starts": self._warm_starts,
            "snapshot_saves": self._snapshot_saves,
            "kernels": self.kernels,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return sum(1 for k in self._kinds if k == "user")

    @property
    def num_venues(self) -> int:
        return sum(1 for k in self._kinds if k == "venue")

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._graph.num_vertices):
            raise IndexError(f"vertex {v} out of range")
