"""An updatable geosocial store with snapshot-based RangeReach indexing.

Design: updates (follows, check-ins, new users/venues) are appended to a
plain adjacency structure; the expensive reachability/spatial indexes are
built per *snapshot*, lazily, on the first query after a write.  This is
the standard batch-refresh integration for labeling-based indexes — the
raw graph is the source of truth, arbitrary updates (including
cycle-creating follow-backs and unfollows, which no known interval
labeling maintains incrementally) are absorbed by the rebuild, and the
snapshot serves reads at full indexed speed.

The snapshot's query engine is the 3DReach transformation
(:class:`repro.core.GeosocialQueryEngine`), so besides the boolean
RangeReach the database answers counting, enumeration, thresholds and
nearest-reachable queries.
"""

from __future__ import annotations

from repro.core.extensions import GeosocialQueryEngine
from repro.geometry import Point, Rect
from repro.geosocial.network import GeosocialNetwork
from repro.geosocial.scc_handling import condense_network
from repro.graph.digraph import DiGraph


class GeosocialDatabase:
    """A mutable geosocial network serving indexed RangeReach queries."""

    def __init__(self) -> None:
        self._graph = DiGraph(0)
        self._points: list[Point | None] = []
        self._kinds: list[str] = []
        self._edges: set[tuple[int, int]] = set()
        self._engine: GeosocialQueryEngine | None = None
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_user(self) -> int:
        """Register a user; returns its vertex id."""
        v = self._graph.add_vertex()
        self._points.append(None)
        self._kinds.append("user")
        self._engine = None
        return v

    def add_venue(self, x: float, y: float) -> int:
        """Register a venue at ``(x, y)``; returns its vertex id."""
        v = self._graph.add_vertex()
        self._points.append(Point(x, y))
        self._kinds.append("venue")
        self._engine = None
        return v

    def add_follow(self, follower: int, followee: int) -> bool:
        """Record ``follower -> followee``; returns False if duplicate.

        Mutual follows are fine — the snapshot condensation collapses the
        resulting strongly connected components.
        """
        self._check_vertex(follower)
        self._check_vertex(followee)
        if self._kinds[followee] != "user" or self._kinds[follower] != "user":
            raise ValueError("follow edges connect users")
        return self._add_edge(follower, followee)

    def add_checkin(self, user: int, venue: int) -> bool:
        """Record a check-in; repeat check-ins deduplicate."""
        self._check_vertex(user)
        self._check_vertex(venue)
        if self._kinds[user] != "user":
            raise ValueError(f"vertex {user} is not a user")
        if self._kinds[venue] != "venue":
            raise ValueError(f"vertex {venue} is not a venue")
        return self._add_edge(user, venue)

    def remove_follow(self, follower: int, followee: int) -> None:
        """Remove a follow edge (raises if absent)."""
        if (follower, followee) not in self._edges:
            raise ValueError(f"edge ({follower}, {followee}) not present")
        self._graph.remove_edge(follower, followee)
        self._edges.discard((follower, followee))
        self._engine = None

    def _add_edge(self, source: int, target: int) -> bool:
        if source == target or (source, target) in self._edges:
            return False
        self._graph.add_edge(source, target)
        self._edges.add((source, target))
        self._engine = None
        return True

    # ------------------------------------------------------------------
    # Queries (trigger a snapshot rebuild when stale)
    # ------------------------------------------------------------------
    def range_reach(self, vertex: int, region: Rect) -> bool:
        """Can ``vertex`` geosocially reach ``region``?"""
        self._check_vertex(vertex)
        return self._snapshot().range_reach(vertex, region)

    def count_reachable(self, vertex: int, region: Rect) -> int:
        self._check_vertex(vertex)
        return self._snapshot().count(vertex, region)

    def reachable_venues(self, vertex: int, region: Rect) -> list[int]:
        self._check_vertex(vertex)
        return self._snapshot().witnesses(vertex, region)

    def reaches_at_least(self, vertex: int, region: Rect, k: int) -> bool:
        self._check_vertex(vertex)
        return self._snapshot().at_least(vertex, region, k)

    def nearest_reachable(self, vertex: int, x: float, y: float):
        """Return ``(venue, distance)`` or None."""
        self._check_vertex(vertex)
        return self._snapshot().nearest(vertex, Point(x, y))

    # ------------------------------------------------------------------
    # Snapshot management
    # ------------------------------------------------------------------
    def _snapshot(self) -> GeosocialQueryEngine:
        if self._engine is None:
            if not any(p is not None for p in self._points):
                raise ValueError("database has no venues yet")
            network = GeosocialNetwork(
                self._graph, self._points, kinds=list(self._kinds),
                name="live",
            )
            condensed = condense_network(network)
            self._engine = GeosocialQueryEngine(condensed)
            self._rebuilds += 1
        return self._engine

    def refresh(self) -> None:
        """Eagerly rebuild the snapshot (e.g. during an idle period)."""
        self._engine = None
        self._snapshot()

    @property
    def is_stale(self) -> bool:
        """True iff the next query will rebuild the snapshot."""
        return self._engine is None

    @property
    def num_rebuilds(self) -> int:
        return self._rebuilds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return sum(1 for k in self._kinds if k == "user")

    @property
    def num_venues(self) -> int:
        return sum(1 for k in self._kinds if k == "venue")

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._graph.num_vertices):
            raise IndexError(f"vertex {v} out of range")
