"""System-integration layer.

The paper's conclusions mention "the incorporation of our methods in
existing systems for geosocial networks" as future work — and emphasize
that the methods need "no custom data structures".  This package shows
that integration: :class:`GeosocialDatabase` is a small OLTP-style facade
that accepts live updates (users, venues, follows, check-ins) and serves
the whole RangeReach query family from a lazily rebuilt index snapshot.
"""

from repro.system.database import GeosocialDatabase

__all__ = ["GeosocialDatabase"]
