"""System-integration layer.

The paper's conclusions mention "the incorporation of our methods in
existing systems for geosocial networks" as future work — and emphasize
that the methods need "no custom data structures".  This package shows
that integration: :class:`GeosocialDatabase` is a small OLTP-style facade
that accepts live updates (users, venues, follows, check-ins and their
removals) and serves the whole RangeReach query family from an index
snapshot plus a write-ahead delta overlay, so queries between writes do
not pay for a full rebuild.
"""

from repro.system.database import GeosocialDatabase

__all__ = ["GeosocialDatabase"]
