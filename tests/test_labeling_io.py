"""Unit tests for repro.labeling.io (labeling persistence)."""

import random

import pytest

from helpers import fig1_graph, random_dag
from repro.graph.traversal import all_reachable_sets
from repro.labeling import build_labeling, load_labeling, save_labeling


def test_round_trip_fig1(tmp_path):
    labeling = build_labeling(fig1_graph())
    path = tmp_path / "fig1.labels"
    save_labeling(labeling, path)
    loaded = load_labeling(path)
    assert loaded.post == labeling.post
    assert loaded.labels == labeling.labels
    assert loaded.parent == labeling.parent
    assert loaded.roots == labeling.roots
    assert loaded.stats() == labeling.stats()


def test_round_trip_preserves_query_behavior(tmp_path):
    rng = random.Random(13)
    g = random_dag(rng, 25, edge_probability=0.2)
    labeling = build_labeling(g)
    path = tmp_path / "random.labels"
    save_labeling(labeling, path)
    loaded = load_labeling(path)
    loaded.validate(all_reachable_sets(g))


def test_round_trip_empty(tmp_path):
    from repro.graph import DiGraph

    labeling = build_labeling(DiGraph(0))
    path = tmp_path / "empty.labels"
    save_labeling(labeling, path)
    loaded = load_labeling(path)
    assert loaded.num_vertices == 0


def test_rejects_wrong_magic(tmp_path):
    path = tmp_path / "bad.labels"
    path.write_text("something else\n")
    with pytest.raises(ValueError, match="not a repro interval labeling"):
        load_labeling(path)


def test_rejects_truncated_file(tmp_path):
    labeling = build_labeling(fig1_graph())
    path = tmp_path / "trunc.labels"
    save_labeling(labeling, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-2]) + "\n")
    with pytest.raises(ValueError, match="vertex records"):
        load_labeling(path)


def test_rejects_corrupt_label_count(tmp_path):
    labeling = build_labeling(fig1_graph())
    path = tmp_path / "corrupt.labels"
    save_labeling(labeling, path)
    text = path.read_text().splitlines()
    # inflate the declared label count of the first vertex record
    parts = text[3].split()
    parts[3] = str(int(parts[3]) + 1)
    text[3] = " ".join(parts)
    path.write_text("\n".join(text) + "\n")
    with pytest.raises(ValueError, match="declares"):
        load_labeling(path)


def test_rejects_malformed_header(tmp_path):
    path = tmp_path / "hdr.labels"
    path.write_text("# repro interval labeling v1\nnope\n")
    with pytest.raises(ValueError, match="size header"):
        load_labeling(path)
