"""Tests for the columnar snapshot layout (repro.geosocial.columnar)."""

from repro.geometry import Point, Rect
from repro.geosocial import (
    GeosocialNetwork,
    build_post_slabs,
    condense_network,
)
from repro.graph import DiGraph
from repro.labeling import build_labeling


def _network():
    # 1 <-> 2 form an SCC with two venues; 0 and 3 are spatial singletons;
    # 4 is a non-spatial user.
    graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 1), (4, 0), (4, 3)])
    points = [
        Point(0.0, 0.0),
        Point(1.0, 1.0),
        Point(2.0, 2.0),
        Point(3.0, 3.0),
        None,
    ]
    return GeosocialNetwork(graph, points)


def test_columns_csr_layout():
    condensed = condense_network(_network())
    columns = condensed.columns()
    assert columns.num_components == condensed.num_components
    assert columns.num_points == 4
    assert columns.offsets[0] == 0
    assert columns.offsets[-1] == 4
    # The columns agree point-for-point with points_of, order included.
    for component in range(condensed.num_components):
        lo, hi = columns.slice_of(component)
        points = condensed.points_of(component)
        members = condensed.spatial_members(component)
        assert hi - lo == len(points)
        for i, (point, vertex) in enumerate(zip(points, members)):
            assert columns.xs[lo + i] == point.x
            assert columns.ys[lo + i] == point.y
            assert columns.vertices[lo + i] == vertex


def test_columns_cached_on_condensed_network():
    condensed = condense_network(_network())
    assert condensed.columns() is condensed.columns()


def test_component_hits_region_matches_point_scan():
    condensed = condense_network(_network())
    regions = [
        Rect(0.5, 0.5, 2.5, 2.5),   # hits the SCC's venues
        Rect(2.9, 2.9, 3.1, 3.1),   # hits vertex 3 only
        Rect(5.0, 5.0, 6.0, 6.0),   # hits nothing
        Rect(0.0, 0.0, 3.0, 3.0),   # encloses everything
    ]
    for component in range(condensed.num_components):
        points = condensed.points_of(component)
        for region in regions:
            expected = any(region.contains_point(p) for p in points)
            assert condensed.component_hits_region(component, region) == expected


def test_post_slabs_align_with_labeling():
    condensed = condense_network(_network())
    labeling = build_labeling(condensed.dag)
    slabs = build_post_slabs(condensed, labeling)
    assert slabs.num_slots == labeling.num_vertices
    assert slabs.num_points == 4
    columns = condensed.columns()
    for slot, component in enumerate(labeling.vertex_at_post):
        lo, hi = slabs.offsets[slot], slabs.offsets[slot + 1]
        clo, chi = columns.slice_of(component)
        assert hi - lo == chi - clo
        assert list(slabs.xs[lo:hi]) == list(columns.xs[clo:chi])
        assert list(slabs.ys[lo:hi]) == list(columns.ys[clo:chi])


def test_post_slabs_with_stride():
    condensed = condense_network(_network())
    labeling = build_labeling(condensed.dag, post_stride=3)
    slabs = build_post_slabs(condensed, labeling)
    assert slabs.num_slots == labeling.num_vertices
    assert slabs.num_points == 4
