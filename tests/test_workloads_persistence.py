"""Unit tests for workload persistence."""

import pytest

from repro.datasets import make_network
from repro.workloads import QueryWorkload, load_workload, save_workload


@pytest.fixture(scope="module")
def batch():
    network = make_network("yelp", scale=0.0005, seed=6)
    workload = QueryWorkload(network, seed=9)
    return workload.batch_by_extent(5.0, (1, 4), 25)


def test_round_trip(tmp_path, batch):
    path = tmp_path / "workload.txt"
    save_workload(batch, path)
    assert load_workload(path) == batch


def test_round_trip_preserves_float_precision(tmp_path, batch):
    path = tmp_path / "workload.txt"
    save_workload(batch, path)
    loaded = load_workload(path)
    for original, restored in zip(batch, loaded):
        assert original.region.as_tuple() == restored.region.as_tuple()


def test_empty_workload(tmp_path):
    path = tmp_path / "empty.txt"
    save_workload([], path)
    assert load_workload(path) == []


def test_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 0 0 1 1\n")
    with pytest.raises(ValueError, match="not a repro workload"):
        load_workload(path)


def test_rejects_malformed_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("# repro query workload v1\n3 0.0 0.0 1.0\n")
    with pytest.raises(ValueError, match="malformed"):
        load_workload(path)
