"""Property-based tests for GeosocialDatabase against the BFS oracle.

Hypothesis drives interleaved updates and queries; after any prefix of
operations the database's answers must equal a naive oracle recomputed
from scratch on the same state — whether they are served from a fresh
snapshot or through the delta overlay.  A second suite runs the same
streams against two databases at once (overlay vs rebuild-per-write) and
demands byte-identical answers, covering the removal-forces-rebuild path
and the ``refresh_threshold`` boundary.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.system import GeosocialDatabase

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("user")),
        st.tuples(st.just("venue"), unit, unit),
        st.tuples(st.just("follow"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("checkin"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("unfollow"), st.integers(0, 200)),
        st.tuples(st.just("query"), st.integers(0, 30), unit, unit, unit, unit),
    ),
    max_size=50,
)


def _oracle_answer(users, venues, edges, vertex, region):
    n = len(users) + len(venues)
    id_map = {}
    points = []
    for i, u in enumerate(users):
        id_map[u] = i
        points.append(None)
    for j, (v, p) in enumerate(venues.items()):
        id_map[v] = len(users) + j
        points.append(p)
    graph = DiGraph(n)
    for a, b in edges:
        graph.add_edge(id_map[a], id_map[b])
    network = GeosocialNetwork(graph, points)
    return RangeReachOracle(network).query(id_map[vertex], region)


@given(ops)
@settings(max_examples=40, deadline=None)
def test_database_matches_oracle(sequence):
    db = GeosocialDatabase()
    users: list[int] = []
    venues: dict[int, Point] = {}
    edges: list[tuple[int, int]] = []
    follows: list[tuple[int, int]] = []

    for op in sequence:
        kind = op[0]
        if kind == "user":
            users.append(db.add_user())
        elif kind == "venue":
            vid = db.add_venue(op[1], op[2])
            venues[vid] = Point(op[1], op[2])
        elif kind == "follow" and len(users) >= 2:
            a = users[op[1] % len(users)]
            b = users[op[2] % len(users)]
            if db.add_follow(a, b):
                edges.append((a, b))
                follows.append((a, b))
        elif kind == "checkin" and users and venues:
            u = users[op[1] % len(users)]
            v = list(venues)[op[2] % len(venues)]
            if db.add_checkin(u, v):
                edges.append((u, v))
        elif kind == "unfollow" and follows:
            a, b = follows.pop(op[1] % len(follows))
            db.remove_follow(a, b)
            edges.remove((a, b))
        elif kind == "query" and users and venues:
            vertex = users[op[1] % len(users)]
            x1, x2 = sorted((op[2], op[3]))
            y1, y2 = sorted((op[4], op[5]))
            region = Rect(x1, y1, x2, y2)
            expected = _oracle_answer(users, venues, edges, vertex, region)
            assert db.range_reach(vertex, region) == expected


# ----------------------------------------------------------------------
# Overlay vs fresh-rebuild equivalence
# ----------------------------------------------------------------------
overlay_ops = st.lists(
    st.one_of(
        st.tuples(st.just("user")),
        st.tuples(st.just("venue"), unit, unit),
        st.tuples(st.just("follow"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("checkin"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("unfollow"), st.integers(0, 200)),
        st.tuples(st.just("uncheckin"), st.integers(0, 200)),
        st.tuples(st.just("query"), st.integers(0, 60), unit, unit, unit, unit),
    ),
    max_size=40,
)


def _build_oracle(db: GeosocialDatabase) -> RangeReachOracle:
    """Index-free ground truth over the database's *current* raw state."""
    graph = DiGraph(db._graph.num_vertices)
    for a, b in db._edges:
        graph.add_edge(a, b)
    return RangeReachOracle(GeosocialNetwork(graph, list(db._points)))


@given(overlay_ops, st.sampled_from([0, 1, 3, 8, 64]))
@settings(max_examples=220, deadline=None)
def test_overlay_matches_fresh_rebuild(sequence, threshold):
    """Every overlay answer equals the fresh-rebuild answer.

    ``overlay`` accumulates deltas (policy under test); ``fresh`` rebuilds
    its snapshot after every write, so each of its answers comes from a
    brand-new index over the exact current state.  Thresholds 0/1/3 cross
    the ``refresh_threshold`` boundary constantly; unfollow/uncheckin
    exercise both the removal-forces-rebuild path (snapshot edges) and the
    delta-log-only removal path.
    """
    overlay = GeosocialDatabase(refresh_threshold=threshold)
    fresh = GeosocialDatabase(refresh_threshold=0)
    users: list[int] = []
    venues: list[int] = []
    follows: list[tuple[int, int]] = []
    checkins: list[tuple[int, int]] = []

    for op in sequence:
        kind = op[0]
        if kind == "user":
            users.append(overlay.add_user())
            fresh.add_user()
        elif kind == "venue":
            venues.append(overlay.add_venue(op[1], op[2]))
            fresh.add_venue(op[1], op[2])
        elif kind == "follow" and len(users) >= 2:
            a = users[op[1] % len(users)]
            b = users[op[2] % len(users)]
            if overlay.add_follow(a, b):
                follows.append((a, b))
            fresh.add_follow(a, b)
        elif kind == "checkin" and users and venues:
            u = users[op[1] % len(users)]
            v = venues[op[2] % len(venues)]
            if overlay.add_checkin(u, v):
                checkins.append((u, v))
            fresh.add_checkin(u, v)
        elif kind == "unfollow" and follows:
            a, b = follows.pop(op[1] % len(follows))
            overlay.remove_follow(a, b)
            fresh.remove_follow(a, b)
        elif kind == "uncheckin" and checkins:
            u, v = checkins.pop(op[1] % len(checkins))
            overlay.remove_checkin(u, v)
            fresh.remove_checkin(u, v)
        elif kind == "query" and venues:
            population = users + venues
            vertex = population[op[1] % len(population)]
            x1, x2 = sorted((op[2], op[3]))
            y1, y2 = sorted((op[4], op[5]))
            region = Rect(x1, y1, x2, y2)
            oracle = _build_oracle(overlay)
            expected_witnesses = sorted(oracle.witnesses(vertex, region))
            assert overlay.range_reach(vertex, region) == fresh.range_reach(
                vertex, region
            ) == bool(expected_witnesses)
            assert overlay.reachable_venues(vertex, region) == (
                expected_witnesses
            )
            assert overlay.count_reachable(vertex, region) == (
                fresh.count_reachable(vertex, region)
            ) == len(expected_witnesses)
            k = len(expected_witnesses)
            assert overlay.reaches_at_least(vertex, region, k) is True
            assert overlay.reaches_at_least(vertex, region, k + 1) is False
            expected_nearest = oracle.nearest(vertex, Point(0.5, 0.5))
            got_nearest = overlay.nearest_reachable(vertex, 0.5, 0.5)
            if expected_nearest is None:
                assert got_nearest is None
            else:
                assert got_nearest is not None
                assert got_nearest[1] == pytest.approx(
                    expected_nearest[1], abs=1e-9
                )
    if threshold >= 8 and overlay.num_rebuilds:
        # The whole point of the overlay: strictly fewer rebuilds than
        # the rebuild-per-write policy on any stream with a write.
        assert overlay.num_rebuilds <= fresh.num_rebuilds
