"""Property-based tests for GeosocialDatabase against the BFS oracle.

Hypothesis drives interleaved updates and queries; after any prefix of
operations the database's snapshot answers must equal a naive oracle
recomputed from scratch on the same state.
"""

from hypothesis import given, settings, strategies as st

from repro.core import RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.system import GeosocialDatabase

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("user")),
        st.tuples(st.just("venue"), unit, unit),
        st.tuples(st.just("follow"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("checkin"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("unfollow"), st.integers(0, 200)),
        st.tuples(st.just("query"), st.integers(0, 30), unit, unit, unit, unit),
    ),
    max_size=50,
)


def _oracle_answer(users, venues, edges, vertex, region):
    n = len(users) + len(venues)
    id_map = {}
    points = []
    for i, u in enumerate(users):
        id_map[u] = i
        points.append(None)
    for j, (v, p) in enumerate(venues.items()):
        id_map[v] = len(users) + j
        points.append(p)
    graph = DiGraph(n)
    for a, b in edges:
        graph.add_edge(id_map[a], id_map[b])
    network = GeosocialNetwork(graph, points)
    return RangeReachOracle(network).query(id_map[vertex], region)


@given(ops)
@settings(max_examples=40, deadline=None)
def test_database_matches_oracle(sequence):
    db = GeosocialDatabase()
    users: list[int] = []
    venues: dict[int, Point] = {}
    edges: list[tuple[int, int]] = []
    follows: list[tuple[int, int]] = []

    for op in sequence:
        kind = op[0]
        if kind == "user":
            users.append(db.add_user())
        elif kind == "venue":
            vid = db.add_venue(op[1], op[2])
            venues[vid] = Point(op[1], op[2])
        elif kind == "follow" and len(users) >= 2:
            a = users[op[1] % len(users)]
            b = users[op[2] % len(users)]
            if db.add_follow(a, b):
                edges.append((a, b))
                follows.append((a, b))
        elif kind == "checkin" and users and venues:
            u = users[op[1] % len(users)]
            v = list(venues)[op[2] % len(venues)]
            if db.add_checkin(u, v):
                edges.append((u, v))
        elif kind == "unfollow" and follows:
            a, b = follows.pop(op[1] % len(follows))
            db.remove_follow(a, b)
            edges.remove((a, b))
        elif kind == "query" and users and venues:
            vertex = users[op[1] % len(users)]
            x1, x2 = sorted((op[2], op[3]))
            y1, y2 = sorted((op[4], op[5]))
            region = Rect(x1, y1, x2, y2)
            expected = _oracle_answer(users, venues, edges, vertex, region)
            assert db.range_reach(vertex, region) == expected
