"""Unit tests for repro.labeling.stabbing."""

import random

import pytest

from repro.labeling import IntervalStabbingIndex


def brute_force(intervals, q):
    return sorted(p for lo, hi, p in intervals if lo <= q <= hi)


def test_empty_index():
    index = IntervalStabbingIndex([])
    assert index.stab_all(5) == []
    assert len(index) == 0


def test_degenerate_interval_rejected():
    with pytest.raises(ValueError):
        IntervalStabbingIndex([(5, 3, "x")])


def test_single_interval():
    index = IntervalStabbingIndex([(2, 7, "a")])
    assert index.stab_all(2) == ["a"]
    assert index.stab_all(5) == ["a"]
    assert index.stab_all(7) == ["a"]
    assert index.stab_all(1) == []
    assert index.stab_all(8) == []


def test_point_interval():
    index = IntervalStabbingIndex([(4, 4, "p")])
    assert index.stab_all(4) == ["p"]
    assert index.stab_all(3) == []


def test_overlapping_intervals():
    intervals = [(1, 10, "a"), (5, 6, "b"), (6, 20, "c"), (15, 16, "d")]
    index = IntervalStabbingIndex(intervals)
    assert sorted(index.stab_all(6)) == ["a", "b", "c"]
    assert sorted(index.stab_all(15)) == ["c", "d"]
    assert index.stab_all(0) == []
    assert index.stab_all(21) == []


def test_matches_brute_force_randomized():
    rng = random.Random(17)
    for _ in range(10):
        intervals = []
        for i in range(rng.randrange(1, 60)):
            lo = rng.randrange(0, 100)
            hi = lo + rng.randrange(0, 30)
            intervals.append((lo, hi, i))
        index = IntervalStabbingIndex(intervals)
        for q in range(-5, 135, 3):
            assert sorted(index.stab_all(q)) == brute_force(intervals, q)


def test_many_identical_intervals():
    intervals = [(3, 8, i) for i in range(50)]
    index = IntervalStabbingIndex(intervals)
    assert sorted(index.stab_all(5)) == list(range(50))
    assert index.stab_all(9) == []


def test_ancestor_lookup_use_case():
    # The labeling's ancestor lookup: which vertices' labels cover post(v)?
    labels = {
        "a": [(1, 10)],
        "b": [(1, 5), (7, 7)],
        "j": [(1, 1), (6, 8), (10, 10)],
    }
    entries = [
        (lo, hi, name) for name, ls in labels.items() for lo, hi in ls
    ]
    index = IntervalStabbingIndex(entries)
    assert sorted(index.stab_all(7)) == ["a", "b", "j"]
    assert sorted(index.stab_all(6)) == ["a", "j"]
    assert sorted(index.stab_all(11)) == []
