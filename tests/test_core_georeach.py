"""Unit tests for repro.core.georeach (SPA-graph construction & querying)."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import GeoReach, GeoReachParams
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.graph import DiGraph


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def test_params_validation():
    with pytest.raises(ValueError):
        GeoReachParams(max_rmbr_ratio=0.0)
    with pytest.raises(ValueError):
        GeoReachParams(max_rmbr_ratio=1.5)
    with pytest.raises(ValueError):
        GeoReachParams(max_reach_grids=0)
    with pytest.raises(ValueError):
        GeoReachParams(merge_count=0)
    with pytest.raises(ValueError):
        GeoReachParams(grid_levels=0)


def test_class_counts_cover_all_vertices(condensed):
    method = GeoReach(condensed)
    counts = method.class_counts()
    assert sum(counts.values()) == condensed.num_components


def test_vertex_reaching_nothing_is_false_b_vertex():
    # Vertex 1 is a non-spatial sink: B-vertex with GeoB = FALSE.
    g = DiGraph.from_edges(2, [(0, 1)])
    net = GeosocialNetwork(g, [Point(1, 1), None])
    method = GeoReach(condense_network(net))
    counts = method.class_counts()
    assert counts["B"] >= 1
    # queries from it are always FALSE
    assert method.query(1, Rect(0, 0, 10, 10)) is False


def test_max_rmbr_downgrades_to_b_vertex():
    # Two far-apart reachable points force a huge RMBR; with a tiny
    # MAX_RMBR the source degrades to a B-vertex but stays correct.
    g = DiGraph.from_edges(3, [(0, 1), (0, 2)])
    net = GeosocialNetwork(g, [None, Point(0, 0), Point(100, 100)])
    params = GeoReachParams(
        max_rmbr_ratio=0.01, max_reach_grids=1, merge_count=1, grid_levels=3
    )
    method = GeoReach(condense_network(net), params)
    assert method.class_counts()["B"] >= 1
    assert method.query(0, Rect(-1, -1, 1, 1)) is True
    assert method.query(0, Rect(40, 40, 60, 60)) is False


def test_max_reach_grids_downgrades_to_r_vertex():
    # Many scattered reachable points overflow ReachGrid -> R-vertex.
    points = [Point(i * 10.0, i * 10.0) for i in range(8)]
    g = DiGraph(9)
    for i in range(8):
        g.add_edge(8, i)
    net = GeosocialNetwork(g, points + [None])
    params = GeoReachParams(
        max_rmbr_ratio=1.0, max_reach_grids=2, merge_count=3, grid_levels=5
    )
    method = GeoReach(condense_network(net), params)
    counts = method.class_counts()
    assert counts["R"] >= 1
    assert method.query(8, Rect(15, 15, 25, 25)) is True  # point (20, 20)
    assert method.query(8, Rect(11, 11, 14, 14)) is False


def test_spatial_vertices_become_g_vertices(condensed):
    method = GeoReach(condensed)
    assert method.class_counts()["G"] >= 6


def test_query_paper_example(condensed):
    method = GeoReach(condensed)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_rmbr_containment_terminates_early():
    # A single reachable point region-contained: R-vertex shortcut TRUE.
    g = DiGraph.from_edges(2, [(0, 1)])
    net = GeosocialNetwork(g, [None, Point(5, 5)])
    # Force vertex 0 into the R class via max_reach_grids=0-like setting.
    params = GeoReachParams(max_reach_grids=1, grid_levels=2)
    method = GeoReach(condense_network(net), params)
    assert method.query(0, Rect(0, 0, 10, 10)) is True


def test_size_bytes_grows_with_cells(condensed):
    coarse = GeoReach(condensed, GeoReachParams(grid_levels=2))
    fine = GeoReach(condensed, GeoReachParams(grid_levels=8, max_reach_grids=64))
    assert coarse.size_bytes() > 0
    assert fine.size_bytes() >= coarse.size_bytes()


def test_query_from_spatial_vertex_in_region(condensed):
    method = GeoReach(condensed)
    assert method.query(FIG1_INDEX["e"], FIG1_REGION) is True


def test_cyclic_original_network():
    # Users in a cycle, one checks into a venue.
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (1, 3)])
    net = GeosocialNetwork(g, [None, None, None, Point(2, 2)])
    method = GeoReach(condense_network(net))
    for v in range(3):
        assert method.query(v, Rect(1, 1, 3, 3)) is True
    assert method.query(3, Rect(1, 1, 3, 3)) is True  # venue itself
    assert method.query(3, Rect(5, 5, 6, 6)) is False
