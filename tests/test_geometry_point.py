"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import Point


def test_coordinates_accessible():
    p = Point(1.5, -2.0)
    assert p.x == 1.5
    assert p.y == -2.0


def test_points_are_immutable():
    p = Point(0.0, 0.0)
    with pytest.raises(AttributeError):
        p.x = 1.0


def test_points_are_hashable_and_comparable():
    assert Point(1, 2) == Point(1, 2)
    assert Point(1, 2) != Point(2, 1)
    assert len({Point(1, 2), Point(1, 2), Point(3, 4)}) == 2


def test_distance_to_is_euclidean():
    assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)
    assert Point(2, 2).distance_to(Point(2, 2)) == 0.0


def test_distance_is_symmetric():
    a, b = Point(1.25, -3.5), Point(-2.0, 7.75)
    assert a.distance_to(b) == pytest.approx(b.distance_to(a))


def test_translated_shifts_coordinates():
    assert Point(1, 1).translated(2, -3) == Point(3, -2)


def test_as_tuple_and_iteration():
    p = Point(4.0, 5.0)
    assert p.as_tuple() == (4.0, 5.0)
    x, y = p
    assert (x, y) == (4.0, 5.0)


def test_distance_uses_hypot_precision():
    # hypot avoids overflow for large coordinates
    big = 1e200
    assert math.isfinite(Point(big, big).distance_to(Point(0, 0)))
