"""Unit tests for repro.geometry.rect."""

import pytest

from repro.geometry import Point, Rect


def test_degenerate_rect_rejected():
    with pytest.raises(ValueError):
        Rect(1.0, 0.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        Rect(0.0, 1.0, 1.0, 0.0)


def test_zero_area_rect_allowed():
    r = Rect(1.0, 2.0, 1.0, 2.0)
    assert r.area == 0.0
    assert r.contains_point(Point(1.0, 2.0))


def test_from_points_bounds_all():
    pts = [Point(1, 5), Point(-2, 3), Point(4, -1)]
    r = Rect.from_points(pts)
    assert r == Rect(-2, -1, 4, 5)
    for p in pts:
        assert r.contains_point(p)


def test_from_points_empty_raises():
    with pytest.raises(ValueError):
        Rect.from_points([])


def test_from_center():
    r = Rect.from_center(Point(5, 5), 4, 2)
    assert r == Rect(3, 4, 7, 6)
    assert r.center == Point(5, 5)


def test_measures():
    r = Rect(0, 0, 4, 3)
    assert r.width == 4
    assert r.height == 3
    assert r.area == 12


def test_contains_point_boundary_inclusive():
    r = Rect(0, 0, 2, 2)
    assert r.contains_point(Point(0, 0))
    assert r.contains_point(Point(2, 2))
    assert r.contains_xy(1, 2)
    assert not r.contains_point(Point(2.0001, 1))


def test_contains_rect():
    outer = Rect(0, 0, 10, 10)
    assert outer.contains_rect(Rect(1, 1, 9, 9))
    assert outer.contains_rect(outer)
    assert not outer.contains_rect(Rect(5, 5, 11, 9))
    assert not Rect(1, 1, 9, 9).contains_rect(outer)


def test_intersects_cases():
    a = Rect(0, 0, 2, 2)
    assert a.intersects(Rect(1, 1, 3, 3))          # overlap
    assert a.intersects(Rect(2, 2, 4, 4))          # corner touch
    assert a.intersects(Rect(0.5, 0.5, 1.5, 1.5))  # containment
    assert not a.intersects(Rect(2.1, 0, 3, 2))    # disjoint in x
    assert not a.intersects(Rect(0, 2.1, 2, 3))    # disjoint in y


def test_intersects_is_symmetric():
    a = Rect(0, 0, 2, 2)
    b = Rect(1, -1, 5, 0.5)
    assert a.intersects(b) == b.intersects(a)


def test_union():
    assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)


def test_expanded_to():
    assert Rect(0, 0, 1, 1).expanded_to(Point(5, -2)) == Rect(0, -2, 5, 1)
    assert Rect(0, 0, 1, 1).expanded_to(Point(0.5, 0.5)) == Rect(0, 0, 1, 1)


def test_intersection():
    a = Rect(0, 0, 4, 4)
    assert a.intersection(Rect(2, 2, 6, 6)) == Rect(2, 2, 4, 4)
    assert a.intersection(Rect(5, 5, 6, 6)) is None
    # touching edge yields a degenerate but valid rectangle
    assert a.intersection(Rect(4, 0, 6, 4)) == Rect(4, 0, 4, 4)


def test_as_tuple():
    assert Rect(1, 2, 3, 4).as_tuple() == (1, 2, 3, 4)


def test_any_contained():
    from array import array

    r = Rect(1, 1, 3, 3)
    xs = array("d", [0.0, 2.0, 5.0])
    ys = array("d", [0.0, 2.0, 5.0])
    assert r.any_contained(xs, ys)
    assert not r.any_contained(xs, ys, 2)       # only (5, 5) left
    assert not r.any_contained(xs, ys, 0, 1)    # only (0, 0)
    assert r.any_contained(xs, ys, 1, 2)        # exactly (2, 2)
    assert not r.any_contained(xs, ys, 1, 1)    # empty range
    assert not Rect(10, 10, 11, 11).any_contained(xs, ys)
    # Boundary points are inside (closed-region semantics).
    assert Rect(2, 2, 9, 9).any_contained(xs, ys)


def test_any_contained_matches_contains_point():
    from array import array

    points = [Point(0.5, 0.5), Point(1.5, 2.5), Point(4.0, 0.1)]
    xs = array("d", (p.x for p in points))
    ys = array("d", (p.y for p in points))
    for r in (Rect(0, 0, 1, 1), Rect(1, 2, 2, 3), Rect(6, 6, 7, 7)):
        assert r.any_contained(xs, ys) == any(
            r.contains_point(p) for p in points
        )


def test_first_contained():
    from array import array

    r = Rect(1, 1, 3, 3)
    xs = array("d", [0.0, 2.0, 2.5, 5.0])
    ys = array("d", [0.0, 2.0, 2.5, 5.0])
    assert r.first_contained(xs, ys) == 1
    assert r.first_contained(xs, ys, 2) == 2     # indices are absolute
    assert r.first_contained(xs, ys, 3) == -1
    assert r.first_contained(xs, ys, 0, 1) == -1
    assert r.first_contained(xs, ys, 1, 1) == -1  # empty range
