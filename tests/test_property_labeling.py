"""Property-based tests for the interval labeling construction.

The key invariants of Section 3:

* the compressed label set of ``v`` covers exactly the post-order numbers
  of the vertices reachable from ``v`` (soundness + completeness);
* the faithful Algorithm 1 and the fast subtree construction coincide;
* reversing the graph swaps descendants for ancestors.
"""

from hypothesis import given, settings, strategies as st

from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.labeling import build_labeling, build_reversed_labeling


@st.composite
def dags(draw, max_vertices=14):
    """Random DAG: edges only from lower to higher vertex id."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=40)) if possible else []
    return DiGraph.from_edges(n, edges)


@given(dags())
@settings(max_examples=60, deadline=None)
def test_labels_cover_exactly_reachable_posts(dag):
    labeling = build_labeling(dag)
    truth = all_reachable_sets(dag)
    labeling.validate(truth)


@given(dags())
@settings(max_examples=40, deadline=None)
def test_faithful_and_subtree_modes_agree(dag):
    fast = build_labeling(dag, mode="subtree")
    faithful = build_labeling(dag, mode="faithful")
    assert fast.labels == faithful.labels
    assert fast.post == faithful.post


@given(dags())
@settings(max_examples=40, deadline=None)
def test_reversed_labeling_is_ancestor_relation(dag):
    rev = build_reversed_labeling(dag)
    truth = all_reachable_sets(dag)
    n = dag.num_vertices
    for v in range(n):
        for u in range(n):
            assert rev.greach(v, u) == (v in truth[u])


@given(dags())
@settings(max_examples=60, deadline=None)
def test_post_numbers_are_permutation(dag):
    labeling = build_labeling(dag)
    assert sorted(labeling.post) == list(range(1, dag.num_vertices + 1))


@given(dags())
@settings(max_examples=60, deadline=None)
def test_self_label_always_present(dag):
    labeling = build_labeling(dag)
    for v in range(dag.num_vertices):
        assert labeling.covers_post(v, labeling.post_of(v))


@given(dags())
@settings(max_examples=40, deadline=None)
def test_compression_never_increases_label_count(dag):
    stats = build_labeling(dag).stats()
    assert stats.compressed_labels <= stats.uncompressed_labels


@given(dags())
@settings(max_examples=40, deadline=None)
def test_greach_is_transitive(dag):
    labeling = build_labeling(dag)
    n = dag.num_vertices
    reachable = [
        [u for u in range(n) if labeling.greach(v, u)] for v in range(n)
    ]
    for v in range(n):
        for u in reachable[v]:
            for w in reachable[u]:
                assert labeling.greach(v, w)
