"""Regression tests: flattened R-trees reload with identical behaviour.

The snapshot store persists R-trees as preorder node arrays rather than
pickled objects, so the rebuilt tree must not just contain the same
entries — it must *traverse* the same way.  Methods that stop at the
first hit (``any_intersecting``) and callers that consume ``search``
lazily depend on the canonical result order, so the saved/loaded tree
must yield results in exactly the order the freshly built tree does.
"""

import random

import pytest

from repro.spatial import RTree
from repro.store import SnapshotError
from repro.store.snapshot import _decode_rtree, _encode_rtree


def _random_boxes(rng, n, dims=2):
    entries = []
    for item in range(n):
        lo = [rng.uniform(0, 100) for _ in range(dims)]
        hi = [c + rng.uniform(0, 10) for c in lo]
        entries.append((tuple(lo + hi), item))
    return entries


def _queries(rng, n, dims=2):
    out = []
    for _ in range(n):
        lo = [rng.uniform(-10, 90) for _ in range(dims)]
        hi = [c + rng.uniform(0, 40) for c in lo]
        out.append(tuple(lo + hi))
    out.append(tuple([-1000.0] * dims + [1000.0] * dims))  # everything
    out.append(tuple([2000.0] * dims + [2001.0] * dims))  # nothing
    return out


def _round_trip(tree):
    flat = tree.flatten()
    return RTree.from_flat(**flat)


@pytest.mark.parametrize("dims", [2, 3])
@pytest.mark.parametrize("n", [0, 1, 5, 40, 300])
def test_search_order_preserved(dims, n):
    rng = random.Random(dims * 1000 + n)
    tree = RTree.bulk_load(_random_boxes(rng, n, dims), dims=dims)
    reloaded = _round_trip(tree)
    for query in _queries(rng, 25, dims):
        assert list(reloaded.search(query)) == list(tree.search(query))
        assert reloaded.search_all(query) == tree.search_all(query)
        assert reloaded.any_intersecting(query) == tree.any_intersecting(query)


def test_incrementally_built_tree_round_trips():
    rng = random.Random(9)
    tree = RTree(dims=2, capacity=4)
    for bounds, item in _random_boxes(rng, 120):
        tree.insert(bounds, item)
    reloaded = _round_trip(tree)
    assert len(reloaded) == len(tree)
    for query in _queries(rng, 25):
        assert list(reloaded.search(query)) == list(tree.search(query))


def test_flatten_shape_is_consistent():
    rng = random.Random(1)
    tree = RTree.bulk_load(_random_boxes(rng, 50), dims=2)
    flat = tree.flatten()
    assert flat["dims"] == 2
    assert flat["size"] == 50
    assert len(flat["node_kinds"]) == len(flat["child_counts"])
    assert len(flat["node_kinds"]) == len(flat["entry_counts"])
    assert len(flat["entry_bounds"]) == 2 * flat["dims"] * sum(
        flat["entry_counts"]
    )
    assert sum(flat["entry_counts"]) == len(flat["entry_items"]) == 50


def test_flatten_rejects_non_integer_items():
    tree = RTree(dims=2)
    tree.insert((0.0, 0.0, 1.0, 1.0), "a-string")
    with pytest.raises(ValueError, match="integer"):
        tree.flatten()


def test_from_flat_rejects_inconsistent_arrays():
    rng = random.Random(2)
    tree = RTree.bulk_load(_random_boxes(rng, 30), dims=2)
    flat = tree.flatten()

    broken = dict(flat)
    broken["entry_items"] = flat["entry_items"][:-1]
    with pytest.raises(ValueError):
        RTree.from_flat(**broken)

    broken = dict(flat)
    broken["size"] = flat["size"] + 1
    with pytest.raises(ValueError):
        RTree.from_flat(**broken)

    broken = dict(flat)
    broken["node_kinds"] = flat["node_kinds"][:-1]
    with pytest.raises(ValueError):
        RTree.from_flat(**broken)


def test_store_codec_wraps_rtree_errors():
    rng = random.Random(3)
    tree = RTree.bulk_load(_random_boxes(rng, 20), dims=2)
    fields = _encode_rtree(tree)
    fields["entry_items"] = fields["entry_items"][:-1]
    with pytest.raises(SnapshotError):
        _decode_rtree(fields)


def test_store_codec_round_trip_preserves_order():
    rng = random.Random(4)
    tree = RTree.bulk_load(_random_boxes(rng, 80, 3), dims=3)
    reloaded = _decode_rtree(_encode_rtree(tree))
    for query in _queries(rng, 20, 3):
        assert list(reloaded.search(query)) == list(tree.search(query))
