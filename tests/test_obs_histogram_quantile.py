"""Quantile estimation from log-bucket histograms (repro.obs.metrics).

Documents and enforces the estimator's error bound: the geometric
midpoint of the nearest-rank bucket is off by at most a factor of
``sqrt(factor)``, i.e. a relative error of ``sqrt(factor) - 1``
(~41.4% for factor 2, ~22.5% for factor 1.5) — inside the bucketed
range.  docs/OBSERVABILITY.md quotes these numbers.
"""

import math
import random

import pytest

from repro.obs import estimate_quantile
from repro.obs.metrics import Histogram


def exact_quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of the raw sample (the reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize("factor", [2.0, 1.5])
@pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
def test_relative_error_bound(factor, q):
    hist = Histogram("qtest", start=1e-6, factor=factor, buckets=60)
    rng = random.Random(1234)
    # Log-uniform latencies spanning microseconds to seconds, all well
    # inside the bucketed range.
    values = [10 ** rng.uniform(-5.5, 0.5) for _ in range(5000)]
    for value in values:
        hist.observe(value)
    bound = math.sqrt(factor) - 1.0
    estimate = hist.quantile(q)
    truth = exact_quantile(values, q)
    assert estimate == pytest.approx(truth, rel=bound), (
        f"estimate {estimate} vs true {truth}: outside the "
        f"sqrt({factor})-1 = {bound:.1%} relative error bound"
    )


def test_single_bucket_midpoint():
    # All mass in one bucket: the estimate is that bucket's geometric
    # midpoint, hi / sqrt(factor).
    hist = Histogram("qtest_one", start=1.0, factor=4.0, buckets=4)
    for _ in range(10):
        hist.observe(3.0)  # bucket (1, 4]
    assert hist.quantile(0.5) == pytest.approx(4.0 / math.sqrt(4.0))
    # True value 3.0 is within a factor of sqrt(4) = 2 of the estimate.
    assert hist.quantile(0.5) / 3.0 < 2.0
    assert 3.0 / hist.quantile(0.5) < 2.0


def test_overflow_degrades_to_last_bound():
    hist = Histogram("qtest_inf", start=1.0, factor=2.0, buckets=3)
    hist.observe(100.0)  # beyond the last bound (4.0) -> +Inf bucket
    assert hist.quantile(0.5) == 4.0


def test_empty_histogram_is_zero():
    hist = Histogram("qtest_empty")
    assert hist.quantile(0.5) == 0.0
    assert estimate_quantile([1.0, 2.0], [0, 0, 0], 0.9) == 0.0


def test_quantile_bounds_validated():
    hist = Histogram("qtest_valid")
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        estimate_quantile([1.0], [1, 0], -0.1)


def test_first_bucket_lower_bound_uses_layout_factor():
    # The first bucket has no predecessor; its implicit lower bound is
    # hi / factor so the midpoint rule stays uniform across buckets.
    hist = Histogram("qtest_first", start=8.0, factor=2.0, buckets=2)
    hist.observe(5.0)  # first bucket (implicit 4, 8]
    assert hist.quantile(0.5) == pytest.approx((4.0 * 8.0) ** 0.5)


def test_monotone_in_q():
    hist = Histogram("qtest_mono", start=1e-3, factor=2.0, buckets=20)
    rng = random.Random(7)
    for _ in range(1000):
        hist.observe(rng.expovariate(10.0) + 1e-3)
    qs = [0.1, 0.5, 0.9, 0.99, 1.0]
    estimates = [hist.quantile(q) for q in qs]
    assert estimates == sorted(estimates)
