"""Hardening tests: every way a snapshot can rot raises SnapshotError.

A persisted snapshot travels through filesystems, containers and
partial-copy accidents; the loader must refuse — with the typed error,
never a random ValueError/struct.error/KeyError — on truncated parts,
flipped bytes, unknown format versions, and missing files.  The
``snapshot inspect`` CLI must report the same failures cleanly.
"""

import json

import pytest

from helpers import fig1_network
from repro.core import build_methods
from repro.pipeline import BuildContext
from repro.store import (
    MANIFEST_NAME,
    SnapshotError,
    inspect_snapshot,
    load_context,
    save_context,
)
from repro.store.codec import decode_record, encode_record

METHODS = ["spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev"]


@pytest.fixture
def snapshot_dir(tmp_path):
    network = fig1_network()
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    directory = tmp_path / "snap"
    save_context(context, directory)
    return directory


def _manifest(directory):
    return json.loads((directory / MANIFEST_NAME).read_text())


def _write_manifest(directory, manifest):
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    )


def _first_part(directory):
    manifest = _manifest(directory)
    return directory / "parts" / manifest["parts"][0]["file"]


def test_missing_manifest(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    with pytest.raises(SnapshotError, match="manifest"):
        load_context(empty)
    with pytest.raises(SnapshotError, match="manifest"):
        inspect_snapshot(empty)


def test_missing_directory(tmp_path):
    with pytest.raises(SnapshotError):
        load_context(tmp_path / "never-written")


def test_garbled_manifest_json(snapshot_dir):
    (snapshot_dir / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(SnapshotError, match="manifest"):
        load_context(snapshot_dir)


def test_wrong_format_name(snapshot_dir):
    manifest = _manifest(snapshot_dir)
    manifest["format"] = "some-other-store"
    _write_manifest(snapshot_dir, manifest)
    with pytest.raises(SnapshotError, match="format"):
        load_context(snapshot_dir)


def test_unknown_format_version(snapshot_dir):
    manifest = _manifest(snapshot_dir)
    manifest["version"] = 999
    _write_manifest(snapshot_dir, manifest)
    with pytest.raises(SnapshotError, match="version"):
        load_context(snapshot_dir)
    with pytest.raises(SnapshotError, match="version"):
        inspect_snapshot(snapshot_dir)


def test_truncated_part_file(snapshot_dir):
    part = _first_part(snapshot_dir)
    data = part.read_bytes()
    part.write_bytes(data[: len(data) // 2])
    with pytest.raises(SnapshotError, match="truncated"):
        load_context(snapshot_dir)


def test_checksum_mismatch(snapshot_dir):
    part = _first_part(snapshot_dir)
    data = bytearray(part.read_bytes())
    data[-1] ^= 0xFF  # same size, different content
    part.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="checksum"):
        load_context(snapshot_dir)


def test_missing_part_file(snapshot_dir):
    _first_part(snapshot_dir).unlink()
    with pytest.raises(SnapshotError, match="missing"):
        load_context(snapshot_dir)


def test_padded_part_file(snapshot_dir):
    part = _first_part(snapshot_dir)
    part.write_bytes(part.read_bytes() + b"\x00")
    with pytest.raises(SnapshotError):
        load_context(snapshot_dir)


def test_manifest_entry_missing_fields(snapshot_dir):
    manifest = _manifest(snapshot_dir)
    del manifest["parts"][0]["sha256"]
    _write_manifest(snapshot_dir, manifest)
    with pytest.raises(SnapshotError):
        load_context(snapshot_dir)


def test_unknown_artifact_kind(snapshot_dir):
    manifest = _manifest(snapshot_dir)
    manifest["parts"][0]["kind"] = "hologram"
    _write_manifest(snapshot_dir, manifest)
    with pytest.raises(SnapshotError):
        load_context(snapshot_dir)


def test_inspect_reports_part_failures_without_raising(snapshot_dir):
    part = _first_part(snapshot_dir)
    data = bytearray(part.read_bytes())
    data[-1] ^= 0xFF
    part.write_bytes(bytes(data))
    report = inspect_snapshot(snapshot_dir)
    assert report["ok"] is False
    statuses = {p["file"]: p["status"] for p in report["parts"]}
    assert any(s.startswith("error") for s in statuses.values())
    assert sum(1 for s in statuses.values() if s == "ok") == len(statuses) - 1


def test_inspect_clean_snapshot_is_ok(snapshot_dir):
    report = inspect_snapshot(snapshot_dir)
    assert report["ok"] is True
    assert all(p["status"] == "ok" for p in report["parts"])
    assert report["total_bytes"] == sum(p["bytes"] for p in report["parts"])


# ----------------------------------------------------------------------
# Record codec: malformed binary payloads
# ----------------------------------------------------------------------
def test_codec_round_trip():
    fields = {"n": 3, "ratio": 0.5, "name": "x", "blob": b"\x00\x01"}
    assert decode_record(encode_record(fields)) == fields


def test_codec_rejects_bad_magic():
    with pytest.raises(SnapshotError, match="magic"):
        decode_record(b"NOTMAGIC" + b"\x00" * 16)


def test_codec_rejects_truncation():
    data = encode_record({"n": 1, "xs": "hello"})
    for cut in (1, len(data) // 2, len(data) - 1):
        with pytest.raises(SnapshotError):
            decode_record(data[:cut])


def test_codec_rejects_trailing_bytes():
    data = encode_record({"n": 1})
    with pytest.raises(SnapshotError, match="trailing"):
        decode_record(data + b"\x00")


def test_corrupt_artifact_payload_is_snapshot_error(snapshot_dir):
    """A part whose bytes decode but describe an impossible artifact."""
    manifest = _manifest(snapshot_dir)
    for entry in manifest["parts"]:
        if entry["kind"] == "labeling":
            break
    part = snapshot_dir / "parts" / entry["file"]
    fields = decode_record(part.read_bytes())
    fields["label_counts"] = fields["label_counts"][:-1]  # wrong length
    blob = encode_record(fields)
    part.write_bytes(blob)
    import hashlib

    entry["sha256"] = hashlib.sha256(blob).hexdigest()
    entry["bytes"] = len(blob)
    _write_manifest(snapshot_dir, manifest)
    with pytest.raises(SnapshotError):
        load_context(snapshot_dir)
