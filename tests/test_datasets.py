"""Unit tests for repro.datasets (profiles, generator, loaders)."""

import pytest

from repro.datasets import (
    DATASET_PROFILES,
    load_snap_style,
    make_network,
)
from repro.datasets.generator import available_profiles, table3_counts
from repro.geosocial import condense_network


def test_profiles_registered():
    assert set(DATASET_PROFILES) == {
        "foursquare", "gowalla", "weeplaces", "yelp",
    }
    assert available_profiles() == sorted(DATASET_PROFILES)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown dataset profile"):
        make_network("instagram", scale=0.001)


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        make_network("yelp", scale=0)


def test_generation_is_deterministic():
    a = make_network("foursquare", scale=0.0005, seed=9)
    b = make_network("foursquare", scale=0.0005, seed=9)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.points == b.points


def test_different_seeds_differ():
    a = make_network("foursquare", scale=0.0005, seed=1)
    b = make_network("foursquare", scale=0.0005, seed=2)
    assert sorted(a.graph.edges()) != sorted(b.graph.edges())


def test_table3_counts_scaling():
    users, venues = table3_counts("gowalla", 0.001)
    assert users == round(407_533 * 0.001)
    assert venues == round(2_723_102 * 0.001)


def test_vertex_layout_users_then_venues(small_datasets):
    for net in small_datasets.values():
        num_users = sum(1 for k in net.kinds if k == "user")
        for v in range(num_users):
            assert net.kinds[v] == "user"
            assert not net.is_spatial(v)
        for v in range(num_users, net.num_vertices):
            assert net.kinds[v] == "venue"
            assert net.is_spatial(v)


def test_venues_are_sinks(small_datasets):
    # As in the paper's datasets: check-in/rating edges point to venues,
    # venues have no outgoing edges.
    for net in small_datasets.values():
        for v in net.spatial_vertices():
            assert net.graph.out_degree(v) == 0


def test_giant_scc_regime(small_datasets):
    # Gowalla/WeePlaces: all users in one SCC (Table 3).
    for name in ("gowalla", "weeplaces"):
        net = small_datasets[name]
        stats = net.stats()
        assert stats.largest_scc == stats.num_users
        # every venue is a singleton SCC
        assert stats.num_sccs == stats.num_venues + 1


def test_fragmented_scc_regime(small_datasets):
    # Foursquare/Yelp: many SCCs, giant SCC smaller than the user base.
    for name in ("foursquare", "yelp"):
        stats = small_datasets[name].stats()
        assert stats.largest_scc < stats.num_users
        assert stats.num_sccs > stats.num_venues


def test_points_inside_unit_square(small_datasets):
    for net in small_datasets.values():
        for v in net.spatial_vertices():
            p = net.point_of(v)
            assert 0.0 <= p.x <= 1.0
            assert 0.0 <= p.y <= 1.0


def test_no_parallel_edges(small_datasets):
    for net in small_datasets.values():
        edges = list(net.graph.edges())
        assert len(edges) == len(set(edges))


def test_condensable(small_datasets):
    for net in small_datasets.values():
        cn = condense_network(net)
        assert cn.num_components <= net.num_vertices


def test_load_snap_style(tmp_path):
    friends = tmp_path / "friends.txt"
    friends.write_text("u1 u2\nu2 u3\n")
    checkins = tmp_path / "checkins.txt"
    checkins.write_text("u1 v1 0.5 0.5\nu3 v1 0.5 0.5\nu3 v2 0.9 0.1\n")
    net = load_snap_style(friends, checkins, name="mini", mutual=True)
    assert net.name == "mini"
    assert net.num_vertices == 5  # 3 users + 2 venues
    assert net.num_spatial == 2
    stats = net.stats()
    assert stats.num_users == 3
    assert stats.num_checkin_edges == 3
    # mutual=True added both directions
    assert net.graph.has_edge(0, 1) and net.graph.has_edge(1, 0)


def test_load_snap_style_dedupes_checkins(tmp_path):
    friends = tmp_path / "friends.txt"
    friends.write_text("")
    checkins = tmp_path / "checkins.txt"
    checkins.write_text("u1 v1 0 0\nu1 v1 0 0\n")
    net = load_snap_style(friends, checkins)
    assert net.num_edges == 1


def test_load_snap_style_malformed_checkin(tmp_path):
    friends = tmp_path / "friends.txt"
    friends.write_text("")
    checkins = tmp_path / "checkins.txt"
    checkins.write_text("u1 v1 0\n")
    with pytest.raises(ValueError):
        load_snap_style(friends, checkins)
