"""Unit tests for repro.geosocial.network."""

import pytest

from helpers import fig1_network
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph


def test_point_table_length_checked():
    with pytest.raises(ValueError):
        GeosocialNetwork(DiGraph(3), [None, None])


def test_kinds_length_checked():
    with pytest.raises(ValueError):
        GeosocialNetwork(DiGraph(2), [None, None], kinds=["user"])


def test_spatial_accessors():
    net = fig1_network()
    assert net.num_vertices == 12
    assert net.num_spatial == 6
    assert net.is_spatial(4)  # e
    assert not net.is_spatial(0)  # a
    assert sorted(net.spatial_vertices()) == [4, 5, 6, 7, 8, 11]


def test_point_of_non_spatial_raises():
    net = fig1_network()
    with pytest.raises(ValueError):
        net.point_of(0)


def test_space_is_mbr_of_points():
    net = fig1_network()
    space = net.space()
    assert space == Rect(1, 1, 9, 9)
    for v in net.spatial_vertices():
        assert space.contains_point(net.point_of(v))


def test_space_cached():
    net = fig1_network()
    assert net.space() is net.space()


def test_stats_without_kinds_uses_points():
    net = fig1_network()
    stats = net.stats()
    assert stats.num_venues == 6
    assert stats.num_users == 6
    assert stats.num_vertices == 12
    assert stats.num_edges == 15
    assert stats.num_sccs == 12  # fig1 is a DAG
    assert stats.largest_scc == 1


def test_stats_with_kinds():
    g = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
    points = [None, None, Point(0, 0)]
    net = GeosocialNetwork(g, points, kinds=["user", "user", "venue"])
    stats = net.stats()
    assert stats.num_users == 2
    assert stats.num_venues == 1
    # check-ins = edges into venues
    assert stats.num_checkin_edges == 2


def test_save_load_round_trip(tmp_path):
    net = fig1_network()
    net.save(tmp_path / "fig1")
    loaded = GeosocialNetwork.load(tmp_path / "fig1")
    assert loaded.num_vertices == net.num_vertices
    assert sorted(loaded.graph.edges()) == sorted(net.graph.edges())
    assert loaded.points == net.points
    assert loaded.name == "fig1"


def test_load_rejects_points_beyond_graph(tmp_path):
    d = tmp_path / "bad"
    d.mkdir()
    (d / "edges.txt").write_text("0 1\n")
    (d / "points.txt").write_text("7 0.0 0.0\n")
    with pytest.raises(ValueError):
        GeosocialNetwork.load(d)
