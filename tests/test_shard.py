"""repro.shard: partitioning, boundary graph, and ShardedDatabase.

Unit coverage for the scatter-gather subsystem; the randomized
equivalence tests live in ``test_property_shard.py``.
"""

import math
import random

import pytest

from repro.core.base import RangeReachMethod
from repro.core.oracle import RangeReachOracle
from repro.exec import ParallelExecutor
from repro.geometry import Point, Rect
from repro.geosocial.network import GeosocialNetwork
from repro.graph.digraph import DiGraph
from repro.shard import (
    BoundaryGraph,
    GridSpec,
    ShardedDatabase,
    has_layout,
    partition_network,
)
from repro.system import GeosocialDatabase

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def _network(num_vertices, venue_points, edges, name="test"):
    """Build a network: ``venue_points`` maps vertex -> (x, y)."""
    points = [None] * num_vertices
    for vertex, (x, y) in venue_points.items():
        points[vertex] = Point(x, y)
    kinds = ["venue" if p is not None else "user" for p in points]
    return GeosocialNetwork(
        DiGraph.from_edges(num_vertices, sorted(edges)),
        points, kinds=kinds, name=name,
    )


# ----------------------------------------------------------------------
# GridSpec
# ----------------------------------------------------------------------
def test_grid_for_shards_covers_requested_count():
    for shards in range(1, 20):
        grid = GridSpec.for_shards(UNIT, shards)
        assert grid.num_tiles >= shards
        assert grid.nx >= 1 and grid.ny >= 1


def test_grid_tile_of_is_row_major_and_clamped():
    grid = GridSpec(bounds=UNIT, nx=2, ny=2)
    assert grid.tile_of(0.1, 0.1) == 0
    assert grid.tile_of(0.9, 0.1) == 1
    assert grid.tile_of(0.1, 0.9) == 2
    assert grid.tile_of(0.9, 0.9) == 3
    # Out-of-bounds points clamp to border tiles instead of raising.
    assert grid.tile_of(-5.0, -5.0) == 0
    assert grid.tile_of(5.0, 5.0) == 3


def test_grid_degenerate_bounds():
    grid = GridSpec(bounds=Rect(0.5, 0.5, 0.5, 0.5), nx=2, ny=2)
    assert grid.tile_of(0.5, 0.5) == 0


def test_grid_shard_of_tile_round_robin():
    grid = GridSpec(bounds=UNIT, nx=3, ny=3)
    shards = 4
    owners = {grid.shard_of_tile(t, shards) for t in range(grid.num_tiles)}
    assert owners == set(range(shards))


# ----------------------------------------------------------------------
# partition_network
# ----------------------------------------------------------------------
def test_partition_requires_venues_and_positive_shards():
    social_only = _network(2, {}, {(0, 1)})
    with pytest.raises(ValueError):
        partition_network(social_only, 2)
    spatial = _network(1, {0: (0.5, 0.5)}, set())
    with pytest.raises(ValueError):
        partition_network(spatial, 0)


def test_partition_never_splits_an_scc():
    # 0 <-> 1 form an SCC with venues in opposite grid corners; they
    # must land on one shard regardless.
    net = _network(
        4,
        {2: (0.1, 0.1), 3: (0.9, 0.9)},
        {(0, 1), (1, 0), (0, 2), (1, 3)},
    )
    assignment = partition_network(net, 4)
    assert assignment.shard_of[0] == assignment.shard_of[1]


def test_partition_spatial_majority_wins():
    # An SCC of venues: two in the lower-left tile, one upper-right.
    net = _network(
        3,
        {0: (0.1, 0.1), 1: (0.2, 0.2), 2: (0.9, 0.9)},
        {(0, 1), (1, 2), (2, 0)},
    )
    assignment = partition_network(net, 4)
    expected = assignment.grid.shard_of_point(0.1, 0.1, 4)
    assert set(assignment.shard_of) == {expected}


def test_partition_social_component_follows_successors():
    # User 0 only checks into venue 1: co-locate them.
    net = _network(2, {1: (0.8, 0.2)}, {(0, 1)})
    assignment = partition_network(net, 4)
    assert assignment.shard_of[0] == assignment.shard_of[1]


def test_partition_members_of_partitions_all_vertices():
    rng = random.Random(9)
    venue_points = {v: (rng.random(), rng.random()) for v in range(0, 20, 2)}
    edges = {(rng.randrange(20), rng.randrange(20)) for _ in range(40)}
    net = _network(20, venue_points, {e for e in edges if e[0] != e[1]})
    assignment = partition_network(net, 3)
    members = [assignment.members_of(s) for s in range(3)]
    assert sorted(v for shard in members for v in shard) == list(range(20))


# ----------------------------------------------------------------------
# BoundaryGraph
# ----------------------------------------------------------------------
def test_boundary_add_remove_and_edges():
    boundary = BoundaryGraph()
    boundary.add_edge(0, 5, shard_u=0)
    boundary.add_edge(0, 7, shard_u=0)
    boundary.add_edge(3, 5, shard_u=1)
    assert boundary.num_edges == 3
    assert list(boundary.edges()) == [(0, 5), (0, 7), (3, 5)]
    boundary.remove_edge(0, 5, shard_u=0)
    assert boundary.num_edges == 2
    with pytest.raises(ValueError, match="not present"):
        boundary.remove_edge(0, 5, shard_u=0)


def test_boundary_frontier_follows_cross_edges():
    # Vertices 0,1 in shard 0; 2,3 in shard 1; 4 in shard 2.
    shard_of = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2}.__getitem__
    intra = {(0, 1), (2, 3)}

    def reaches(shard, u, v):
        return u == v or (u, v) in intra

    boundary = BoundaryGraph()
    boundary.add_edge(1, 2, shard_u=0)  # shard 0 -> 1
    boundary.add_edge(3, 4, shard_u=1)  # shard 1 -> 2
    frontier = boundary.frontier(0, shard_of, reaches)
    assert frontier == {0: {0}, 1: {2}, 2: {4}}
    # Starting past the cross edge, shard 0 is never activated.
    frontier = boundary.frontier(2, shard_of, reaches)
    assert frontier == {1: {2}, 2: {4}}


def test_boundary_memo_invalidated_by_bump():
    shard_of = {0: 0, 1: 0, 2: 1}.__getitem__
    live = {"edge": False}

    def reaches(shard, u, v):
        return u == v or ((u, v) == (0, 1) and live["edge"])

    boundary = BoundaryGraph()
    boundary.add_edge(1, 2, shard_u=0)
    assert boundary.frontier(0, shard_of, reaches) == {0: {0}}
    live["edge"] = True  # an intra-shard write happened...
    # ...without a bump the stale memo still answers:
    assert boundary.frontier(0, shard_of, reaches) == {0: {0}}
    boundary.bump(0)
    assert boundary.frontier(0, shard_of, reaches) == {0: {0}, 1: {2}}


# ----------------------------------------------------------------------
# ShardedDatabase
# ----------------------------------------------------------------------
@pytest.fixture
def small_net():
    # users 0-3, venues 4-7 spread across the grid corners.
    return _network(
        8,
        {4: (0.1, 0.1), 5: (0.9, 0.1), 6: (0.1, 0.9), 7: (0.9, 0.9)},
        {(0, 4), (1, 5), (2, 6), (0, 1), (3, 7), (1, 2)},
    )


def test_sharded_database_is_a_range_reach_method(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    assert isinstance(database, RangeReachMethod)
    assert database.name == "sharded"
    assert database.size_bytes() == 0  # nothing built yet
    assert database.query(0, UNIT) is True
    assert database.size_bytes() > 0


def test_sharded_matches_oracle_on_small_net(small_net):
    oracle = RangeReachOracle(small_net)
    database = ShardedDatabase.from_network(small_net, shards=4)
    regions = [
        UNIT,
        Rect(0.0, 0.0, 0.5, 0.5),
        Rect(0.5, 0.0, 1.0, 0.5),
        Rect(0.0, 0.5, 0.5, 1.0),
        Rect(0.5, 0.5, 1.0, 1.0),
        Rect(0.4, 0.4, 0.6, 0.6),  # touches no venue: every shard empty
    ]
    for vertex in range(8):
        for region in regions:
            assert database.range_reach(vertex, region) == oracle.query(
                vertex, region
            ), (vertex, region)
            assert database.reachable_venues(vertex, region) == sorted(
                oracle.witnesses(vertex, region)
            )
    pairs = [(v, r) for v in range(8) for r in regions]
    expected = [oracle.query(v, r) for v, r in pairs]
    assert database.range_reach_many(pairs) == expected
    with ParallelExecutor(workers=2) as executor:
        assert database.range_reach_many(pairs, executor) == expected


def test_sharded_accepts_tuple_regions(small_net):
    database = ShardedDatabase.from_network(small_net, shards=2)
    assert database.range_reach(0, (0.0, 0.0, 1.0, 1.0)) is True
    assert database.range_reach_many([(0, (0.0, 0.0, 1.0, 1.0))]) == [True]


def test_sharded_region_pruning_skips_far_shards(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    database.range_reach(3, Rect(0.85, 0.85, 0.95, 0.95))
    scatter = database.stats()["scatter"]
    assert scatter["region_pruned"] > 0
    assert scatter["subqueries"] >= 1


def test_sharded_source_pruning_skips_unreachable_shards(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    # Vertex 3 only reaches venue 7; shards owning other venues are
    # source-pruned even under a full-space region.
    before = database.stats()["scatter"]["source_pruned"]
    assert database.range_reach(3, UNIT) is True
    after = database.stats()["scatter"]["source_pruned"]
    assert after > before


def test_sharded_shard_hint_orders_but_never_changes_answers(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    for hint in range(4):
        assert database.range_reach(0, UNIT, shard_hint=hint) is True
    with pytest.raises(ValueError, match="out of range"):
        database.mbr_of(4)


def test_sharded_writes_route_to_owning_shard(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    venue = database.add_venue(0.9, 0.9)
    assert database.shard_of(venue) == database.shard_of(7)
    hinted = database.add_user(shard_hint=2)
    assert database.shard_of(hinted) == 2
    with pytest.raises(ValueError, match="out of range"):
        database.add_user(shard_hint=4)
    # Round-robin placement cycles all shards.
    owners = {database.shard_of(database.add_user()) for _ in range(4)}
    assert owners == {0, 1, 2, 3}


def test_sharded_write_validation_mirrors_monolithic(small_net):
    database = ShardedDatabase.from_network(small_net, shards=2)
    with pytest.raises(ValueError, match="follow edges connect users"):
        database.add_follow(0, 4)
    with pytest.raises(ValueError, match="is not a venue"):
        database.add_checkin(0, 1)
    with pytest.raises(ValueError, match="is not a user"):
        database.add_checkin(4, 5)
    with pytest.raises(IndexError, match="out of range"):
        database.range_reach(99, UNIT)
    with pytest.raises(ValueError, match="not present"):
        database.remove_follow(2, 3)
    assert database.add_follow(0, 0) is False  # self loop
    assert database.add_checkin(0, 4) is False  # duplicate


def test_sharded_cross_shard_edge_updates_answers(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    source = database.shard_of(3)
    target = database.shard_of(4)
    assert source != target  # venues 7 and 4 sit in opposite corners
    lower_left = Rect(0.0, 0.0, 0.3, 0.3)
    assert database.range_reach(3, lower_left) is False
    assert database.add_follow(3, 0) is True
    assert database.range_reach(3, lower_left) is True
    database.remove_follow(3, 0)
    assert database.range_reach(3, lower_left) is False


def test_sharded_intra_removal_rebuilds_only_owner(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    database.refresh()  # build everything
    rebuilds_before = [s["rebuilds"] for s in database.stats()["per_shard"]]
    owner = database.shard_of(2)
    assert database.shard_of(6) == owner  # 2 -> 6 is intra-shard
    database.remove_checkin(2, 6)
    database.refresh()
    rebuilds_after = [s["rebuilds"] for s in database.stats()["per_shard"]]
    bumped = [
        i for i, (a, b) in enumerate(zip(rebuilds_before, rebuilds_after))
        if b > a
    ]
    assert bumped == [owner]


def test_sharded_reaches_and_nearest(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    monolithic = GeosocialDatabase.from_network(small_net)
    for u in range(8):
        for v in range(8):
            assert database.reaches(u, v) == monolithic.reaches(u, v), (u, v)
        # Distance ties may resolve to different (equally valid) venues.
        got = database.nearest_reachable(u, 0.5, 0.5)
        want = monolithic.nearest_reachable(u, 0.5, 0.5)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert math.isclose(got[1], want[1])
            assert database.reaches(u, got[0])
        assert database.count_reachable(u, UNIT) == monolithic.count_reachable(
            u, UNIT
        )
        for k in (0, 1, 2, 5):
            assert database.reaches_at_least(
                u, UNIT, k
            ) == monolithic.reaches_at_least(u, UNIT, k)


def test_sharded_persistence_roundtrip(small_net, tmp_path):
    directory = str(tmp_path / "layout")
    database = ShardedDatabase.from_network(
        small_net, shards=4, snapshot_dir=directory
    )
    assert has_layout(directory)
    database.add_venue(0.25, 0.75)
    added = database.add_user()
    database.add_checkin(added, 8)
    database.refresh()
    assert database.delta_size == 0

    loaded = ShardedDatabase.load(directory)
    assert loaded.num_shards == 4
    assert loaded.num_users == database.num_users
    assert loaded.num_venues == database.num_venues
    assert loaded.num_edges == database.num_edges
    # Every shard that persisted a snapshot warm-starts from it.
    scatter = loaded.stats()["scatter"]
    built = sum(1 for s in database.stats()["per_shard"] if s["rebuilds"])
    assert scatter["layout_warm_starts"] == built
    for vertex in range(loaded.num_users + loaded.num_venues):
        assert loaded.range_reach(vertex, UNIT) == database.range_reach(
            vertex, UNIT
        )


def test_sharded_load_reseeds_on_fingerprint_mismatch(small_net, tmp_path):
    directory = str(tmp_path / "layout")
    database = ShardedDatabase.from_network(
        small_net, shards=2, snapshot_dir=directory
    )
    database.refresh()
    # Writes after the last layout save leave shard snapshots ahead of
    # the layout: the loader must fall back to the layout's state.
    database.add_follow(0, 3)
    database._shards[database.shard_of(0)].refresh()  # persist ahead

    loaded = ShardedDatabase.load(directory)
    assert loaded.num_edges == 6  # the layout's state, not the newer one
    oracle = RangeReachOracle(small_net)
    for vertex in range(8):
        assert loaded.range_reach(vertex, UNIT) == oracle.query(vertex, UNIT)


def test_sharded_from_network_refuses_existing_layout(small_net, tmp_path):
    directory = str(tmp_path / "layout")
    ShardedDatabase.from_network(small_net, shards=2, snapshot_dir=directory)
    with pytest.raises(ValueError, match="ShardedDatabase.load"):
        ShardedDatabase.from_network(
            small_net, shards=2, snapshot_dir=directory
        )


def test_sharded_load_errors(tmp_path):
    with pytest.raises(ValueError, match="no shard layout"):
        ShardedDatabase.load(str(tmp_path))
    bad = tmp_path / "layout.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="corrupt shard layout"):
        ShardedDatabase.load(str(tmp_path))
    bad.write_text('{"format": "other", "version": 9}')
    with pytest.raises(ValueError, match="unsupported shard layout"):
        ShardedDatabase.load(str(tmp_path))


def test_sharded_stats_aggregate(small_net):
    database = ShardedDatabase.from_network(small_net, shards=4)
    database.range_reach_many([(0, UNIT), (1, UNIT)])
    stats = database.stats()
    assert stats["shards"] == 4
    assert len(stats["per_shard"]) == 4
    assert stats["rebuilds"] == sum(
        s["rebuilds"] for s in stats["per_shard"]
    )
    scatter = stats["scatter"]
    assert scatter["batches"] == 1
    assert scatter["plans"] == 2
    assert scatter["region_checks"] == 8


def test_sharded_timeout_propagates(small_net):
    from repro.exec import BatchTimeoutError

    database = ShardedDatabase.from_network(small_net, shards=2)
    database.range_reach(0, UNIT)  # build indexes outside the deadline

    original = database._scatter.query_batch

    def slow_batch(chunk):
        import time

        time.sleep(0.05)
        return original(chunk)

    database._scatter.query_batch = slow_batch
    pairs = [(v % 8, UNIT) for v in range(64)]
    with ParallelExecutor(workers=1, chunk_size=4) as executor:
        with pytest.raises(BatchTimeoutError):
            database.range_reach_many(pairs, executor, timeout=0.01)


def test_sharded_empty_start_supports_writes():
    database = ShardedDatabase(shards=2)
    user = database.add_user()
    venue = database.add_venue(0.5, 0.5)
    assert database.range_reach(user, UNIT) is False
    database.add_checkin(user, venue)
    assert database.range_reach(user, UNIT) is True
    assert database.num_users == 1 and database.num_venues == 1
