"""Unit tests for repro.labeling.construction (Algorithm 1)."""

import random

import pytest

from helpers import (
    FIG1_FINAL_LABELS,
    FIG1_FOREST_PARENT,
    FIG1_INDEX,
    FIG1_POST,
    fig1_graph,
    random_dag,
)
from repro.graph import DiGraph
from repro.graph.traversal import DfsForest, all_reachable_sets
from repro.labeling import build_labeling, build_reversed_labeling


def paper_forest() -> DfsForest:
    """The spanning forest of the paper's Figure 3 with Table 1 numbering."""
    n = len(FIG1_INDEX)
    parent = [-1] * n
    post = [0] * n
    for name, p in FIG1_FOREST_PARENT.items():
        if p is not None:
            parent[FIG1_INDEX[name]] = FIG1_INDEX[p]
    for name, number in FIG1_POST.items():
        post[FIG1_INDEX[name]] = number
    # subtree minima, needed only for completeness of the dataclass
    children = [[] for _ in range(n)]
    for v, p in enumerate(parent):
        if p >= 0:
            children[p].append(v)

    def min_post(v):
        return min([post[v]] + [min_post(c) for c in children[v]])

    return DfsForest(
        parent=parent,
        post=post,
        roots=[FIG1_INDEX["a"], FIG1_INDEX["c"]],
        min_post=[min_post(v) for v in range(n)],
    )


def test_table1_reproduced_with_paper_forest():
    """Faithful Algorithm 1 on the paper's own forest yields Table 1."""
    labeling = build_labeling(fig1_graph(), mode="faithful", forest=paper_forest())
    for name, expected in FIG1_FINAL_LABELS.items():
        got = labeling.labels_of(FIG1_INDEX[name])
        assert got == tuple(expected), f"L({name}) = {got}, want {expected}"


def test_table1_post_numbers_with_paper_forest():
    labeling = build_labeling(fig1_graph(), mode="faithful", forest=paper_forest())
    for name, number in FIG1_POST.items():
        assert labeling.post_of(FIG1_INDEX[name]) == number


def test_example41_descendant_sets():
    """Example 4.1: D(a) and D(c) of the paper."""
    labeling = build_labeling(fig1_graph(), mode="faithful", forest=paper_forest())
    d_a = {FIG1_INDEX[n] for n in "abdefghijl"}  # posts 1..10
    d_c = {FIG1_INDEX[n] for n in "cdfik"}
    assert set(labeling.descendants(FIG1_INDEX["a"])) == d_a
    assert set(labeling.descendants(FIG1_INDEX["c"])) == d_c


@pytest.mark.parametrize("mode", ["subtree", "faithful"])
def test_labels_cover_exactly_descendants_fig1(mode):
    g = fig1_graph()
    labeling = build_labeling(g, mode=mode)
    labeling.validate(all_reachable_sets(g))


@pytest.mark.parametrize("mode", ["subtree", "faithful"])
def test_labels_cover_exactly_descendants_random(mode):
    rng = random.Random(1234)
    for _ in range(12):
        g = random_dag(rng, 18, edge_probability=0.2)
        labeling = build_labeling(g, mode=mode)
        labeling.validate(all_reachable_sets(g))


def test_modes_produce_identical_compressed_labels():
    rng = random.Random(99)
    for _ in range(10):
        g = random_dag(rng, 16, edge_probability=0.25)
        fast = build_labeling(g, mode="subtree")
        faithful = build_labeling(g, mode="faithful")
        assert fast.labels == faithful.labels
        assert fast.post == faithful.post


def test_cyclic_input_rejected():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    with pytest.raises(ValueError, match="DAG"):
        build_labeling(g)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown construction mode"):
        build_labeling(DiGraph(1), mode="banana")


def test_subtree_mode_rejects_non_dfs_forest():
    # The paper's Figure 3 forest is not a DFS forest (edge (g, i) goes to
    # a higher post number); only the faithful mode accepts it.
    with pytest.raises(ValueError, match="DFS"):
        build_labeling(fig1_graph(), mode="subtree", forest=paper_forest())


def test_empty_and_singleton_graphs():
    empty = build_labeling(DiGraph(0))
    assert empty.num_vertices == 0
    single = build_labeling(DiGraph(1))
    assert single.labels_of(0) == ((1, 1),)
    assert single.greach(0, 0)


def test_disconnected_components_get_separate_trees():
    g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
    labeling = build_labeling(g)
    assert len(labeling.roots) == 2
    assert labeling.greach(0, 1)
    assert not labeling.greach(0, 2)
    assert not labeling.greach(2, 1)


def test_diamond_graph():
    #    0
    #   / \
    #  1   2
    #   \ /
    #    3
    g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    labeling = build_labeling(g)
    for target in range(4):
        assert labeling.greach(0, target)
    assert labeling.greach(1, 3)
    assert labeling.greach(2, 3)
    assert not labeling.greach(1, 2)
    assert not labeling.greach(3, 0)


def test_uncompressed_count_at_least_compressed():
    rng = random.Random(5)
    g = random_dag(rng, 30, edge_probability=0.15)
    stats = build_labeling(g).stats()
    assert stats.uncompressed_labels >= stats.compressed_labels
    assert stats.compressed_labels >= 30  # at least one label per vertex


def test_reversed_labeling_answers_ancestor_queries():
    g = fig1_graph()
    reversed_labeling = build_reversed_labeling(g)
    truth = all_reachable_sets(g)
    for v in range(g.num_vertices):
        for u in range(g.num_vertices):
            # u reaches v in G  <=>  v reaches u in reversed G
            assert reversed_labeling.greach(v, u) == (v in truth[u])


def test_long_chain_compresses_to_single_label():
    n = 500
    g = DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
    labeling = build_labeling(g)
    assert labeling.labels_of(0) == ((1, n),)
    assert labeling.stats().compressed_labels == n
