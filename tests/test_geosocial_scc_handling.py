"""Unit tests for repro.geosocial.scc_handling (Section 5)."""

import random

from helpers import fig1_network, random_geosocial_network
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.graph import DiGraph


def spatial_scc_network():
    """A 2-cycle of spatial vertices plus a tail: one spatial SCC."""
    g = DiGraph.from_edges(4, [(0, 1), (1, 0), (2, 0), (1, 3)])
    points = [Point(1, 1), Point(3, 5), None, Point(10, 10)]
    return GeosocialNetwork(g, points, name="scc")


def test_dag_network_condensation_is_identity_like():
    cn = condense_network(fig1_network())
    assert cn.num_components == 12
    for v in range(12):
        assert cn.members[cn.super_of(v)] == [v]


def test_points_grouped_per_component():
    cn = condense_network(spatial_scc_network())
    giant = cn.super_of(0)
    assert cn.super_of(1) == giant
    pts = cn.points_of(giant)
    assert sorted(p.as_tuple() for p in pts) == [(1, 1), (3, 5)]
    assert cn.has_spatial(giant)
    assert not cn.has_spatial(cn.super_of(2))


def test_spatial_components_lists_only_pointed():
    cn = condense_network(spatial_scc_network())
    spatial = cn.spatial_components()
    assert cn.super_of(2) not in spatial
    assert cn.super_of(0) in spatial
    assert cn.super_of(3) in spatial
    assert len(spatial) == 2


def test_mbr_of_component():
    cn = condense_network(spatial_scc_network())
    giant = cn.super_of(0)
    assert cn.mbr_of(giant) == Rect(1, 1, 3, 5)
    assert cn.mbr_of(cn.super_of(2)) is None
    # singleton spatial component: degenerate MBR
    assert cn.mbr_of(cn.super_of(3)) == Rect(10, 10, 10, 10)


def test_replicate_entries_one_per_point():
    cn = condense_network(spatial_scc_network())
    entries = list(cn.replicate_entries())
    assert len(entries) == 3  # three spatial vertices total
    giant = cn.super_of(0)
    assert sum(1 for _, c in entries if c == giant) == 2


def test_mbr_entries_one_per_spatial_component():
    cn = condense_network(spatial_scc_network())
    entries = list(cn.mbr_entries())
    assert len(entries) == 2


def test_component_hits_region():
    cn = condense_network(spatial_scc_network())
    giant = cn.super_of(0)
    # region covering only the gap between the two member points: the MBR
    # intersects but no member point is inside -> must be False.
    gap = Rect(1.5, 2.0, 2.5, 4.0)
    assert cn.mbr_of(giant).intersects(gap)
    assert not cn.component_hits_region(giant, gap)
    # region containing one member point
    assert cn.component_hits_region(giant, Rect(0, 0, 2, 2))
    # region enclosing the whole MBR short-circuits
    assert cn.component_hits_region(giant, Rect(0, 0, 100, 100))
    # disjoint region
    assert not cn.component_hits_region(giant, Rect(50, 50, 60, 60))


def test_random_networks_condense_consistently():
    rng = random.Random(77)
    for _ in range(10):
        net = random_geosocial_network(rng)
        cn = condense_network(net)
        # every original spatial vertex contributes exactly one point
        total_points = sum(len(cn.points_of(c)) for c in range(cn.num_components))
        assert total_points == net.num_spatial
        # replicate entries match
        assert len(list(cn.replicate_entries())) == net.num_spatial
