"""Unit tests for repro.core.oracle."""

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph


def test_paper_example():
    oracle = RangeReachOracle(fig1_network())
    assert oracle.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert oracle.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_query_vertex_itself_counts():
    # A spatial query vertex inside R answers TRUE via the empty path.
    oracle = RangeReachOracle(fig1_network())
    e = FIG1_INDEX["e"]
    assert oracle.query(e, FIG1_REGION) is True


def test_witnesses_lists_all_reachable_in_region():
    oracle = RangeReachOracle(fig1_network())
    witnesses = oracle.witnesses(FIG1_INDEX["a"], FIG1_REGION)
    assert sorted(witnesses) == sorted([FIG1_INDEX["e"], FIG1_INDEX["h"]])
    assert oracle.witnesses(FIG1_INDEX["c"], FIG1_REGION) == []


def test_region_with_no_points():
    oracle = RangeReachOracle(fig1_network())
    empty = Rect(100, 100, 101, 101)
    assert oracle.query(FIG1_INDEX["a"], empty) is False


def test_cyclic_network_supported():
    # The oracle works on the original (possibly cyclic) network.
    g = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
    net = GeosocialNetwork(g, [None, None, Point(5, 5)])
    oracle = RangeReachOracle(net)
    assert oracle.query(0, Rect(4, 4, 6, 6)) is True
    assert oracle.query(2, Rect(0, 0, 1, 1)) is False


def test_size_bytes_zero():
    assert RangeReachOracle(fig1_network()).size_bytes() == 0
