"""ParallelExecutor: parity, chunking, deadline, fallback, observability."""

import time

import pytest

from repro import obs
from repro.core import RangeReachOracle, build_methods
from repro.exec import BatchTimeoutError, ParallelExecutor
from repro.geometry import Rect
from repro.pipeline import BuildContext

REGION = Rect(0.0, 0.0, 5.0, 5.0)
EMPTY_REGION = Rect(90.0, 90.0, 91.0, 91.0)


@pytest.fixture
def built(fig1_condensed):
    context = BuildContext(fig1_condensed)
    return build_methods(
        ("spareach-bfl", "socreach", "3dreach", "3dreach-rev"),
        context=context,
    )


def _pairs(network) -> list[tuple[int, Rect]]:
    pairs = []
    for v in range(network.num_vertices):
        pairs.append((v, REGION))
        pairs.append((v, EMPTY_REGION))
    return pairs * 3


# ----------------------------------------------------------------------
# Parity and basics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 4])
def test_run_matches_sequential_answers(built, fig1_net, workers):
    oracle = RangeReachOracle(fig1_net)
    pairs = _pairs(fig1_net)
    expected = [oracle.query(v, region) for v, region in pairs]
    with ParallelExecutor(workers=workers, chunk_size=3) as executor:
        assert executor.run(oracle, pairs) == expected
        for name, method in built.items():
            assert executor.run(method, pairs) == expected, name


def test_empty_batch(built):
    with ParallelExecutor(workers=2) as executor:
        assert executor.run(built["3dreach"], []) == []


def test_single_query_batch(built):
    method = built["3dreach"]
    with ParallelExecutor(workers=4) as executor:
        assert executor.run(method, [(0, REGION)]) == [method.query(0, REGION)]


def test_bare_query_target():
    class QueryOnly:
        def query(self, v, region):
            return v % 2 == 0

    pairs = [(v, REGION) for v in range(10)]
    with ParallelExecutor(workers=2, chunk_size=3) as executor:
        assert executor.run(QueryOnly(), pairs) == [
            v % 2 == 0 for v in range(10)
        ]


def test_constructor_validation():
    with pytest.raises(ValueError, match="workers"):
        ParallelExecutor(workers=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ParallelExecutor(chunk_size=0)
    with pytest.raises(ValueError, match="timeout"):
        ParallelExecutor(timeout=0)


def test_execute_many_through_executor(built, fig1_net):
    from repro.core import QueryRequest

    method = built["socreach"]
    requests = [QueryRequest(v, REGION) for v in range(fig1_net.num_vertices)]
    with ParallelExecutor(workers=2, chunk_size=2) as executor:
        results = method.execute_many(requests, executor=executor)
    assert [r.answer for r in results] == method.query_batch(
        [r.as_pair() for r in requests]
    )
    assert all(r.method == method.name for r in results)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class _Slow:
    name = "slow"

    def query_batch(self, chunk):
        time.sleep(0.02)
        return [False] * len(chunk)


@pytest.mark.parametrize("workers", [1, 2])
def test_deadline_raises_batch_timeout(workers):
    pairs = [(0, REGION)] * 40
    executor = ParallelExecutor(workers=workers, chunk_size=2, timeout=0.01)
    with executor:
        with pytest.raises(BatchTimeoutError) as info:
            executor.run(_Slow(), pairs)
    assert info.value.total == 20
    assert 0 <= info.value.completed < info.value.total


def test_per_run_timeout_overrides_default(built, fig1_net):
    pairs = _pairs(fig1_net)
    # Default timeout would trip on the slow target; the generous per-run
    # override must let a real method finish.
    with ParallelExecutor(workers=2, timeout=0.001) as executor:
        answers = executor.run(built["3dreach"], pairs, timeout=60.0)
    assert len(answers) == len(pairs)


def test_timeout_counted(built):
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=2, chunk_size=2, timeout=0.01) as ex:
            with pytest.raises(BatchTimeoutError):
                ex.run(_Slow(), [(0, REGION)] * 40)
        samples = obs.REGISTRY.counter_samples()
    assert samples.get("repro_exec_batch_timeouts_total", 0) == 1


# ----------------------------------------------------------------------
# Pool-unavailable fallback
# ----------------------------------------------------------------------
def test_sequential_fallback_when_pool_unavailable(
    built, fig1_net, monkeypatch
):
    def broken_pool(*args, **kwargs):
        raise RuntimeError("no threads in this environment")

    monkeypatch.setattr(
        "repro.exec.executor.ThreadPoolExecutor", broken_pool
    )
    method = built["3dreach"]
    pairs = _pairs(fig1_net)
    expected = method.query_batch(pairs)
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=4) as executor:
            assert executor.run(method, pairs) == expected
            # The broken pool is remembered; no retry storm.
            assert executor.run(method, pairs) == expected
        samples = obs.REGISTRY.counter_samples()
    assert samples["repro_exec_sequential_fallbacks_total"] == 2
    assert samples['repro_exec_batches_total{mode="sequential"}'] == 2


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_obs_counters_and_worker_labels(built, fig1_net):
    method = built["socreach"]
    pairs = _pairs(fig1_net)
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=2, chunk_size=4) as executor:
            executor.run(method, pairs)
        samples = obs.REGISTRY.counter_samples()
    assert samples['repro_exec_batches_total{mode="parallel"}'] == 1
    assert samples["repro_exec_batch_queries_total"] == len(pairs)
    # reset() zeroes but keeps label sets from earlier tests (e.g. the
    # MainThread label of a sequential deadline run); look at non-zero.
    chunk_counts = {
        key: value
        for key, value in samples.items()
        if key.startswith("repro_exec_chunks_total") and value > 0
    }
    assert sum(chunk_counts.values()) == len(executor._chunks(pairs))
    assert all("repro-exec" in key for key in chunk_counts)


def test_batch_trace_stitches_chunk_spans(built, fig1_net):
    method = built["3dreach"]
    pairs = _pairs(fig1_net)
    with obs.observability(True):
        with ParallelExecutor(workers=2, chunk_size=4) as executor:
            with obs.trace("serve") as trace:
                executor.run(method, pairs)
    names = [node.name for _, node in trace.root.walk()]
    assert "exec.batch" in names
    chunk_names = [n for n in names if n.startswith("exec.chunk[")]
    assert len(chunk_names) == len(executor._chunks(pairs))
    # Cross-thread handoff keeps the tree shaped: worker-side spans
    # attach *under* their exec.chunk subtree, never as flat siblings.
    batch_span = next(
        node for _, node in trace.root.walk() if node.name == "exec.batch"
    )
    assert all(
        child.name.startswith("exec.chunk[") for child in batch_span.children
    )
    # The attached subtrees carry the worker-side method spans (the whole
    # point of the handoff): query_batch uses the vectorized path, whose
    # spans live under each chunk.
    for chunk in batch_span.children:
        assert chunk.children, "worker subtree should carry nested spans"
        assert all(
            node.name != chunk.name
            for _, node in chunk.walk()
            if node is not chunk
        )


# ----------------------------------------------------------------------
# timeout=None sentinel and partial answers on timeout
# ----------------------------------------------------------------------
class _SlowAlternating:
    """Slow target with per-query answers, to check prefix correctness."""

    name = "slow-alt"

    def query_batch(self, chunk):
        time.sleep(0.02)
        return [v % 2 == 0 for v, _ in chunk]


def test_explicit_timeout_none_lifts_constructor_default():
    pairs = [(0, REGION)] * 40
    with ParallelExecutor(workers=1, chunk_size=2, timeout=0.01) as executor:
        with pytest.raises(BatchTimeoutError):
            executor.run(_Slow(), pairs)
        # The same batch with timeout=None must run to completion even
        # though the constructor set a default deadline.
        assert executor.run(_Slow(), pairs, timeout=None) == [False] * 40


def test_run_rejects_nonpositive_timeout(built):
    with ParallelExecutor(workers=1) as executor:
        for bad in (0, -1.5):
            with pytest.raises(ValueError, match="timeout"):
                executor.run(built["3dreach"], [(0, REGION)], timeout=bad)


def test_partial_answers_and_counters_sequential():
    pairs = [(v, REGION) for v in range(40)]
    expected = [v % 2 == 0 for v in range(40)]
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=1, chunk_size=2, timeout=0.05) as ex:
            with pytest.raises(BatchTimeoutError) as info:
                ex.run(_SlowAlternating(), pairs)
        samples = obs.REGISTRY.counter_samples()
    exc = info.value
    assert 0 < exc.completed < exc.total == 20
    # The carried answers are the completed chunks' answers, in input
    # order — an exact prefix of the full batch's answer list.
    assert len(exc.answers) == exc.completed * 2
    assert exc.answers == expected[: len(exc.answers)]
    # Counters reconcile: the aborted batch is still counted under its
    # mode and only actually-answered queries are counted.
    assert samples['repro_exec_batches_total{mode="sequential"}'] == 1
    assert samples["repro_exec_batch_queries_total"] == len(exc.answers)
    assert samples["repro_exec_batch_timeouts_total"] == 1


def test_partial_answers_and_counters_parallel():
    pairs = [(v, REGION) for v in range(60)]
    expected = [v % 2 == 0 for v in range(60)]
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=2, chunk_size=2, timeout=0.06) as ex:
            with pytest.raises(BatchTimeoutError) as info:
                ex.run(_SlowAlternating(), pairs)
        samples = obs.REGISTRY.counter_samples()
    exc = info.value
    assert exc.total == 30 and exc.completed < exc.total
    assert len(exc.answers) == exc.completed * 2
    assert exc.answers == expected[: len(exc.answers)]
    assert samples['repro_exec_batches_total{mode="parallel"}'] == 1
    assert samples["repro_exec_batch_queries_total"] == len(exc.answers)
    assert samples["repro_exec_batch_timeouts_total"] == 1


def test_partial_answers_and_counters_fallback(monkeypatch):
    def broken_pool(*args, **kwargs):
        raise RuntimeError("no threads in this environment")

    monkeypatch.setattr(
        "repro.exec.executor.ThreadPoolExecutor", broken_pool
    )
    pairs = [(v, REGION) for v in range(40)]
    expected = [v % 2 == 0 for v in range(40)]
    with obs.observability(True):
        obs.REGISTRY.reset()
        with ParallelExecutor(workers=4, chunk_size=2, timeout=0.05) as ex:
            with pytest.raises(BatchTimeoutError) as info:
                ex.run(_SlowAlternating(), pairs)
        samples = obs.REGISTRY.counter_samples()
    exc = info.value
    assert exc.answers == expected[: len(exc.answers)]
    assert samples["repro_exec_sequential_fallbacks_total"] == 1
    assert samples['repro_exec_batches_total{mode="sequential"}'] == 1
    assert samples["repro_exec_batch_queries_total"] == len(exc.answers)
