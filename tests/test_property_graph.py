"""Property-based tests for the graph substrate (SCC, condensation, DFS)."""

from hypothesis import given, settings, strategies as st

from repro.graph import DiGraph, condense, dfs_forest
from repro.graph.scc import scc_membership
from repro.graph.traversal import is_acyclic, path_exists, topological_order


@st.composite
def digraphs(draw, max_vertices=12):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=40)) if pairs else []
    return DiGraph.from_edges(n, edges)


@given(digraphs())
@settings(max_examples=60, deadline=None)
def test_scc_is_mutual_reachability(graph):
    member, _ = scc_membership(graph)
    n = graph.num_vertices
    for u in range(n):
        for v in range(u + 1, n):
            same = member[u] == member[v]
            mutual = path_exists(graph, u, v) and path_exists(graph, v, u)
            assert same == mutual


@given(digraphs())
@settings(max_examples=60, deadline=None)
def test_condensation_is_acyclic_and_preserves_reachability(graph):
    c = condense(graph)
    assert is_acyclic(c.dag)
    n = graph.num_vertices
    for u in range(n):
        for v in range(n):
            assert path_exists(graph, u, v) == path_exists(
                c.dag, c.component_of[u], c.component_of[v]
            )


@given(digraphs())
@settings(max_examples=60, deadline=None)
def test_condensation_members_partition(graph):
    c = condense(graph)
    seen = sorted(v for members in c.members for v in members)
    assert seen == list(range(graph.num_vertices))


@given(digraphs())
@settings(max_examples=60, deadline=None)
def test_dfs_forest_posts_are_permutation(graph):
    forest = dfs_forest(graph)
    n = graph.num_vertices
    assert sorted(forest.post) == list(range(1, n + 1))


@given(digraphs())
@settings(max_examples=60, deadline=None)
def test_topological_order_iff_acyclic(graph):
    if is_acyclic(graph):
        order = topological_order(graph)
        position = {v: i for i, v in enumerate(order)}
        for u, v in graph.edges():
            assert position[u] < position[v]
