"""Property-based tests for the extended query engine vs the oracle."""

from hypothesis import given, settings, strategies as st

from repro.core import GeosocialQueryEngine, RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.graph import DiGraph

coordinate = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def networks(draw, max_vertices=10):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = (
        draw(st.lists(st.sampled_from(pairs), unique=True, max_size=25))
        if pairs
        else []
    )
    graph = DiGraph.from_edges(n, edges)
    points = [
        Point(draw(coordinate), draw(coordinate))
        if draw(st.booleans())
        else None
        for _ in range(n)
    ]
    if not any(p is not None for p in points):
        points[0] = Point(draw(coordinate), draw(coordinate))
    return GeosocialNetwork(graph, points)


@st.composite
def regions(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


@given(networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_count_witnesses_threshold_match_oracle(network, data):
    oracle = RangeReachOracle(network)
    engine = GeosocialQueryEngine(condense_network(network))
    for _ in range(4):
        v = data.draw(st.integers(0, network.num_vertices - 1))
        region = data.draw(regions())
        expected = sorted(oracle.witnesses(v, region))
        assert sorted(engine.witnesses(v, region)) == expected
        assert engine.count(v, region) == len(expected)
        assert engine.query(v, region) == bool(expected)
        k = data.draw(st.integers(0, network.num_vertices + 1))
        assert engine.at_least(v, region, k) == (len(expected) >= k)


@given(networks(), st.data())
@settings(max_examples=30, deadline=None)
def test_nearest_matches_brute_force(network, data):
    oracle = RangeReachOracle(network)
    engine = GeosocialQueryEngine(condense_network(network))
    space = network.space()
    everything = Rect(
        space.xlo - 1, space.ylo - 1, space.xhi + 1, space.yhi + 1
    )
    v = data.draw(st.integers(0, network.num_vertices - 1))
    q = Point(data.draw(coordinate), data.draw(coordinate))
    reachable = oracle.witnesses(v, everything)
    got = engine.nearest(v, q)
    if not reachable:
        assert got is None
    else:
        best = min(q.distance_to(network.point_of(w)) for w in reachable)
        assert got is not None
        assert abs(got[1] - best) < 1e-9
