"""Unit tests for the library CLI (python -m repro)."""

import pytest

from repro.cli import main


@pytest.fixture
def dataset_dir(tmp_path):
    directory = tmp_path / "net"
    code = main([
        "generate", "weeplaces", str(directory),
        "--scale", "0.0005", "--seed", "3",
    ])
    assert code == 0
    return directory


def test_generate_writes_files(dataset_dir, capsys):
    assert (dataset_dir / "edges.txt").exists()
    assert (dataset_dir / "points.txt").exists()


def test_generate_output_mentions_sizes(tmp_path, capsys):
    main(["generate", "yelp", str(tmp_path / "y"), "--scale", "0.0005"])
    out = capsys.readouterr().out
    assert "|V|=" in out and "|E|=" in out


def test_stats_prints_table3_fields(dataset_dir, capsys):
    assert main(["stats", str(dataset_dir)]) == 0
    out = capsys.readouterr().out
    for field in ("#users", "#venues", "|V|", "#SCCs", "largest SCC"):
        assert field in out


def test_label_builds_and_saves(dataset_dir, tmp_path, capsys):
    out_file = tmp_path / "fwd.labels"
    assert main(["label", str(dataset_dir), str(out_file)]) == 0
    assert out_file.exists()
    out = capsys.readouterr().out
    assert "labels" in out

    from repro.labeling import load_labeling

    labeling = load_labeling(out_file)
    assert labeling.num_vertices > 0


def test_label_reversed(dataset_dir, tmp_path):
    out_file = tmp_path / "rev.labels"
    assert main(["label", str(dataset_dir), str(out_file), "--reversed"]) == 0
    assert out_file.exists()


@pytest.mark.parametrize("method", ["3dreach", "socreach", "georeach"])
def test_query_runs(dataset_dir, capsys, method):
    code = main([
        "query", str(dataset_dir),
        "--vertex", "0",
        "--region", "0,0,1,1",
        "--method", method,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "RangeReach(G, 0," in out
    assert f"method={method}" in out


def test_query_whole_space_from_user_is_true(dataset_dir, capsys):
    # weeplaces users are all in the social SCC and check in somewhere.
    main([
        "query", str(dataset_dir),
        "--vertex", "0", "--region=-1,-1,2,2",
    ])
    out = capsys.readouterr().out
    assert "= True" in out


def test_query_vertex_out_of_range(dataset_dir, capsys):
    code = main([
        "query", str(dataset_dir),
        "--vertex", "999999", "--region", "0,0,1,1",
    ])
    assert code == 2
    assert "outside" in capsys.readouterr().err


def test_query_malformed_region(dataset_dir):
    with pytest.raises(SystemExit):
        main([
            "query", str(dataset_dir),
            "--vertex", "0", "--region", "0,0,1",
        ])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


@pytest.fixture
def batch_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(
        "# hot-area batch\n"
        "0 -1,-1,2,2\n"
        "\n"
        "1 0,0,1,1   # trailing comment\n"
        "2 -1,-1,2,2\n"
    )
    return path


def test_query_batch_file(dataset_dir, batch_file, capsys):
    code = main([
        "query", str(dataset_dir),
        "--batch", str(batch_file), "--method", "socreach",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("RangeReach(G, ") == 3
    assert "batch=3 workers=1" in out
    assert "q/s" in out


def test_query_batch_with_workers(dataset_dir, batch_file, capsys):
    code = main([
        "query", str(dataset_dir),
        "--batch", str(batch_file), "--workers", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "batch=3 workers=4" in out


def test_query_batch_mutually_exclusive_with_vertex(
    dataset_dir, batch_file, capsys
):
    code = main([
        "query", str(dataset_dir),
        "--batch", str(batch_file), "--vertex", "0",
    ])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_query_requires_vertex_and_region_or_batch(dataset_dir, capsys):
    code = main(["query", str(dataset_dir), "--vertex", "0"])
    assert code == 2
    assert "--batch" in capsys.readouterr().err


def test_query_batch_malformed_line(dataset_dir, tmp_path, capsys):
    path = tmp_path / "bad.txt"
    path.write_text("0 -1,-1,2,2\nnot-a-vertex 0,0,1,1\n")
    code = main(["query", str(dataset_dir), "--batch", str(path)])
    assert code == 2
    err = capsys.readouterr().err
    assert "bad.txt:2" in err


def test_query_batch_missing_file(dataset_dir, capsys):
    code = main([
        "query", str(dataset_dir), "--batch", "/no/such/file.txt",
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_query_batch_vertex_out_of_range(dataset_dir, tmp_path, capsys):
    path = tmp_path / "oob.txt"
    path.write_text("999999 0,0,1,1\n")
    code = main(["query", str(dataset_dir), "--batch", str(path)])
    assert code == 2
    assert "outside" in capsys.readouterr().err


def test_query_batch_matches_single_queries(dataset_dir, batch_file, capsys):
    assert main([
        "query", str(dataset_dir),
        "--batch", str(batch_file), "--method", "3dreach",
    ]) == 0
    batch_out = capsys.readouterr().out
    batch_lines = [
        line for line in batch_out.splitlines()
        if line.startswith("RangeReach(")
    ]
    singles = []
    for vertex, region in (("0", "-1,-1,2,2"), ("1", "0,0,1,1"),
                           ("2", "-1,-1,2,2")):
        assert main([
            "query", str(dataset_dir),
            "--vertex", vertex, f"--region={region}",
            "--method", "3dreach",
        ]) == 0
        out = capsys.readouterr().out
        singles.extend(
            line for line in out.splitlines()
            if line.startswith("RangeReach(")
        )
    assert batch_lines == singles


def test_query_batch_trace_prints_batch_span(dataset_dir, batch_file, capsys):
    code = main([
        "query", str(dataset_dir),
        "--batch", str(batch_file), "--workers", "2", "--trace",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "exec.batch" in out
    assert "exec.chunk[" in out


def test_query_prints_work_counters(dataset_dir, capsys):
    code = main([
        "query", str(dataset_dir),
        "--vertex", "0", "--region=-1,-1,2,2",
        "--method", "spareach-bfl",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "work:" in out
    assert 'repro_method_queries_total{method="spareach-bfl"}=1' in out


def test_query_trace_prints_span_tree(dataset_dir, capsys):
    code = main([
        "query", str(dataset_dir),
        "--vertex", "0", "--region=-1,-1,2,2",
        "--method", "3dreach", "--trace",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "query" in out
    assert "3dreach.query" in out
    assert "us" in out


def test_stats_obs_json(dataset_dir, capsys):
    import json

    code = main([
        "stats", str(dataset_dir), "--obs", "json", "--obs-queries", "3",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    counters = payload["counters"]
    # Every registered method ran the batch.
    from repro.core import METHOD_REGISTRY, build_method
    from repro.geosocial import GeosocialNetwork, condense_network

    condensed = condense_network(GeosocialNetwork.load(dataset_dir))
    for name in METHOD_REGISTRY:
        display = build_method(name, condensed).name
        key = f'repro_method_queries_total{{method="{display}"}}'
        assert counters[key] == 3


def test_stats_obs_prometheus(dataset_dir, capsys):
    code = main([
        "stats", str(dataset_dir), "--obs", "prom", "--obs-queries", "2",
        "--obs-methods", "3dreach",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_method_queries_total counter" in out
    assert 'repro_method_queries_total{method="3dreach"} 2' in out


def test_stats_obs_unknown_method(dataset_dir, capsys):
    code = main([
        "stats", str(dataset_dir), "--obs", "json",
        "--obs-methods", "no-such-method",
    ])
    assert code == 2
    assert "unknown method" in capsys.readouterr().err


# ----------------------------------------------------------------------
# snapshot save / load / inspect
# ----------------------------------------------------------------------
@pytest.fixture
def snapshot_dir(dataset_dir, tmp_path):
    directory = tmp_path / "snap"
    assert main(["snapshot", "save", str(dataset_dir), str(directory)]) == 0
    return directory


def test_snapshot_save_writes_manifest_and_parts(dataset_dir, tmp_path, capsys):
    directory = tmp_path / "fresh-snap"
    assert main(["snapshot", "save", str(dataset_dir), str(directory)]) == 0
    assert (directory / "manifest.json").exists()
    assert any((directory / "parts").iterdir())
    out = capsys.readouterr().out
    assert "parts" in out and "bytes" in out


def test_snapshot_save_unknown_method(dataset_dir, tmp_path, capsys):
    code = main([
        "snapshot", "save", str(dataset_dir), str(tmp_path / "s"),
        "--methods", "no-such-method",
    ])
    assert code == 2
    assert "unknown method" in capsys.readouterr().err


def test_snapshot_load_reports_zero_builds(snapshot_dir, capsys):
    assert main(["snapshot", "load", str(snapshot_dir)]) == 0
    out = capsys.readouterr().out
    assert "misses=0" in out
    assert "labeling_builds=0" in out


def test_snapshot_load_missing_directory(tmp_path, capsys):
    code = main(["snapshot", "load", str(tmp_path / "absent")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_snapshot_inspect_clean(snapshot_dir, capsys):
    assert main(["snapshot", "inspect", str(snapshot_dir)]) == 0
    out = capsys.readouterr().out
    assert "format=repro-snapshot" in out
    assert "ok" in out


def test_snapshot_inspect_reports_corruption(snapshot_dir, capsys):
    part = sorted((snapshot_dir / "parts").iterdir())[0]
    data = bytearray(part.read_bytes())
    data[-1] ^= 0xFF
    part.write_bytes(bytes(data))
    code = main(["snapshot", "inspect", str(snapshot_dir)])
    assert code == 2
    captured = capsys.readouterr()
    assert "checksum mismatch" in captured.out
    assert "failed verification" in captured.err


def test_snapshot_inspect_missing_manifest(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    code = main(["snapshot", "inspect", str(tmp_path / "empty")])
    assert code == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro slo — SLO status against a live server
# ----------------------------------------------------------------------
def test_slo_subcommand_reports_burn_rates(capsys):
    import json
    import urllib.request

    from repro.datasets import make_network
    from repro.serve import QueryService, start_server
    from repro.system import GeosocialDatabase

    network = make_network("gowalla", scale=0.0005, seed=3)
    service = QueryService(GeosocialDatabase.from_network(network))
    service.warm_up()
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        request = urllib.request.Request(
            base + "/query",
            data=json.dumps({"vertex": 0, "region": [0, 0, 1, 1]}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.status == 200
        assert main(["slo", "--url", base]) == 0
        out = capsys.readouterr().out
        assert "/query" in out and "burn" in out and "budget" in out
        assert main(["slo", "--url", base, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "/query" in payload["endpoints"]
    finally:
        server.drain(persist=False)


def test_slo_subcommand_unreachable_server(capsys):
    assert main(["slo", "--url", "http://127.0.0.1:1", "--timeout", "1"]) == 2
    assert "error" in capsys.readouterr().err
