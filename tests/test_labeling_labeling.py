"""Unit tests for repro.labeling.labeling (the query API)."""

import random

import pytest

from helpers import random_dag
from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.labeling import IntervalLabeling, build_labeling


def test_mismatched_arrays_rejected():
    with pytest.raises(ValueError):
        IntervalLabeling(
            post=[1, 2], labels=[()], parent=[-1, -1], roots=[0],
            uncompressed_labels=0,
        )


def test_vertex_at_post_inverts_post():
    g = DiGraph.from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
    labeling = build_labeling(g)
    for v in range(5):
        assert labeling.vertex_at_post[labeling.post_of(v) - 1] == v


def test_greach_matches_bfs_truth():
    rng = random.Random(21)
    g = random_dag(rng, 25, edge_probability=0.15)
    labeling = build_labeling(g)
    truth = all_reachable_sets(g)
    for v in range(25):
        for u in range(25):
            assert labeling.greach(v, u) == (u in truth[v])


def test_descendants_includes_self():
    g = DiGraph(3)
    labeling = build_labeling(g)
    for v in range(3):
        assert list(labeling.descendants(v)) == [v]


def test_num_descendants_matches_enumeration():
    rng = random.Random(22)
    g = random_dag(rng, 20, edge_probability=0.2)
    labeling = build_labeling(g)
    for v in range(20):
        assert labeling.num_descendants(v) == len(list(labeling.descendants(v)))


def test_covers_post():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
    labeling = build_labeling(g)
    assert labeling.covers_post(0, labeling.post_of(2))
    assert not labeling.covers_post(2, labeling.post_of(0))


def test_stats_compression_ratio():
    n = 100
    g = DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
    stats = build_labeling(g).stats()
    assert stats.compressed_labels == n
    assert 0.0 <= stats.compression_ratio < 1.0


def test_stats_ratio_zero_when_empty():
    stats = build_labeling(DiGraph(0)).stats()
    assert stats.compression_ratio == 0.0


def test_size_bytes_scales_with_labels():
    small = build_labeling(DiGraph(10))
    n = 200
    big = build_labeling(
        DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
    )
    assert big.size_bytes() > small.size_bytes()
    assert small.size_bytes() > 0


def test_validate_raises_on_wrong_truth():
    g = DiGraph.from_edges(2, [(0, 1)])
    labeling = build_labeling(g)
    with pytest.raises(AssertionError):
        labeling.validate([{0}, {1}])  # missing 1 in D(0)
