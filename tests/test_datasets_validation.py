"""Unit tests for repro.datasets.validation."""

import pytest

from repro.datasets import make_network, validate_network
from repro.geometry import Point
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph


@pytest.mark.parametrize(
    "profile", ["foursquare", "gowalla", "weeplaces", "yelp"]
)
def test_generated_networks_validate(profile, small_datasets):
    report = validate_network(small_datasets[profile], profile)
    assert report.ok, report.summary()
    assert "all structural invariants hold" in report.summary()


def test_profile_defaults_to_network_name(small_datasets):
    report = validate_network(small_datasets["gowalla"])
    assert report.profile == "gowalla"
    assert report.ok


def test_unknown_profile_rejected(small_datasets):
    with pytest.raises(ValueError, match="unknown dataset profile"):
        validate_network(small_datasets["gowalla"], "myspace")


def _hand_network(kinds, points, edges):
    graph = DiGraph.from_edges(len(kinds), edges)
    return GeosocialNetwork(graph, points, kinds=kinds, name="gowalla")


def test_detects_venue_with_outgoing_edge():
    net = _hand_network(
        ["user", "venue"],
        [None, Point(0.5, 0.5)],
        [(1, 0)],  # venue -> user: venues must be sinks
    )
    report = validate_network(net, "gowalla")
    assert not report.ok
    assert any(i.check == "venues-are-sinks" for i in report.issues)


def test_detects_broken_giant_scc():
    # gowalla requires all users in one SCC; two isolated users break it.
    net = _hand_network(
        ["user", "user", "venue", "venue", "venue", "venue", "venue",
         "venue", "venue", "venue", "venue", "venue", "venue", "venue"],
        [None, None] + [Point(0.5, 0.5)] * 12,
        [(0, 2)],
    )
    report = validate_network(net, "gowalla")
    assert any(i.check == "giant-scc" for i in report.issues)


def test_detects_out_of_square_geometry():
    net = _hand_network(
        ["user"] + ["venue"] * 7,
        [None] + [Point(5.0, 5.0)] + [Point(0.5, 0.5)] * 6,
        [(0, 1)],
    )
    report = validate_network(net, "weeplaces")
    assert any(i.check == "geometry" for i in report.issues)


def test_detects_wrong_ratio():
    # Yelp is user-heavy (~13:1); a venue-heavy network must trip.
    net = _hand_network(
        ["user"] + ["venue"] * 9,
        [None] + [Point(0.5, 0.5)] * 9,
        [],
    )
    report = validate_network(net, "yelp")
    assert any(i.check == "user-venue-ratio" for i in report.issues)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_invariants_robust_across_seeds(seed):
    # The regimes must hold for any seed, not just the suite's default.
    from repro.datasets import make_network

    for profile in ("gowalla", "yelp"):
        network = make_network(profile, scale=0.0005, seed=seed)
        report = validate_network(network, profile)
        assert report.ok, report.summary()


def test_cli_generate_verify(tmp_path, capsys):
    from repro.cli import main

    code = main([
        "generate", "gowalla", str(tmp_path / "g"),
        "--scale", "0.0005", "--verify",
    ])
    assert code == 0
    assert "all structural invariants hold" in capsys.readouterr().out
