"""Unit tests for repro.spatial.linear."""

import pytest

from repro.spatial import LinearScanIndex


def test_empty_index():
    index = LinearScanIndex(dims=2)
    assert len(index) == 0
    assert index.search_all((0, 0, 1, 1)) == []
    assert index.any_intersecting((0, 0, 1, 1)) is None


def test_insert_and_search():
    index = LinearScanIndex(dims=2)
    index.insert_point((0.5, 0.5), "a")
    index.insert((0.9, 0.9, 1.5, 1.5), "b")
    assert index.search_all((0, 0, 1, 1)) == ["a", "b"]
    assert index.search_all((1.2, 1.2, 2, 2)) == ["b"]
    assert index.count_intersecting((0, 0, 2, 2)) == 2


def test_bulk_load():
    entries = [((i, i, i, i), i) for i in range(5)]
    index = LinearScanIndex.bulk_load(entries, dims=2)
    assert len(index) == 5
    assert index.any_intersecting((3, 3, 10, 10)) == 3


def test_dims_validation():
    with pytest.raises(ValueError):
        LinearScanIndex(dims=0)
    index = LinearScanIndex(dims=3)
    with pytest.raises(ValueError):
        index.insert((0, 0, 1, 1), "2d bounds in 3d index")
