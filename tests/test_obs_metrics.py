"""Unit tests for the repro.obs metrics registry and exporters."""

import json
import math

import pytest

from repro.obs import export
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    observability,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_semantics(registry):
    c = registry.counter("c_total", "help text")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5
    assert c.sample_key == "c_total"


def test_gauge_semantics(registry):
    g = registry.gauge("g")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7
    g.set(-3)
    assert g.value == -3


def test_histogram_buckets(registry):
    h = registry.histogram("h_seconds", start=1.0, factor=2.0, buckets=3)
    # Bounds: 1, 2, 4; +Inf implicit.
    assert h.bounds == (1.0, 2.0, 4.0)
    for value in (0.5, 1.0, 3.0, 100.0):
        h.observe(value)
    assert h.count == 4
    assert h.sum == pytest.approx(104.5)
    buckets = dict(h.bucket_counts())
    # Cumulative counts; bounds are inclusive (Prometheus `le`).
    assert buckets[1.0] == 2
    assert buckets[2.0] == 2
    assert buckets[4.0] == 3
    assert buckets[math.inf] == 4


def test_histogram_rejects_bad_layout(registry):
    with pytest.raises(ValueError):
        Histogram("h", start=0.0)
    with pytest.raises(ValueError):
        Histogram("h", factor=1.0)
    with pytest.raises(ValueError):
        Histogram("h", buckets=0)


def test_counter_family_children(registry):
    fam = registry.counter_family("f_total", label_names=("method",))
    a = fam.labels(method="a")
    b = fam.labels(method="b")
    assert a is fam.labels(method="a")  # resolved once, cached
    a.inc(3)
    b.inc()
    assert a.sample_key == 'f_total{method="a"}'
    assert registry.value("f_total", method="a") == 3
    assert registry.value("f_total", method="b") == 1
    assert registry.value("f_total", method="never-touched") == 0
    with pytest.raises(ValueError):
        fam.labels(wrong="a")


def test_get_or_create_and_kind_mismatch(registry):
    c1 = registry.counter("same")
    c2 = registry.counter("same")
    assert c1 is c2
    with pytest.raises(ValueError):
        registry.gauge("same")
    assert "same" in registry
    assert "other" not in registry


def test_counter_samples_flattens_families(registry):
    registry.counter("plain_total").inc(2)
    fam = registry.counter_family("fam_total")
    fam.labels(method="x").inc(7)
    samples = registry.counter_samples()
    assert samples == {"plain_total": 2, 'fam_total{method="x"}': 7}


def test_snapshot_is_isolated(registry):
    c = registry.counter("c_total")
    h = registry.histogram("h_seconds", start=1.0, factor=2.0, buckets=2)
    c.inc()
    h.observe(1.5)
    snap = registry.snapshot()
    c.inc(10)
    h.observe(0.5)
    # The snapshot must not see updates made after it was taken.
    assert snap["counters"]["c_total"] == 1
    assert snap["histograms"]["h_seconds"]["count"] == 1
    assert registry.snapshot()["counters"]["c_total"] == 11


def test_reset_zeroes_but_keeps_registrations(registry):
    c = registry.counter("c_total")
    g = registry.gauge("g")
    fam = registry.counter_family("f_total")
    child = fam.labels(method="m")
    c.inc(5)
    g.set(9)
    child.inc(2)
    registry.reset()
    assert c.value == 0
    assert g.value == 0
    assert child.value == 0
    # Same objects still registered: bound references stay valid.
    assert registry.counter("c_total") is c
    assert fam.labels(method="m") is child


def test_value_on_histogram_raises(registry):
    registry.histogram("h_seconds")
    with pytest.raises(ValueError):
        registry.value("h_seconds")


def test_describe(registry):
    registry.counter("a_total", "first")
    registry.gauge("b", "second")
    assert registry.describe() == [
        ("a_total", "counter", "first"),
        ("b", "gauge", "second"),
    ]


# ----------------------------------------------------------------------
# Enable/disable switch
# ----------------------------------------------------------------------
def test_observability_switch():
    assert enabled()  # on by default
    disable()
    try:
        assert not enabled()
    finally:
        enable()
    with observability(False):
        assert not enabled()
        with observability(True):
            assert enabled()
        assert not enabled()
    assert enabled()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_render_json(registry):
    registry.counter("c_total", "a counter").inc(3)
    registry.gauge("g").set(2)
    registry.histogram("h_seconds", start=1.0, factor=2.0, buckets=2).observe(5.0)
    payload = json.loads(export.render_json(registry))
    assert payload["counters"]["c_total"] == 3
    assert payload["gauges"]["g"] == 2
    hist = payload["histograms"]["h_seconds"]
    assert hist["count"] == 1
    # +Inf serialized as a string (JSON has no infinity literal).
    assert hist["buckets"][-1][0] == "+Inf"
    assert hist["buckets"][-1][1] == 1


def test_render_prometheus(registry):
    registry.counter("c_total", "a counter").inc(3)
    fam = registry.counter_family("f_total", "a family")
    fam.labels(method="3dreach").inc(2)
    registry.histogram("h_seconds", start=1.0, factor=2.0, buckets=2).observe(1.5)
    text = export.render_prometheus(registry)
    assert "# HELP c_total a counter\n" in text
    assert "# TYPE c_total counter\n" in text
    assert "\nc_total 3\n" in text or text.startswith("c_total 3\n")
    assert 'f_total{method="3dreach"} 2' in text
    assert "# TYPE h_seconds histogram" in text
    assert 'h_seconds_bucket{le="2.0"} 1' in text
    assert 'h_seconds_bucket{le="+Inf"} 1' in text
    assert "h_seconds_sum 1.5" in text
    assert "h_seconds_count 1" in text
    # Exactly one HELP/TYPE header per metric name.
    assert text.count("# TYPE f_total") == 1
