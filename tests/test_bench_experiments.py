"""Unit tests for repro.bench.experiments helpers."""

import pytest


@pytest.fixture(autouse=True)
def small_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.0005")
    monkeypatch.setenv("REPRO_QUERIES", "3")
    monkeypatch.setenv("REPRO_DATASETS", "weeplaces")


def test_get_workload_cached():
    from repro.bench.experiments import get_workload

    assert get_workload("weeplaces") is get_workload("weeplaces")


def test_chart_series_axes():
    from repro.bench.experiments import chart_series
    from repro.workloads import (
        DEFAULT_DEGREE_BUCKETS,
        DEFAULT_EXTENTS,
        DEFAULT_SELECTIVITIES,
    )

    methods = ("socreach", "3dreach")
    for axis, expected_len in (
        ("extent", len(DEFAULT_EXTENTS)),
        ("degree", len(DEFAULT_DEGREE_BUCKETS)),
        ("selectivity", len(DEFAULT_SELECTIVITIES)),
    ):
        x_labels, series = chart_series("weeplaces", methods, axis)
        assert len(x_labels) == expected_len
        assert set(series) == set(methods)
        for values in series.values():
            assert len(values) == expected_len
            assert all(v >= 0 for v in values)


def test_chart_series_rejects_unknown_axis():
    from repro.bench.experiments import chart_series

    with pytest.raises(ValueError, match="axis"):
        chart_series("weeplaces", ("socreach",), "altitude")


def test_split_timing_classes():
    from repro.bench.harness import get_bundle, time_queries_split
    from repro.bench.experiments import get_workload, DEFAULT_BUCKET

    bundle = get_bundle("weeplaces", ("3dreach",))
    batch = get_workload("weeplaces").batch_by_extent(5.0, DEFAULT_BUCKET, 10)
    split = time_queries_split(bundle["3dreach"], batch)
    assert split.positives + split.negatives == 10
    if split.positives:
        assert split.positive_avg is not None and split.positive_avg > 0
    else:
        assert split.positive_avg is None
    if split.negatives:
        assert split.negative_avg is not None and split.negative_avg > 0


def test_split_timing_rejects_empty():
    from repro.bench.harness import get_bundle, time_queries_split

    bundle = get_bundle("weeplaces", ("3dreach",))
    with pytest.raises(ValueError):
        time_queries_split(bundle["3dreach"], [])
