"""Unit tests for repro.graph.condensation."""

import random

from helpers import random_digraph
from repro.graph import DiGraph, condense
from repro.graph.traversal import is_acyclic, path_exists


def test_condensation_of_dag_is_isomorphic():
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    c = condense(g)
    assert c.num_components == 4
    assert c.dag.num_edges == 4
    assert all(len(m) == 1 for m in c.members)


def test_condensation_collapses_cycle():
    g = DiGraph.from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)])
    c = condense(g)
    assert c.num_components == 3
    cycle_component = c.component_of[0]
    assert c.component_of[1] == cycle_component
    assert sorted(c.members[cycle_component]) == [0, 1]


def test_condensation_is_always_acyclic():
    rng = random.Random(3)
    for _ in range(20):
        g = random_digraph(rng, 15, 40)
        assert is_acyclic(condense(g).dag)


def test_condensation_deduplicates_edges():
    # two SCCs with three parallel inter-component edges
    g = DiGraph.from_edges(
        4, [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3), (0, 3)]
    )
    c = condense(g)
    assert c.num_components == 2
    assert c.dag.num_edges == 1


def test_condensation_removes_self_loops():
    g = DiGraph(2)
    g.add_edge(0, 0)
    g.add_edge(0, 1)
    c = condense(g)
    a = c.component_of[0]
    assert not c.dag.has_edge(a, a)


def test_condensation_preserves_reachability():
    rng = random.Random(4)
    for _ in range(10):
        g = random_digraph(rng, 12, 30)
        c = condense(g)
        for u in range(12):
            for v in range(12):
                original = path_exists(g, u, v)
                condensed = path_exists(
                    c.dag, c.component_of[u], c.component_of[v]
                )
                assert original == condensed, (u, v)


def test_members_partition_vertices():
    rng = random.Random(5)
    g = random_digraph(rng, 20, 50)
    c = condense(g)
    all_members = sorted(v for m in c.members for v in m)
    assert all_members == list(range(20))
    for cid, members in enumerate(c.members):
        for v in members:
            assert c.component_of[v] == cid


def test_largest_component_size_and_is_trivial():
    g = DiGraph.from_edges(5, [(0, 1), (1, 0), (1, 2), (3, 4)])
    c = condense(g)
    assert c.largest_component_size() == 2
    giant = c.component_of[0]
    assert not c.is_trivial(giant)
    assert c.is_trivial(c.component_of[2])


def test_empty_graph():
    c = condense(DiGraph(0))
    assert c.num_components == 0
    assert c.largest_component_size() == 0
