"""Property-based tests for interval label compression."""

from hypothesis import given, strategies as st

from repro.labeling import (
    compress_intervals,
    intervals_cover,
    intervals_covered_count,
)

interval = st.tuples(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
).map(lambda t: (min(t), max(t)))

interval_lists = st.lists(interval, max_size=40)


def covered_set(intervals):
    out = set()
    for lo, hi in intervals:
        out.update(range(lo, hi + 1))
    return out


@given(interval_lists)
def test_compression_preserves_coverage(intervals):
    compressed = compress_intervals(intervals)
    assert covered_set(compressed) == covered_set(intervals)


@given(interval_lists)
def test_compressed_form_is_canonical(intervals):
    compressed = compress_intervals(intervals)
    # sorted, disjoint, non-adjacent
    for (lo1, hi1), (lo2, hi2) in zip(compressed, compressed[1:]):
        assert hi1 + 1 < lo2
    # idempotent
    assert compress_intervals(compressed) == compressed
    # never more intervals than the input
    if intervals:
        assert len(compressed) <= len(set(intervals))


@given(interval_lists, st.integers(min_value=-10, max_value=210))
def test_cover_matches_set_membership(intervals, value):
    compressed = compress_intervals(intervals)
    assert intervals_cover(compressed, value) == (value in covered_set(intervals))


@given(interval_lists)
def test_covered_count_matches_set_size(intervals):
    compressed = compress_intervals(intervals)
    assert intervals_covered_count(compressed) == len(covered_set(intervals))


@given(interval_lists, interval_lists)
def test_union_order_irrelevant(a, b):
    assert compress_intervals(list(a) + list(b)) == compress_intervals(
        list(b) + list(a)
    )
