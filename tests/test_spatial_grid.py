"""Unit tests for repro.spatial.grid (GeoReach's hierarchical quad grid)."""

import pytest

from repro.geometry import Point, Rect
from repro.spatial import Cell, HierarchicalGrid


@pytest.fixture
def grid():
    return HierarchicalGrid(Rect(0, 0, 16, 16), num_levels=5)


def test_invalid_construction():
    with pytest.raises(ValueError):
        HierarchicalGrid(Rect(0, 0, 1, 1), num_levels=0)
    with pytest.raises(ValueError):
        HierarchicalGrid(Rect(0, 0, 0, 1), num_levels=2)


def test_side_cells_per_level(grid):
    assert grid.side_cells(0) == 16
    assert grid.side_cells(1) == 8
    assert grid.side_cells(4) == 1
    assert grid.num_cells(0) == 256
    with pytest.raises(ValueError):
        grid.side_cells(5)


def test_locate_basic(grid):
    assert grid.locate(Point(0.5, 0.5)) == Cell(0, 0, 0)
    assert grid.locate(Point(15.5, 15.5)) == Cell(0, 15, 15)
    assert grid.locate(Point(8.5, 0.5)) == Cell(0, 0, 8)
    assert grid.locate(Point(8.5, 0.5), level=3) == Cell(3, 0, 1)


def test_locate_clamps_boundary(grid):
    # The far boundary belongs to the outermost cell.
    assert grid.locate(Point(16, 16)) == Cell(0, 15, 15)
    assert grid.locate(Point(0, 0)) == Cell(0, 0, 0)


def test_cell_rect_tiles_space(grid):
    rect = grid.cell_rect(Cell(0, 0, 0))
    assert rect == Rect(0, 0, 1, 1)
    rect = grid.cell_rect(Cell(2, 1, 1))
    assert rect == Rect(4, 4, 8, 8)
    top = grid.cell_rect(Cell(4, 0, 0))
    assert top == Rect(0, 0, 16, 16)


def test_locate_consistent_with_cell_rect(grid):
    p = Point(3.3, 9.7)
    for level in range(grid.num_levels):
        cell = grid.locate(p, level)
        assert grid.cell_rect(cell).contains_point(p)


def test_parent_and_children(grid):
    cell = Cell(0, 5, 7)
    parent = grid.parent(cell)
    assert parent == Cell(1, 2, 3)
    assert cell in grid.children(parent)
    assert len(grid.children(parent)) == 4
    with pytest.raises(ValueError):
        grid.parent(Cell(4, 0, 0))
    with pytest.raises(ValueError):
        grid.children(Cell(0, 0, 0))


def test_children_tile_parent_exactly(grid):
    parent = Cell(2, 1, 0)
    parent_rect = grid.cell_rect(parent)
    child_area = sum(grid.cell_rect(c).area for c in grid.children(parent))
    assert child_area == pytest.approx(parent_rect.area)
    for child in grid.children(parent):
        assert parent_rect.contains_rect(grid.cell_rect(child))


def test_cell_predicates(grid):
    region = Rect(0, 0, 2.5, 2.5)
    assert grid.cell_intersects(Cell(0, 0, 0), region)
    assert grid.cell_inside(Cell(0, 1, 1), region)
    assert not grid.cell_inside(Cell(0, 2, 2), region)  # partially outside
    assert not grid.cell_intersects(Cell(0, 10, 10), region)


def test_merge_cells_replaces_siblings(grid):
    # Three siblings of one quad with MERGE_COUNT=2 -> replaced by parent.
    siblings = {Cell(0, 0, 0), Cell(0, 0, 1), Cell(0, 1, 0)}
    merged = grid.merge_cells(siblings, merge_count=2)
    assert merged == {Cell(1, 0, 0)}


def test_merge_cells_keeps_small_groups(grid):
    cells = {Cell(0, 0, 0), Cell(0, 0, 1)}
    assert grid.merge_cells(cells, merge_count=2) == cells


def test_merge_count_one_matches_paper_example(grid):
    # MERGE_COUNT = 1: two adjacent quad-cells are already too many, as in
    # the paper's Example 2.5 (cells 9 and 14 merged into 19).
    cells = {Cell(0, 4, 4), Cell(0, 4, 5)}
    merged = grid.merge_cells(cells, merge_count=1)
    assert merged == {Cell(1, 2, 2)}


def test_merge_cells_cascades_upward(grid):
    # All 16 finest cells of one level-2 block collapse all the way up.
    cells = {Cell(0, r, c) for r in range(4) for c in range(4)}
    merged = grid.merge_cells(cells, merge_count=1)
    assert merged == {Cell(2, 0, 0)}


def test_merge_cells_rejects_bad_count(grid):
    with pytest.raises(ValueError):
        grid.merge_cells(set(), merge_count=0)


def test_cells_cover_point(grid):
    cells = {Cell(1, 2, 3)}  # covers [6,8) x [4,6) roughly
    rect = grid.cell_rect(Cell(1, 2, 3))
    inside = Point(rect.xlo + 0.1, rect.ylo + 0.1)
    outside = Point(rect.xhi + 1, rect.yhi + 1)
    assert grid.cells_cover_point(cells, inside)
    assert not grid.cells_cover_point(cells, outside)
