"""Unit tests for repro.graph.traversal."""

import random

import pytest

from helpers import random_dag
from repro.graph import (
    DiGraph,
    bfs_order,
    dfs_forest,
    dfs_postorder,
    is_acyclic,
    reachable_from,
    topological_order,
)
from repro.graph.traversal import all_reachable_sets, path_exists


def chain(n):
    return DiGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def test_bfs_order_visits_reachable_only():
    g = DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
    assert bfs_order(g, 0) == [0, 1, 2]
    assert bfs_order(g, 3) == [3, 4]


def test_reachable_from_includes_source():
    g = chain(4)
    assert reachable_from(g, 1) == {1, 2, 3}
    assert reachable_from(g, 3) == {3}


def test_path_exists():
    g = DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
    assert path_exists(g, 0, 2)
    assert path_exists(g, 1, 1)
    assert not path_exists(g, 2, 0)
    assert not path_exists(g, 0, 4)


def test_topological_order_respects_edges():
    g = DiGraph.from_edges(6, [(0, 2), (1, 2), (2, 3), (3, 4), (1, 5)])
    order = topological_order(g)
    position = {v: i for i, v in enumerate(order)}
    for u, v in g.edges():
        assert position[u] < position[v]


def test_topological_order_rejects_cycles():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    with pytest.raises(ValueError):
        topological_order(g)
    assert not is_acyclic(g)
    assert is_acyclic(chain(3))


def test_dfs_forest_post_numbers_are_a_permutation():
    rng = random.Random(7)
    g = random_dag(rng, 30)
    forest = dfs_forest(g)
    assert sorted(forest.post) == list(range(1, 31))


def test_dfs_forest_parents_form_trees():
    rng = random.Random(8)
    g = random_dag(rng, 25)
    forest = dfs_forest(g)
    for root in forest.roots:
        assert forest.parent[root] == -1
    # every non-root's parent chain terminates at a root
    for v in range(25):
        seen = set()
        while forest.parent[v] >= 0:
            assert v not in seen
            seen.add(v)
            v = forest.parent[v]
        assert v in forest.roots


def test_dfs_forest_edge_post_property_on_dag():
    # On a DAG, every edge (v, u) must satisfy post(u) < post(v); this is
    # what the fast labeling construction relies on.
    rng = random.Random(9)
    for _ in range(10):
        g = random_dag(rng, 20, edge_probability=0.2)
        forest = dfs_forest(g)
        for v, u in g.edges():
            assert forest.post[u] < forest.post[v]


def test_dfs_forest_min_post_is_subtree_minimum():
    rng = random.Random(10)
    g = random_dag(rng, 20, edge_probability=0.25)
    forest = dfs_forest(g)
    # compute subtrees from the parent array
    children = [[] for _ in range(20)]
    for v, p in enumerate(forest.parent):
        if p >= 0:
            children[p].append(v)

    def subtree_posts(v):
        out = [forest.post[v]]
        for c in children[v]:
            out.extend(subtree_posts(c))
        return out

    for v in range(20):
        assert forest.min_post[v] == min(subtree_posts(v))


def test_dfs_forest_subtree_posts_are_contiguous():
    # Post-order numbers of a DFS subtree form a contiguous range: the
    # structural fact behind the one-interval-per-vertex tree labels.
    rng = random.Random(11)
    g = random_dag(rng, 24, edge_probability=0.2)
    forest = dfs_forest(g)
    children = [[] for _ in range(24)]
    for v, p in enumerate(forest.parent):
        if p >= 0:
            children[p].append(v)

    def subtree_posts(v):
        out = [forest.post[v]]
        for c in children[v]:
            out.extend(subtree_posts(c))
        return out

    for v in range(24):
        posts = sorted(subtree_posts(v))
        assert posts == list(range(posts[0], posts[-1] + 1))
        assert posts[-1] == forest.post[v]


def test_dfs_forest_covers_cyclic_graphs_via_fallback_roots():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])  # no in-degree-0 vertex
    forest = dfs_forest(g)
    assert sorted(forest.post) == [1, 2, 3]


def test_dfs_postorder_orders_by_post_number():
    g = chain(4)
    order = dfs_postorder(g)
    # chain 0->1->2->3: post-order finishes deepest first
    assert order == [3, 2, 1, 0]


def test_dfs_forest_custom_roots():
    g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
    forest = dfs_forest(g, roots=[2])
    # 2's tree first, then fallback covers 0's component
    assert forest.roots[0] == 2


def test_all_reachable_sets_matches_pairwise_bfs():
    rng = random.Random(12)
    g = random_dag(rng, 15)
    sets = all_reachable_sets(g)
    for v in range(15):
        for u in range(15):
            assert (u in sets[v]) == path_exists(g, v, u)


def test_deep_graph_no_recursion_limit():
    # 50k-vertex chain: must not hit Python's recursion limit.
    g = chain(50_000)
    forest = dfs_forest(g)
    assert forest.post[0] == 50_000
    assert forest.post[49_999] == 1
