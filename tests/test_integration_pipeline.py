"""End-to-end integration: CLI pipeline vs. library answers.

generate -> save -> load -> label -> save -> load -> query must produce
exactly the answers the in-memory library gives on the same data.
"""

import pytest

from repro.cli import main
from repro.core import ThreeDReach
from repro.geometry import Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.labeling import load_labeling


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    root = tmp_path_factory.mktemp("pipeline")
    data_dir = root / "net"
    labels_path = root / "net.labels"
    assert main([
        "generate", "foursquare", str(data_dir),
        "--scale", "0.0005", "--seed", "11",
    ]) == 0
    assert main(["label", str(data_dir), str(labels_path)]) == 0
    return data_dir, labels_path


def test_loaded_labeling_matches_fresh_build(pipeline):
    data_dir, labels_path = pipeline
    network = GeosocialNetwork.load(data_dir)
    condensed = condense_network(network)
    from repro.labeling import build_labeling

    fresh = build_labeling(condensed.dag)
    loaded = load_labeling(labels_path)
    assert loaded.labels == fresh.labels
    assert loaded.post == fresh.post


def test_cli_query_matches_library(pipeline, capsys):
    data_dir, _ = pipeline
    network = GeosocialNetwork.load(data_dir)
    condensed = condense_network(network)
    method = ThreeDReach(condensed)
    region = Rect(0.25, 0.25, 0.75, 0.75)
    for vertex in (0, 1, 5):
        expected = method.query(vertex, region)
        assert main([
            "query", str(data_dir),
            "--vertex", str(vertex),
            "--region", "0.25,0.25,0.75,0.75",
            "--method", "3dreach",
        ]) == 0
        out = capsys.readouterr().out
        assert f"= {expected}" in out


def test_prebuilt_labeling_pluggable_into_methods(pipeline):
    data_dir, labels_path = pipeline
    network = GeosocialNetwork.load(data_dir)
    condensed = condense_network(network)
    loaded = load_labeling(labels_path)
    from repro.core import RangeReachOracle, SocReach

    method = SocReach(condensed, labeling=loaded)
    oracle = RangeReachOracle(network)
    region = Rect(0.4, 0.4, 0.6, 0.6)
    for vertex in range(0, network.num_vertices, 97):
        assert method.query(vertex, region) == oracle.query(vertex, region)
