"""Unit tests for DiGraph edge removal and forest child-order strategies."""

import random

import pytest

from helpers import random_dag
from repro.graph import DiGraph, dfs_forest
from repro.graph.traversal import all_reachable_sets


def test_remove_edge():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    g.remove_edge(0, 2)
    assert g.num_edges == 2
    assert not g.has_edge(0, 2)
    assert g.in_degree(2) == 1
    assert g.out_degree(0) == 1


def test_remove_missing_edge_rejected():
    g = DiGraph(2)
    with pytest.raises(ValueError, match="not present"):
        g.remove_edge(0, 1)


def test_remove_one_of_parallel_edges():
    g = DiGraph(2)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    g.remove_edge(0, 1)
    assert g.num_edges == 1
    assert g.has_edge(0, 1)


def test_remove_then_readd():
    g = DiGraph.from_edges(2, [(0, 1)])
    g.remove_edge(0, 1)
    g.add_edge(0, 1)
    assert g.num_edges == 1
    assert g.predecessors(1) == [0]


@pytest.mark.parametrize("child_order", ["natural", "degree", "degree-asc"])
def test_child_order_preserves_dfs_properties(child_order):
    rng = random.Random(7)
    for _ in range(8):
        g = random_dag(rng, 18, edge_probability=0.2)
        forest = dfs_forest(g, child_order=child_order)
        assert sorted(forest.post) == list(range(1, 19))
        # the DFS edge property must hold for every strategy
        for s, t in g.edges():
            assert forest.post[t] < forest.post[s]


def test_unknown_child_order_rejected():
    with pytest.raises(ValueError, match="child_order"):
        dfs_forest(DiGraph(1), child_order="alphabetical")


def test_degree_order_visits_hubs_first():
    # root 0 with children 1 (hub) and 2 (leaf); hub first means the hub
    # subtree finishes first, i.e. gets the smaller post numbers.
    g = DiGraph.from_edges(5, [(0, 2), (0, 1), (1, 3), (1, 4)])
    forest = dfs_forest(g, child_order="degree")
    assert forest.post[1] < forest.post[2]
    forest_asc = dfs_forest(g, child_order="degree-asc")
    assert forest_asc.post[2] < forest_asc.post[1]


@pytest.mark.parametrize("child_order", ["degree", "degree-asc"])
def test_labeling_correct_under_any_forest_strategy(child_order):
    from repro.labeling import build_labeling

    rng = random.Random(8)
    g = random_dag(rng, 16, edge_probability=0.25)
    forest = dfs_forest(g, child_order=child_order)
    labeling = build_labeling(g, forest=forest)
    labeling.validate(all_reachable_sets(g))
