"""Smoke tests: every example script must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_enough_scripts():
    # Deliverable: at least a quickstart plus domain scenarios.
    assert len(EXAMPLES) >= 3
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(script, capsys, monkeypatch):
    # Examples live outside the package; run each as __main__.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_matches_paper_answers(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    # Example 2.3: RangeReach(G, a, R) = TRUE and RangeReach(G, c, R) = FALSE
    assert "a -> R: True" in out
    assert "c -> R: False" in out
    assert "['e', 'h']" in out
