"""Unit tests for repro.bench.compare (CSV run comparison)."""

import pytest

from repro.bench.compare import compare_csv, format_changes, main


def _write(path, text):
    path.write_text(text)
    return path


BASELINE = """\
# Table X — sizes
dataset,alpha,beta
gowalla,10,2.5
yelp,4,1.0

"""

CANDIDATE = """\
# Table X — sizes
dataset,alpha,beta
gowalla,20,2.5
yelp,2,1.0

"""


def test_compare_detects_changes(tmp_path):
    a = _write(tmp_path / "a.csv", BASELINE)
    b = _write(tmp_path / "b.csv", CANDIDATE)
    changes = compare_csv(a, b)
    moved = {(c.row_key, c.column): c for c in changes}
    assert moved[("gowalla", "alpha")].ratio == pytest.approx(2.0)
    assert moved[("yelp", "alpha")].ratio == pytest.approx(0.5)
    assert moved[("gowalla", "beta")].ratio == pytest.approx(1.0)
    # biggest mover first
    assert abs(changes[0].ratio - 1.0) >= abs(changes[-1].ratio - 1.0)


def test_threshold_filters_unchanged_cells(tmp_path):
    a = _write(tmp_path / "a.csv", BASELINE)
    b = _write(tmp_path / "b.csv", CANDIDATE)
    changes = compare_csv(a, b, threshold=0.25)
    keys = {(c.row_key, c.column) for c in changes}
    assert ("gowalla", "beta") not in keys
    assert ("gowalla", "alpha") in keys


def test_missing_sections_and_rows_skipped(tmp_path):
    a = _write(tmp_path / "a.csv", BASELINE)
    b = _write(
        tmp_path / "b.csv",
        "# Another table\ndataset,alpha\ngowalla,3\n\n",
    )
    assert compare_csv(a, b) == []


def test_non_numeric_cells_skipped(tmp_path):
    a = _write(
        tmp_path / "a.csv",
        "# T\ndataset,size\ngowalla,0.25 (0.29)\n\n",
    )
    b = _write(
        tmp_path / "b.csv",
        "# T\ndataset,size\ngowalla,0.30 (0.31)\n\n",
    )
    assert compare_csv(a, b) == []


def test_format_changes(tmp_path):
    a = _write(tmp_path / "a.csv", BASELINE)
    b = _write(tmp_path / "b.csv", CANDIDATE)
    text = format_changes(compare_csv(a, b))
    assert "gowalla / alpha" in text
    assert "x2.00" in text
    assert format_changes([]) == "no comparable numeric cells changed"


def test_main_cli(tmp_path, capsys):
    a = _write(tmp_path / "a.csv", BASELINE)
    b = _write(tmp_path / "b.csv", CANDIDATE)
    assert main([str(a), str(b)]) == 0
    assert "biggest movers" in capsys.readouterr().out
    assert main([]) == 2


def test_end_to_end_with_real_export(tmp_path, capsys, monkeypatch):
    from repro.bench.__main__ import main as bench_main

    run1 = tmp_path / "r1.csv"
    run2 = tmp_path / "r2.csv"
    args = ["table3", "--scale", "0.0005", "--datasets", "weeplaces"]
    bench_main(args + ["--csv", str(run1)])
    bench_main(args + ["--csv", str(run2)])
    capsys.readouterr()
    assert main([str(run1), str(run2)]) == 0
    out = capsys.readouterr().out
    # identical runs: every ratio is 1.0 -> no "x2" style movers needed,
    # but cells are comparable
    assert "comparable cell" in out
