"""Unit tests for repro.geometry.segment3."""

import pytest

from repro.geometry import Box3, Segment3


def test_degenerate_segment_rejected():
    with pytest.raises(ValueError):
        Segment3(0, 0, 5, 4)


def test_zero_length_segment_allowed():
    s = Segment3(1, 1, 3, 3)
    assert s.cut_by_plane(3)


def test_bounds_is_degenerate_box():
    s = Segment3(1, 2, 3, 7)
    assert s.bounds == Box3(1, 2, 3, 1, 2, 7)


def test_cut_by_plane():
    # 3DReach-Rev's core test: the query plane at z = post(v).
    s = Segment3(0.5, 0.5, 2, 8)
    assert s.cut_by_plane(2)
    assert s.cut_by_plane(5)
    assert s.cut_by_plane(8)
    assert not s.cut_by_plane(1.99)
    assert not s.cut_by_plane(8.01)


def test_intersects_box_is_exact_for_vertical_segments():
    s = Segment3(1, 1, 0, 10)
    assert s.intersects_box(Box3(0, 0, 5, 2, 2, 6))
    assert not s.intersects_box(Box3(2, 2, 5, 3, 3, 6))   # xy outside
    assert not s.intersects_box(Box3(0, 0, 11, 2, 2, 12))  # z outside
    # Touching the box boundary counts (closed semantics).
    assert s.intersects_box(Box3(1, 1, 10, 2, 2, 12))


def test_intersects_box_matches_bounds_intersection():
    s = Segment3(3, 4, 1, 5)
    boxes = [
        Box3(0, 0, 0, 10, 10, 10),
        Box3(3, 4, 5, 3, 4, 5),
        Box3(2, 2, 6, 9, 9, 9),
        Box3(4, 4, 0, 6, 6, 2),
    ]
    for box in boxes:
        assert s.intersects_box(box) == s.bounds.intersects(box)
