"""Property-based parity: batched + parallel execution equals the oracle.

Hypothesis generates arbitrary (possibly cyclic) geosocial networks plus
batches of (vertex, region) queries with deliberate region reuse.  For
every method, four execution paths must agree pairwise and with the BFS
oracle:

* the per-query ``query()`` loop,
* one ``query_batch`` call (the vectorized overrides),
* ``ParallelExecutor(workers=1)`` (chunked sequential path),
* ``ParallelExecutor(workers=4)`` (thread pool path),

with observability both off and on (counter flushes and trace state must
never perturb answers).
"""

from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import RangeReachOracle, build_methods
from repro.exec import ParallelExecutor
from repro.geosocial import condense_network
from repro.pipeline import BuildContext
from tests.test_property_methods import networks, regions

_NAMES = ("spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev")


@st.composite
def batches(draw, network, max_queries=12):
    """A query batch with region reuse: few distinct regions, many pairs."""
    n_regions = draw(st.integers(min_value=1, max_value=3))
    distinct = [draw(regions()) for _ in range(n_regions)]
    n_queries = draw(st.integers(min_value=0, max_value=max_queries))
    vertex = st.integers(min_value=0, max_value=network.num_vertices - 1)
    return [
        (draw(vertex), distinct[draw(st.integers(0, n_regions - 1))])
        for _ in range(n_queries)
    ]


@given(networks(), st.data(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_batch_and_parallel_match_oracle(network, data, observe):
    oracle = RangeReachOracle(network)
    condensed = condense_network(network)
    methods = build_methods(_NAMES, context=BuildContext(condensed))
    pairs = data.draw(batches(network))
    expected = [oracle.query(v, region) for v, region in pairs]
    with obs.observability(observe):
        with ParallelExecutor(workers=1, chunk_size=3) as seq_exec, \
                ParallelExecutor(workers=4, chunk_size=3) as par_exec:
            for name, method in methods.items():
                loop = [method.query(v, region) for v, region in pairs]
                assert loop == expected, name
                assert method.query_batch(pairs) == expected, name
                assert seq_exec.run(method, pairs) == expected, name
                assert par_exec.run(method, pairs) == expected, name
