"""Unit tests for SLO burn-rate monitoring (repro.obs.slo).

The monitor diffs snapshots of the cumulative serving instruments, so
tests drive the real registry instruments (observations land on top of
whatever other tests recorded — only deltas after the monitor's base
snapshot matter) under an injected fake clock.
"""

import pytest

from repro.obs import Objective, SLOMonitor, default_objectives
from repro.obs import instruments as _inst


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def observe(endpoint: str, *, seconds: float = 0.001, code: int = 200):
    """One finished request, as the serving path records it."""
    _inst.SERVE_REQUESTS.labels(endpoint=endpoint, code=str(code)).inc()
    _inst.SERVE_ENDPOINT_SECONDS.labels(endpoint=endpoint).observe(seconds)


def test_objective_validation():
    with pytest.raises(ValueError):
        Objective("/query", latency_threshold_s=0.0)
    with pytest.raises(ValueError):
        Objective("/query", latency_threshold_s=0.1, latency_target=1.0)
    with pytest.raises(ValueError):
        Objective("/query", latency_threshold_s=0.1, availability_target=0.0)
    obj = Objective("/query", latency_threshold_s=0.1)
    assert obj.to_dict()["latency_threshold_s"] == 0.1


def test_default_objectives_cover_every_serving_endpoint():
    endpoints = {obj.endpoint for obj in default_objectives()}
    assert endpoints == {"/query", "/batch", "/write"}


def test_burn_rate_and_budget_math():
    clock = FakeClock()
    monitor = SLOMonitor(
        [
            Objective(
                "/query",
                latency_threshold_s=0.1,
                latency_target=0.9,  # 10% of requests may be slow
                availability_target=0.8,  # 20% may 5xx
            )
        ],
        windows=(("1m", 60.0),),
        clock=clock,
    )
    # 8 fast + 2 very slow; 9 OK + 1 server error.
    for _ in range(8):
        observe("/query", seconds=0.001)
    observe("/query", seconds=10.0)
    observe("/query", seconds=10.0, code=500)
    clock.advance(10.0)
    report = monitor.evaluate()
    ep = report["endpoints"]["/query"]
    assert ep["requests"] == 10
    # Latency: 2/10 bad over a 10% allowance -> burn 2.0, budget gone.
    assert ep["latency"]["burn_rates"]["1m"] == pytest.approx(2.0)
    assert ep["latency"]["budget_remaining"] == 0.0
    # Availability: 1/10 bad over a 20% allowance -> burn 0.5.
    assert ep["availability"]["burn_rates"]["1m"] == pytest.approx(0.5)
    assert ep["availability"]["budget_remaining"] == pytest.approx(0.5)
    assert not ep["fast_burn"]


def test_latency_sli_is_conservative_about_bucket_straddle():
    clock = FakeClock()
    monitor = SLOMonitor(
        [Objective("/query", latency_threshold_s=0.1, latency_target=0.5)],
        windows=(("1m", 60.0),),
        clock=clock,
    )
    # 0.09s is under the threshold, but its factor-2 bucket's upper
    # bound (0.131s) is not — the conservative SLI counts it bad rather
    # than letting quantization hide a near-miss.
    observe("/query", seconds=0.09)
    clock.advance(5.0)
    report = monitor.evaluate()
    burn = report["endpoints"]["/query"]["latency"]["burn_rates"]["1m"]
    assert burn == pytest.approx(2.0)  # 1/1 bad over a 50% allowance


def test_fast_burn_requires_every_window():
    clock = FakeClock()
    monitor = SLOMonitor(
        [
            Objective(
                "/query",
                latency_threshold_s=0.1,
                availability_target=0.9,
            )
        ],
        windows=(("10s", 10.0), ("1000s", 1000.0)),
        fast_burn_factor=2.0,
        clock=clock,
    )
    # A long healthy history...
    for _ in range(100):
        observe("/query", seconds=0.001)
    clock.advance(50.0)
    monitor.tick(force=True)
    clock.advance(900.0)
    monitor.tick(force=True)  # now at t=950: short-window diff base
    # ...then a small recent burst of errors: the short window burns
    # hot, the long window absorbs it -> no page.
    for _ in range(10):
        observe("/query", seconds=0.001, code=500)
    clock.advance(15.0)
    report = monitor.evaluate()
    ep = report["endpoints"]["/query"]
    assert ep["availability"]["burn_rates"]["10s"] > 2.0
    assert ep["availability"]["burn_rates"]["1000s"] < 2.0
    assert not ep["fast_burn"]
    # A sustained error flood pushes every window past the factor.
    for _ in range(300):
        observe("/query", seconds=0.001, code=500)
    clock.advance(5.0)
    report = monitor.evaluate()
    assert report["endpoints"]["/query"]["fast_burn"]


def test_tick_is_rate_limited_and_prunes_old_snapshots():
    clock = FakeClock()
    monitor = SLOMonitor(
        [Objective("/query", latency_threshold_s=0.1)],
        windows=(("10s", 10.0),),
        min_tick_interval=1.0,
        clock=clock,
    )
    assert not monitor.tick()  # within min_tick_interval of the base
    clock.advance(2.0)
    assert monitor.tick()
    for _ in range(50):
        clock.advance(2.0)
        assert monitor.tick()
    # The horizon is 10s: one snapshot older than the cutoff is kept as
    # the diff base, so the history stays bounded.
    assert len(monitor._snapshots) <= 8


def test_evaluate_exports_slo_gauges():
    clock = FakeClock()
    monitor = SLOMonitor(
        [Objective("/query", latency_threshold_s=0.1)],
        windows=(("5m", 300.0),),
        clock=clock,
    )
    observe("/query", seconds=0.001)
    clock.advance(5.0)
    monitor.evaluate()
    burn = _inst.SLO_BURN_RATE.labels(
        endpoint="/query", sli="latency", window="5m"
    )
    budget = _inst.SLO_BUDGET_REMAINING.labels(
        endpoint="/query", sli="latency"
    )
    fast = _inst.SLO_FAST_BURN.labels(endpoint="/query")
    assert burn.value == 0.0
    assert budget.value == 1.0
    assert fast.value == 0


def test_windows_required():
    with pytest.raises(ValueError):
        SLOMonitor(windows=())
