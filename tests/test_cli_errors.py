"""CLI error paths: exit code 2, one-line stderr, never a traceback.

These run the real ``python -m repro`` in a subprocess — an in-process
``main()`` call cannot prove that no traceback escapes to the user.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from helpers import fig1_network

import repro


def _run(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


def _assert_clean_failure(result: subprocess.CompletedProcess) -> None:
    assert result.returncode == 2, result.stderr
    assert "Traceback" not in result.stderr
    diagnostics = [line for line in result.stderr.splitlines() if line]
    assert len(diagnostics) == 1
    assert diagnostics[0].startswith("error:")


@pytest.fixture(scope="module")
def net_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("net") / "fig1"
    fig1_network().save(directory)
    return directory


def test_batch_file_malformed_line(tmp_path, net_dir):
    batch = tmp_path / "queries.txt"
    batch.write_text("0 0,0,5,5\nnot a query line\n")
    result = _run("query", str(net_dir), "--batch", str(batch))
    _assert_clean_failure(result)
    assert "queries.txt:2" in result.stderr


def test_batch_file_missing(net_dir):
    result = _run("query", str(net_dir), "--batch", "/nonexistent/q.txt")
    _assert_clean_failure(result)


def test_missing_network_directory():
    result = _run("stats", "/nonexistent/network")
    _assert_clean_failure(result)


def test_snapshot_load_missing_directory():
    result = _run("snapshot", "load", "/nonexistent/snapshot")
    _assert_clean_failure(result)


def test_snapshot_load_corrupt_manifest(tmp_path):
    snapshot = tmp_path / "snap"
    snapshot.mkdir()
    (snapshot / "manifest.json").write_text("{ not json")
    result = _run("snapshot", "load", str(snapshot))
    _assert_clean_failure(result)


def test_snapshot_inspect_missing_manifest(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    result = _run("snapshot", "inspect", str(empty))
    _assert_clean_failure(result)


def test_serve_requires_network_or_snapshot():
    result = _run("serve")
    _assert_clean_failure(result)


def test_serve_snapshot_only_with_empty_directory(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    result = _run("serve", "--snapshot-dir", str(empty))
    _assert_clean_failure(result)
    assert "no snapshot" in result.stderr


def test_serve_missing_network_directory():
    result = _run("serve", "--network", "/nonexistent/network")
    _assert_clean_failure(result)
