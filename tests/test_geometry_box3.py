"""Unit tests for repro.geometry.box3."""

import pytest

from repro.geometry import Box3, Rect


def test_degenerate_box_rejected():
    with pytest.raises(ValueError):
        Box3(1, 0, 0, 0, 1, 1)
    with pytest.raises(ValueError):
        Box3(0, 0, 5, 1, 1, 4)


def test_from_rect_lifts_query_region():
    # This is exactly 3DReach's query rewriting: region R + label [l, h].
    region = Rect(0, 0, 2, 3)
    cuboid = Box3.from_rect(region, 4, 9)
    assert cuboid == Box3(0, 0, 4, 2, 3, 9)
    assert cuboid.base == region


def test_from_point_is_zero_volume():
    b = Box3.from_point(1, 2, 3)
    assert b.volume == 0
    assert b.contains_xyz(1, 2, 3)


def test_volume():
    assert Box3(0, 0, 0, 2, 3, 4).volume == 24


def test_contains_xyz_boundaries():
    b = Box3(0, 0, 0, 1, 1, 1)
    assert b.contains_xyz(0, 0, 0)
    assert b.contains_xyz(1, 1, 1)
    assert not b.contains_xyz(1.01, 0.5, 0.5)
    assert not b.contains_xyz(0.5, 0.5, -0.01)


def test_contains_box():
    outer = Box3(0, 0, 0, 10, 10, 10)
    assert outer.contains_box(Box3(1, 1, 1, 9, 9, 9))
    assert outer.contains_box(outer)
    assert not outer.contains_box(Box3(1, 1, 1, 9, 9, 11))


def test_intersects():
    a = Box3(0, 0, 0, 2, 2, 2)
    assert a.intersects(Box3(1, 1, 1, 3, 3, 3))
    assert a.intersects(Box3(2, 2, 2, 3, 3, 3))     # corner touch
    assert not a.intersects(Box3(0, 0, 2.1, 2, 2, 3))  # z-disjoint
    assert not a.intersects(Box3(3, 0, 0, 4, 2, 2))    # x-disjoint


def test_union():
    a = Box3(0, 0, 0, 1, 1, 1)
    b = Box3(2, -1, 0.5, 3, 0.5, 4)
    assert a.union(b) == Box3(0, -1, 0, 3, 1, 4)


def test_as_tuple_matches_rtree_bounds_layout():
    # (lo0, lo1, lo2, hi0, hi1, hi2) — the flat layout RTree expects.
    assert Box3(1, 2, 3, 4, 5, 6).as_tuple() == (1, 2, 3, 4, 5, 6)
