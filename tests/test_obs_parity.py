"""Observability must never change answers: enabled vs disabled parity."""

import random

import pytest

from helpers import (
    FIG1_INDEX,
    FIG1_REGION,
    fig1_network,
    random_geosocial_network,
    random_region,
)
from repro import obs
from repro.core import METHOD_REGISTRY, build_method
from repro.geosocial import condense_network


@pytest.fixture(autouse=True)
def restore_obs_state():
    yield
    obs.enable()


def _answers(methods, queries):
    return [
        [m.query(v, region) for v, region in queries] for m in methods
    ]


@pytest.mark.parametrize("method_name", sorted(METHOD_REGISTRY))
def test_identical_answers_fig1(method_name):
    condensed = condense_network(fig1_network())
    method = build_method(method_name, condensed)
    queries = [(FIG1_INDEX[n], FIG1_REGION) for n in "abcdefghijkl"]
    with obs.observability(True):
        on = [method.query(v, r) for v, r in queries]
    with obs.observability(False):
        off = [method.query(v, r) for v, r in queries]
    assert on == off


def test_identical_answers_random_networks():
    rng = random.Random(20250805)
    for _ in range(3):
        network = random_geosocial_network(rng)
        condensed = condense_network(network)
        methods = [
            build_method(name, condensed) for name in sorted(METHOD_REGISTRY)
        ]
        queries = [
            (rng.randrange(network.num_vertices), random_region(rng))
            for _ in range(15)
        ]
        with obs.observability(True):
            on = _answers(methods, queries)
        with obs.observability(False):
            off = _answers(methods, queries)
        assert on == off
        # All methods agree with each other too.
        for answers in on[1:]:
            assert answers == on[0]


def test_disabled_mode_flushes_nothing():
    condensed = condense_network(fig1_network())
    methods = [
        build_method(name, condensed) for name in sorted(METHOD_REGISTRY)
    ]
    with obs.observability(False):
        with obs.measure() as delta:
            for method in methods:
                method.query(FIG1_INDEX["a"], FIG1_REGION)
    assert delta == {}


def test_disabled_database_keeps_instance_stats():
    """stats() stays correct per instance even with the registry off."""
    from repro.system import GeosocialDatabase

    with obs.observability(False):
        db = GeosocialDatabase(refresh_threshold=8)
        users = [db.add_user() for _ in range(3)]
        venue = db.add_venue(1.0, 1.0)
        db.add_follow(users[0], users[1])
        db.add_checkin(users[1], venue)
        from repro.geometry import Rect

        region = Rect(0.0, 0.0, 2.0, 2.0)
        assert db.range_reach(users[0], region) is True
        db.add_follow(users[1], users[2])
        assert db.range_reach(users[0], region) is True
        stats = db.stats()
    assert stats["rebuilds"] == 1
    assert stats["overlay_queries"] == 1
