"""The network query service: endpoints, backpressure, drain.

Endpoint correctness is checked against the BFS oracle; backpressure
and 504 mapping use stub databases so the tests are deterministic (no
timing races on the happy path); the SIGTERM drain runs the real CLI
in a subprocess.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from test_obs_export import parse_exposition

import repro
from repro.core import RangeReachOracle
from repro.datasets import make_network
from repro.exec import BatchTimeoutError, ParallelExecutor
from repro.geometry import Rect
from repro.serve import (
    DrainingError,
    OverloadedError,
    QueryService,
    start_server,
)
from repro.system import GeosocialDatabase


@pytest.fixture(scope="module")
def tiny_net():
    return make_network("gowalla", scale=0.0005, seed=3)


@pytest.fixture
def service(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database)
    service.warm_up()
    yield service
    service.close(persist=False)


@pytest.fixture
def server(service):
    server = start_server(service)
    yield server, f"http://127.0.0.1:{server.port}"
    if not server.draining:
        server.drain(persist=False)


def _post(base: str, path: str, payload, *, raw: bytes | None = None):
    data = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


# ----------------------------------------------------------------------
# Read endpoints vs. the oracle
# ----------------------------------------------------------------------
def test_single_query_matches_oracle(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    space = tiny_net.space()
    region = [space.xlo, space.ylo,
              (space.xlo + space.xhi) / 2, (space.ylo + space.yhi) / 2]
    rect = Rect(*region)
    for vertex in range(0, tiny_net.num_vertices, 7):
        code, body, _ = _post(
            base, "/query", {"vertex": vertex, "region": region}
        )
        assert code == 200
        assert body == {"op": "reach", "answer": oracle.query(vertex, rect)}


def test_count_and_witnesses_ops(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    space = tiny_net.space()
    region = [space.xlo, space.ylo, space.xhi, space.yhi]
    rect = Rect(*region)
    vertex = 0
    code, body, _ = _post(
        base, "/query", {"vertex": vertex, "region": region, "op": "count"}
    )
    assert (code, body["answer"]) == (200, oracle.count(vertex, rect))
    code, body, _ = _post(
        base, "/query",
        {"vertex": vertex, "region": region, "op": "witnesses"},
    )
    assert code == 200
    assert sorted(body["answer"]) == sorted(oracle.witnesses(vertex, rect))


def test_region_accepts_cli_string_form(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    space = tiny_net.space()
    region = [space.xlo, space.ylo, space.xhi, space.yhi]
    as_string = ",".join(str(c) for c in region)
    code, body, _ = _post(
        base, "/query", {"vertex": 0, "region": as_string}
    )
    assert code == 200
    assert body["answer"] == oracle.query(0, Rect(*region))
    code, body, _ = _post(
        base, "/query", {"vertex": 0, "region": "0,0,not,numbers"}
    )
    assert code == 400
    assert "region" in body["error"]


def test_batch_matches_oracle(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    space = tiny_net.space()
    region = [space.xlo, space.ylo,
              (space.xlo + space.xhi) / 2, space.yhi]
    queries = [[v, region] for v in range(0, tiny_net.num_vertices, 11)]
    code, body, _ = _post(base, "/batch", {"queries": queries})
    assert code == 200
    assert body["count"] == len(queries)
    assert body["answers"] == [
        oracle.query(v, Rect(*region)) for v, _ in queries
    ]


def test_write_then_query_reflects_update(server, tiny_net):
    _, base = server
    users = [v for v, k in enumerate(tiny_net.kinds) if k == "user"]
    # A venue far outside the seed SPACE: only the new check-in reaches it.
    code, body, _ = _post(base, "/write", {"op": "add_venue",
                                           "x": 999.0, "y": 999.0})
    assert code == 200
    venue = body["vertex"]
    region = [998.0, 998.0, 1000.0, 1000.0]
    user = users[0]
    code, body, _ = _post(base, "/query", {"vertex": user, "region": region})
    assert (code, body["answer"]) == (200, False)
    code, body, _ = _post(
        base, "/write", {"op": "add_checkin", "user": user, "venue": venue}
    )
    assert (code, body["added"]) == (200, True)
    code, body, _ = _post(base, "/query", {"vertex": user, "region": region})
    assert (code, body["answer"]) == (200, True)
    # And the edge is removable again.
    code, body, _ = _post(
        base, "/write",
        {"op": "remove_checkin", "user": user, "venue": venue},
    )
    assert (code, body["removed"]) == (200, True)
    code, body, _ = _post(base, "/query", {"vertex": user, "region": region})
    assert (code, body["answer"]) == (200, False)


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
def test_bad_requests_get_400(server):
    _, base = server
    cases = [
        {"region": [0, 0, 1, 1]},                       # missing vertex
        {"vertex": "x", "region": [0, 0, 1, 1]},        # non-int vertex
        {"vertex": True, "region": [0, 0, 1, 1]},       # bool is not int
        {"vertex": 0, "region": [0, 0, 1]},             # short region
        {"vertex": 0, "region": [1, 1, 0, 0]},          # negative extent
        {"vertex": 0, "region": [0, 0, 1, 1], "op": "sum"},  # unknown op
        {"vertex": 10**9, "region": [0, 0, 1, 1]},      # out of range
    ]
    for payload in cases:
        code, body, _ = _post(base, "/query", payload)
        assert code == 400, payload
        assert "error" in body
    code, body, _ = _post(base, "/query", None, raw=b"{not json")
    assert code == 400
    code, body, _ = _post(base, "/query", None, raw=b"[1, 2]")
    assert code == 400
    code, body, _ = _post(base, "/write", {"op": "explode"})
    assert code == 400
    code, body, _ = _post(base, "/batch", {"queries": [[0]]})
    assert code == 400
    code, body, _ = _post(
        base, "/batch", {"queries": [[0, [0, 0, 1, 1]]], "timeout": -1}
    )
    assert code == 400


def test_unknown_path_and_wrong_method(server):
    _, base = server
    assert _get(base, "/nope")[0] == 404
    assert _get(base, "/query")[0] == 405  # GET on a POST route
    code, _, _ = _post(base, "/healthz", {})
    assert code == 405  # POST on a GET route


def test_healthz_stats_metrics(server):
    _, base = server
    code, text = _get(base, "/healthz")
    assert (code, json.loads(text)["status"]) == (200, "ok")
    code, text = _get(base, "/stats")
    stats = json.loads(text)
    assert code == 200
    assert stats["serve"]["max_inflight"] == 64
    assert "database" in stats
    code, text = _get(base, "/metrics")
    assert code == 200
    parse_exposition(text)  # strict format check


# ----------------------------------------------------------------------
# Backpressure and deadline mapping (stub databases: deterministic)
# ----------------------------------------------------------------------
class _BlockingDatabase:
    """range_reach parks on an event; everything else is trivial."""

    snapshot_dir = None
    is_stale = False
    delta_size = 0

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def range_reach(self, vertex, region):
        self.entered.set()
        assert self.release.wait(timeout=30)
        return True

    def stats(self):
        return {}


def test_admission_control_429_and_drain_503(tiny_net):
    database = _BlockingDatabase()
    service = QueryService(database, max_inflight=1)
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    payload = {"vertex": 0, "region": [0, 0, 1, 1]}
    first: dict = {}

    def slow_request():
        first["code"], first["body"], _ = _post(base, "/query", payload)

    thread = threading.Thread(target=slow_request, daemon=True)
    thread.start()
    assert database.entered.wait(timeout=10)
    # One request is in flight and max_inflight=1: the next is rejected
    # immediately, with a Retry-After hint.
    code, body, headers = _post(base, "/query", payload)
    assert code == 429
    assert "error" in body
    assert headers.get("Retry-After") == "1"
    database.release.set()
    thread.join(timeout=10)
    assert (first["code"], first["body"]["answer"]) == (200, True)
    # Draining rejects new work with 503 and flips /healthz.
    service.begin_drain()
    code, _, headers = _post(base, "/query", payload)
    assert code == 503
    assert headers.get("Retry-After") == "1"
    code, text = _get(base, "/healthz")
    assert (code, json.loads(text)["status"]) == (503, "draining")
    assert service.stats()["serve"]["rejected"] == 2
    server.drain(persist=False)


class _TimingOutDatabase:
    snapshot_dir = None

    def range_reach_many(self, pairs, executor=None, *, timeout=None):
        raise BatchTimeoutError(
            "batch deadline of 1s exceeded after 2/5 chunks",
            completed=2, total=5, answers=[True, False],
        )

    def stats(self):
        return {}


def test_batch_timeout_maps_to_504():
    service = QueryService(_TimingOutDatabase())
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    code, body, _ = _post(
        base, "/batch", {"queries": [[0, [0, 0, 1, 1]]] * 5}
    )
    assert code == 504
    assert body["completed_chunks"] == 2
    assert body["total_chunks"] == 5
    assert "deadline" in body["error"]
    server.drain(persist=False)


def test_batch_deadline_end_to_end(server, tiny_net):
    # A real database with an absurdly small request deadline: the
    # service routes it through a deadline-checking executor and the
    # expiry surfaces as 504.
    _, base = server
    queries = [[v, [0, 0, 1, 1]] for v in range(64)]
    code, body, _ = _post(
        base, "/batch", {"queries": queries, "timeout": 1e-9}
    )
    assert code == 504
    assert body["total_chunks"] >= 1


def test_service_level_admission_exceptions(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database, max_inflight=1)
    with service.admit():
        with pytest.raises(OverloadedError):
            with service.admit():
                pass
    service.begin_drain()
    with pytest.raises(DrainingError):
        with service.admit():
            pass
    assert service.stats()["serve"]["rejected"] == 2
    service.close(persist=False)


def test_service_owns_executor_and_batch_parity(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    oracle = RangeReachOracle(tiny_net)
    service = QueryService(
        database, executor=ParallelExecutor(workers=2, chunk_size=8)
    )
    space = tiny_net.space()
    region = [space.xlo, space.ylo, space.xhi, space.yhi]
    queries = [[v, region] for v in range(0, tiny_net.num_vertices, 5)]
    result = service.batch({"queries": queries})
    assert result["answers"] == [
        oracle.query(v, Rect(*region)) for v, _ in queries
    ]
    service.close(persist=False)
    # Closing again is a no-op.
    assert service.close(persist=False) is False


# ----------------------------------------------------------------------
# Graceful SIGTERM drain (real process, real signal)
# ----------------------------------------------------------------------
def _serve_env() -> dict:
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(args: list[str]) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_serve_env(),
    )
    line = proc.stdout.readline()
    assert line.startswith("serving on http://"), line
    base = line.split()[2]
    return proc, base


def test_sigterm_drains_in_flight_and_persists(tmp_path, tiny_net):
    net_dir = tmp_path / "net"
    snap_dir = tmp_path / "snap"
    tiny_net.save(net_dir)
    proc, base = _spawn_server(
        ["--network", str(net_dir), "--snapshot-dir", str(snap_dir)]
    )
    try:
        code, body, _ = _post(base, "/query",
                              {"vertex": 0, "region": [0, 0, 1, 1]})
        assert code == 200
        # Fire a large batch and SIGTERM while it is (likely) in flight;
        # the drain must still deliver its complete response.
        queries = [[v % tiny_net.num_vertices, [0.0, 0.0, 0.6, 0.6]]
                   for v in range(512)]
        result: dict = {}

        def inflight_batch():
            result["code"], result["body"], _ = _post(
                base, "/batch", {"queries": queries}
            )

        thread = threading.Thread(target=inflight_batch, daemon=True)
        thread.start()
        time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        thread.join(timeout=30)
        assert result["code"] == 200
        assert result["body"]["count"] == len(queries)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "drained:" in stderr
        # The warm snapshot landed on disk.
        assert (snap_dir / "manifest.json").exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # A snapshot-only restart warm-starts and answers identically.
    proc2, base2 = _spawn_server(["--snapshot-dir", str(snap_dir)])
    try:
        code, body, _ = _post(base2, "/query",
                              {"vertex": 0, "region": [0, 0, 1, 1]})
        assert code == 200
        oracle = RangeReachOracle(tiny_net)
        assert body["answer"] == oracle.query(0, Rect(0, 0, 1, 1))
    finally:
        proc2.send_signal(signal.SIGTERM)
        stdout, stderr = proc2.communicate(timeout=30)
        assert proc2.returncode == 0, stderr


# ----------------------------------------------------------------------
# Request ids, tracing, /debug and SLO observability
# ----------------------------------------------------------------------
def _post_h(base: str, path: str, payload, headers: dict):
    merged = {"Content-Type": "application/json", **headers}
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers=merged, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _get_h(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, resp.read().decode(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), exc.headers


def _find_trace(base: str, rid: str, *, retries: int = 100):
    """Look a trace up by id, retrying the recorder-flush race.

    The recorder entry lands *after* the response bytes are flushed
    (the encode stage is part of the trace), so an immediate lookup
    can transiently 404.
    """
    for _ in range(retries):
        code, text, _ = _get_h(base, f"/debug/traces?id={rid}")
        if code == 200:
            return json.loads(text)["trace"]
        time.sleep(0.01)
    raise AssertionError(f"trace {rid!r} never appeared in the recorder")


def test_every_response_carries_request_id(server):
    _, base = server
    checks = [
        _post(base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]})[2],
        _post(base, "/query", {"vertex": "bad"})[2],          # 400
        _post(base, "/healthz", {})[2],                       # 405
        _get_h(base, "/nope")[2],                             # 404
        _get_h(base, "/healthz")[2],
        _get_h(base, "/stats")[2],
        _get_h(base, "/metrics")[2],
        _get_h(base, "/debug/traces")[2],
        _get_h(base, "/debug/slow")[2],
        _get_h(base, "/debug/errors")[2],
    ]
    for headers in checks:
        rid = headers.get("X-Request-Id")
        assert rid, "response missing X-Request-Id"
        assert len(rid) == 32 and int(rid, 16) >= 0  # generated W3C form


def test_request_id_echoed_and_in_error_bodies(server):
    _, base = server
    code, _, headers = _post_h(
        base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]},
        {"X-Request-Id": "client-req-7"},
    )
    assert (code, headers.get("X-Request-Id")) == (200, "client-req-7")
    # Error bodies carry the id too (success bodies stay unchanged).
    code, body, headers = _post_h(
        base, "/query", {"vertex": "bad"}, {"X-Request-Id": "client-err-8"}
    )
    assert code == 400
    assert headers.get("X-Request-Id") == "client-err-8"
    assert body["request_id"] == "client-err-8"
    # An invalid token is replaced with a generated id.
    _, _, headers = _post_h(
        base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]},
        {"X-Request-Id": "bad id with spaces"},
    )
    assert len(headers.get("X-Request-Id")) == 32


def test_traceparent_sets_the_request_id(server):
    _, base = server
    tid = "4bf92f3577b34da6a3ce929d0e0e4736"
    code, _, headers = _post_h(
        base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]},
        {"traceparent": f"00-{tid}-00f067aa0ba902b7-01",
         "X-Request-Id": "ignored-when-traceparent-present"},
    )
    assert (code, headers.get("X-Request-Id")) == (200, tid)
    trace = _find_trace(base, tid)
    assert trace["trace_id"] == tid


def test_debug_endpoints_schemas(server):
    _, base = server
    code, _, _ = _post_h(
        base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]},
        {"X-Request-Id": "debug-ok-1"},
    )
    assert code == 200
    code, _, _ = _post_h(
        base, "/query", {"vertex": "bad"}, {"X-Request-Id": "debug-err-1"}
    )
    assert code == 400
    entry = _find_trace(base, "debug-ok-1")
    assert entry["endpoint"] == "/query"
    assert entry["status"] == 200
    assert entry["duration_s"] > 0
    stages = entry["stages_s"]
    assert {"parse", "admit", "queue.wait", "exec", "encode"} <= set(stages)
    assert entry["trace"]["spans"]["name"] == "/query"
    # The overview listing.
    code, text, _ = _get_h(base, "/debug/traces")
    overview = json.loads(text)
    assert code == 200
    assert {"recent", "sampled", "stats"} <= set(overview)
    assert any(
        e["trace_id"] == "debug-ok-1" for e in overview["recent"]
    )
    assert overview["stats"]["recorded"] >= 2
    # Slowest traces, slowest first.
    code, text, _ = _get_h(base, "/debug/slow?n=5")
    slow = json.loads(text)["slowest"]
    assert code == 200 and 1 <= len(slow) <= 5
    durations = [e["duration_s"] for e in slow]
    assert durations == sorted(durations, reverse=True)
    # Errored requests include the 400 with its error string.
    code, text, _ = _get_h(base, "/debug/errors")
    errors = json.loads(text)["errors"]
    assert code == 200
    bad = next(e for e in errors if e["trace_id"] == "debug-err-1")
    assert bad["status"] == 400
    assert bad["error"]
    # Unknown id -> 404 with a JSON body.
    code, text, _ = _get_h(base, "/debug/traces?id=no-such-trace")
    assert code == 404
    assert "error" in json.loads(text)


def test_healthz_carries_slo_and_recorder_blocks(server):
    _, base = server
    code, _, _ = _post(base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]})
    assert code == 200
    code, text, _ = _get_h(base, "/healthz")
    health = json.loads(text)
    assert code == 200
    slo = health["slo"]
    assert {"/query", "/batch", "/write"} <= set(slo["endpoints"])
    report = slo["endpoints"]["/query"]
    for sli in ("latency", "availability"):
        assert set(report[sli]["burn_rates"]) == {"5m", "1h"}
        assert 0.0 <= report[sli]["budget_remaining"] <= 1.0
    assert report["fast_burn"] is False
    assert health["recorder"]["recorded"] >= 1
    # And the SLO gauges reach /metrics.
    code, text, _ = _get_h(base, "/metrics")
    types, _, samples = parse_exposition(text)
    for name in (
        "repro_slo_burn_rate",
        "repro_slo_error_budget_remaining",
        "repro_slo_fast_burn",
    ):
        assert types.get(name) == "gauge", f"{name} missing from /metrics"
    burn_labels = [
        labels for name, labels, _ in samples
        if name == "repro_slo_burn_rate" and labels.get("endpoint") == "/query"
    ]
    # Subset, not equality: gauge children persist in the process-global
    # registry, so other tests' monitors may have left extra windows.
    assert {
        ("latency", "5m"), ("latency", "1h"),
        ("availability", "5m"), ("availability", "1h"),
    } <= {(labels["sli"], labels["window"]) for labels in burn_labels}


def test_observability_can_be_disabled(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(
        database, recorder=False, slo=False, tracing=False
    )
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        code, _, headers = _post(
            base, "/query", {"vertex": 0, "region": [0, 0, 1, 1]}
        )
        # Requests still get ids; the debug surfaces are gone.
        assert code == 200 and headers.get("X-Request-Id")
        assert _get_h(base, "/debug/traces")[0] == 404
        assert _get_h(base, "/debug/slow")[0] == 404
        assert _get_h(base, "/debug/errors")[0] == 404
        code, text, _ = _get_h(base, "/healthz")
        health = json.loads(text)
        assert code == 200
        assert "slo" not in health and "recorder" not in health
    finally:
        server.drain(persist=False)


def test_concurrent_requests_keep_traces_apart(server, tiny_net):
    # The serving-side cross-talk regression: parallel requests with
    # distinct ids must each retain their own trace, attributed to the
    # right endpoint, with no foreign spans stitched in.
    _, base = server
    region = [0.0, 0.0, 1.0, 1.0]
    n = 12
    outcomes: dict[str, int] = {}

    def fire(index: int) -> None:
        rid = f"concurrent-{index:02d}"
        if index % 3 == 0:
            code, _, _ = _post_h(
                base, "/batch",
                {"queries": [[index, region]] * 4},
                {"X-Request-Id": rid},
            )
        else:
            code, _, _ = _post_h(
                base, "/query", {"vertex": index, "region": region},
                {"X-Request-Id": rid},
            )
        outcomes[rid] = code

    threads = [
        threading.Thread(target=fire, args=(i,)) for i in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert set(outcomes.values()) == {200}
    for index in range(n):
        rid = f"concurrent-{index:02d}"
        entry = _find_trace(base, rid)
        expected = "/batch" if index % 3 == 0 else "/query"
        assert entry["endpoint"] == expected, rid
        assert entry["trace"]["trace_id"] == rid
        assert entry["trace"]["spans"]["name"] == expected
