"""Shared pytest fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import fig1_graph, fig1_network  # noqa: E402

from repro.geosocial import condense_network  # noqa: E402


@pytest.fixture
def fig1():
    """The directed graph of the paper's Figure 1."""
    return fig1_graph()


@pytest.fixture
def fig1_net():
    """The geosocial network of the paper's Figure 1."""
    return fig1_network()


@pytest.fixture
def fig1_condensed():
    """The condensed Figure 1 network (already a DAG, so 1:1)."""
    return condense_network(fig1_network())


@pytest.fixture(scope="session")
def small_datasets():
    """Tiny instances of all four dataset profiles, generated once."""
    from repro.datasets import make_network

    return {
        name: make_network(name, scale=0.0005, seed=3)
        for name in ("foursquare", "gowalla", "weeplaces", "yelp")
    }
