"""Unit tests for repro.workloads."""

import random

import pytest

from helpers import fig1_network
from repro.datasets import make_network
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.system import GeosocialDatabase
from repro.workloads import (
    DEFAULT_DEGREE_BUCKETS,
    DEFAULT_EXTENTS,
    DEFAULT_SELECTIVITIES,
    MixedWorkload,
    QueryWorkload,
    replay_ops,
)


@pytest.fixture(scope="module")
def network():
    return make_network("gowalla", scale=0.001, seed=5)


@pytest.fixture(scope="module")
def workload(network):
    return QueryWorkload(network, seed=1)


def test_defaults_match_paper():
    assert DEFAULT_EXTENTS == (1.0, 2.0, 5.0, 10.0, 20.0)
    assert DEFAULT_SELECTIVITIES == (0.001, 0.01, 0.1, 1.0)
    assert len(DEFAULT_DEGREE_BUCKETS) == 5


def test_requires_spatial_vertices():
    net = GeosocialNetwork(DiGraph(2), [None, None])
    with pytest.raises(ValueError):
        QueryWorkload(net)


def test_invalid_center_mode(network):
    with pytest.raises(ValueError):
        QueryWorkload(network, center_mode="bermuda")


def test_region_extent_area(network, workload):
    rng = random.Random(0)
    space = network.space()
    for extent in DEFAULT_EXTENTS:
        region = workload.region_with_extent(extent, rng)
        assert region.area == pytest.approx(space.area * extent / 100, rel=1e-6)
        assert space.contains_rect(region)


def test_region_extent_validation(workload):
    rng = random.Random(0)
    with pytest.raises(ValueError):
        workload.region_with_extent(0, rng)
    with pytest.raises(ValueError):
        workload.region_with_extent(150, rng)


def test_region_selectivity_contains_target_fraction(network, workload):
    rng = random.Random(3)
    points = [network.point_of(v) for v in network.spatial_vertices()]
    for sel in (1.0, 5.0, 20.0):
        target = max(1, round(len(points) * sel / 100))
        region = workload.region_with_selectivity(sel, rng)
        count = sum(1 for p in points if region.contains_point(p))
        # generous tolerance: the search is approximate by design
        assert count >= 1
        assert count <= max(4 * target, target + 10)


def test_vertices_in_degree_bucket(network, workload):
    graph = network.graph
    for lo, hi in DEFAULT_DEGREE_BUCKETS:
        for v in workload.vertices_in_degree_bucket(lo, hi):
            assert lo <= graph.out_degree(v) <= hi


def test_sample_vertices_fallback_for_empty_bucket(workload, network):
    # absurd bucket: falls back to any vertex with out-degree >= 1
    vertices = workload.sample_vertices(10, (10**6, 10**7), random.Random(1))
    assert len(vertices) == 10
    for v in vertices:
        assert network.graph.out_degree(v) >= 1


def test_batches_are_reproducible(workload):
    a = workload.batch_by_extent(5.0, (1, 4), 20)
    b = workload.batch_by_extent(5.0, (1, 4), 20)
    assert a == b
    c = workload.batch_by_selectivity(0.1, (1, 4), 5)
    d = workload.batch_by_selectivity(0.1, (1, 4), 5)
    assert c == d


def test_batches_differ_across_configs(workload):
    a = workload.batch_by_extent(5.0, (1, 4), 10)
    b = workload.batch_by_extent(10.0, (1, 4), 10)
    assert a != b


def test_batch_queries_are_well_formed(workload, network):
    batch = workload.batch_by_extent(5.0, DEFAULT_DEGREE_BUCKETS[0], 15)
    assert len(batch) == 15
    space = network.space()
    for query in batch:
        assert 0 <= query.vertex < network.num_vertices
        assert space.intersects(query.region)


def test_venue_center_mode_regions_contain_points():
    net = fig1_network()
    workload = QueryWorkload(net, seed=0, center_mode="venue")
    rng = random.Random(2)
    region = workload.region_with_extent(5.0, rng)
    # centered on some venue: region must be inside the space
    assert net.space().intersects(region)


# ----------------------------------------------------------------------
# Mixed update/query workloads
# ----------------------------------------------------------------------
def test_mixed_workload_deterministic():
    def stream(seed):
        w = MixedWorkload(seed=seed, write_fraction=0.3)
        return w.bootstrap(20, 20, 40, 40) + w.ops(60)

    assert stream(7) == stream(7)
    assert stream(7) != stream(8)


def test_mixed_workload_replayable_and_equivalent():
    workload = MixedWorkload(seed=3, write_fraction=0.4, removal_fraction=0.1)
    ops = workload.bootstrap(25, 25, 60, 60) + workload.ops(80)
    overlay = GeosocialDatabase(refresh_threshold=16)
    rebuild = GeosocialDatabase(refresh_threshold=0)
    assert replay_ops(overlay, ops) == replay_ops(rebuild, ops)
    stats = MixedWorkload.describe(ops)
    assert stats.num_queries > 0
    assert stats.num_writes > 0
    assert stats.num_ops == len(ops)


def test_mixed_workload_validation():
    with pytest.raises(ValueError):
        MixedWorkload(write_fraction=1.5)
    with pytest.raises(ValueError):
        MixedWorkload(removal_fraction=-0.1)
    with pytest.raises(ValueError):
        MixedWorkload(extent_pct=0.0)
    with pytest.raises(ValueError):
        MixedWorkload().ops(5)  # not bootstrapped


def test_replay_rejects_unknown_ops():
    with pytest.raises(ValueError, match="unknown op"):
        replay_ops(GeosocialDatabase(), [("teleport", 1)])
