"""Property-based tests for the R-tree."""

from hypothesis import given, settings, strategies as st

from repro.spatial import LinearScanIndex, RTree

coordinate = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


@st.composite
def boxes2d(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return (x1, y1, x2, y2)


points2d = st.tuples(coordinate, coordinate)


@given(st.lists(points2d, max_size=80), boxes2d())
@settings(max_examples=60, deadline=None)
def test_bulk_loaded_point_query_matches_linear_scan(points, query):
    entries = [((x, y, x, y), i) for i, (x, y) in enumerate(points)]
    tree = RTree.bulk_load(entries, dims=2, capacity=4)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    assert sorted(tree.search_all(query)) == sorted(reference.search_all(query))


@given(st.lists(boxes2d(), max_size=50), boxes2d())
@settings(max_examples=60, deadline=None)
def test_inserted_box_query_matches_linear_scan(items, query):
    tree = RTree(dims=2, capacity=4)
    reference = LinearScanIndex(dims=2)
    for i, bounds in enumerate(items):
        tree.insert(bounds, i)
        reference.insert(bounds, i)
    assert sorted(tree.search_all(query)) == sorted(reference.search_all(query))


@given(st.lists(points2d, max_size=60))
@settings(max_examples=40, deadline=None)
def test_invariants_hold_after_inserts(points):
    tree = RTree(dims=2, capacity=4)
    for i, (x, y) in enumerate(points):
        tree.insert_point((x, y), i)
    tree.check_invariants()
    assert len(tree) == len(points)


@given(st.lists(points2d, min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_every_item_findable_by_its_own_bounds(points):
    entries = [((x, y, x, y), i) for i, (x, y) in enumerate(points)]
    tree = RTree.bulk_load(entries, dims=2, capacity=4)
    for (x, y), i in zip(points, range(len(points))):
        assert i in tree.search_all((x, y, x, y))


@given(st.lists(points2d, max_size=60), boxes2d())
@settings(max_examples=40, deadline=None)
def test_any_intersecting_consistent_with_search(points, query):
    entries = [((x, y, x, y), i) for i, (x, y) in enumerate(points)]
    tree = RTree.bulk_load(entries, dims=2, capacity=4)
    hit = tree.any_intersecting(query)
    results = tree.search_all(query)
    if results:
        assert hit in results
    else:
        assert hit is None


@given(st.lists(st.tuples(coordinate, coordinate, coordinate), max_size=60))
@settings(max_examples=30, deadline=None)
def test_3d_trees_work(points):
    entries = [((x, y, z, x, y, z), i) for i, (x, y, z) in enumerate(points)]
    tree = RTree.bulk_load(entries, dims=3, capacity=4)
    tree.check_invariants()
    assert tree.count_intersecting((-100, -100, -100, 100, 100, 100)) == len(points)


# A 3-D op is ("insert", x, y, z) or ("delete", index-into-live); deletes
# are drawn twice as often as inserts so runs shrink the tree all the way
# down through root collapses and orphan reinsertion.
ops3d = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), coordinate, coordinate, coordinate),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=500)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=500)),
    ),
    max_size=100,
)


@given(ops3d, st.sampled_from([2, 4, 5, 16]))
@settings(max_examples=50, deadline=None)
def test_3d_delete_heavy_churn_keeps_invariants(sequence, capacity):
    """Delete-heavy 3-D churn: invariants and contents after every op.

    Regression for the condense-tree path: the root must be normalized
    (no empty leaf left as ``_root``, no phantom node in ``stats()``)
    before orphan reinsertion, at every intermediate state.
    """
    # Bulk-load a seed so deletes immediately bite into multi-level trees.
    seed_entries = [
        ((i * 0.1, i * 0.07, i * 0.03, i * 0.1, i * 0.07, i * 0.03), -1 - i)
        for i in range(17)
    ]
    tree = RTree.bulk_load(seed_entries, dims=3, capacity=capacity)
    live = list(seed_entries)
    next_id = 0
    for op in sequence:
        if op[0] == "insert":
            bounds = (op[1], op[2], op[3], op[1], op[2], op[3])
            tree.insert(bounds, next_id)
            live.append((bounds, next_id))
            next_id += 1
        elif live:
            bounds, item = live.pop(op[1] % len(live))
            assert tree.delete(bounds, item) is True
        tree.check_invariants()
        stats = tree.stats()
        assert stats.num_items == len(live)
        assert (stats.num_leaves == 0) == (len(live) == 0)
    everything = (-100.0,) * 3 + (100.0,) * 3
    assert sorted(tree.search_all(everything)) == sorted(
        item for _, item in live
    )
