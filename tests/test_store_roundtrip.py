"""Differential tests of the snapshot store: save -> load must be exact.

For every RangeReach method, a context built in memory and a context
rebuilt from its persisted snapshot must answer identical queries — and
both must equal the index-free BFS oracle.  The snapshot must also be
*byte-stable*: re-saving a loaded snapshot reproduces identical part
checksums, so repeated save/load cycles can never drift.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from helpers import fig1_network, random_geosocial_network, random_region
from repro.core import RangeReachOracle, build_methods
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.pipeline import BuildContext
from repro.store import load_context, save_context

METHODS = ["spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev"]


def _saved_and_loaded(network, tmp_path):
    """Build all methods, persist, reload; return both method dicts."""
    context = BuildContext(network)
    cold = build_methods(METHODS, network, context=context)
    context.save(tmp_path / "snap")
    warm_context = BuildContext.load(tmp_path / "snap")
    warm = build_methods(METHODS, context=warm_context)
    return cold, warm, context, warm_context


def test_fig1_round_trip_parity(tmp_path):
    network = fig1_network()
    cold, warm, _, warm_context = _saved_and_loaded(network, tmp_path)
    oracle = RangeReachOracle(network)
    rng = random.Random(7)
    regions = [random_region(rng) for _ in range(20)]
    regions.append(Rect(3.5, 4.5, 6.0, 7.0))  # the paper's R
    for vertex in range(network.num_vertices):
        for region in regions:
            expected = oracle.query(vertex, region)
            for name in METHODS:
                assert cold[name].query(vertex, region) == expected
                assert warm[name].query(vertex, region) == expected


def test_warm_context_builds_nothing(tmp_path):
    network = fig1_network()
    _, _, _, warm_context = _saved_and_loaded(network, tmp_path)
    assert warm_context.labeling_builds() == []
    assert warm_context.miss_keys() == []
    stats = warm_context.stats()
    assert stats["misses"] == {}
    assert sum(stats["hits"].values()) > 0


def test_loaded_network_matches_original(tmp_path):
    network = random_geosocial_network(random.Random(3))
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    save_context(context, tmp_path / "snap")
    loaded = load_context(tmp_path / "snap").network
    assert loaded.name == network.name
    assert loaded.num_vertices == network.num_vertices
    assert list(loaded.graph.edges()) == list(network.graph.edges())
    assert loaded.points == network.points
    assert loaded.kinds == network.kinds


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_network_round_trip_parity(tmp_path, seed):
    rng = random.Random(seed)
    network = random_geosocial_network(rng, num_vertices=30, num_edges=70)
    cold, warm, _, _ = _saved_and_loaded(network, tmp_path)
    oracle = RangeReachOracle(network)
    query_rng = random.Random(seed + 100)
    for _ in range(60):
        vertex = query_rng.randrange(network.num_vertices)
        region = random_region(query_rng)
        expected = oracle.query(vertex, region)
        for name in METHODS:
            assert warm[name].query(vertex, region) == expected
            assert cold[name].query(vertex, region) == expected


def _part_checksums(directory):
    manifest = json.loads((directory / "manifest.json").read_text())
    return [
        (p["kind"], json.dumps(p["key"]), p["sha256"], p["bytes"])
        for p in manifest["parts"]
    ]


@pytest.mark.parametrize("seed", [11, 12])
def test_round_trip_is_byte_stable(tmp_path, seed):
    network = random_geosocial_network(random.Random(seed))
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    save_context(context, tmp_path / "first")
    loaded = load_context(tmp_path / "first")
    build_methods(METHODS, context=loaded)  # extra hits must not change bytes
    save_context(loaded, tmp_path / "second")
    assert _part_checksums(tmp_path / "first") == _part_checksums(
        tmp_path / "second"
    )


def test_resave_over_existing_snapshot_is_atomic_swap(tmp_path):
    network = fig1_network()
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    target = tmp_path / "snap"
    save_context(context, target)
    before = _part_checksums(target)
    save_context(context, target)  # overwrite in place
    assert _part_checksums(target) == before
    assert not (tmp_path / "snap.tmp").exists()
    assert not (tmp_path / "snap.old").exists()


def test_save_returns_summary(tmp_path):
    network = fig1_network()
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    summary = save_context(context, tmp_path / "snap")
    assert summary["parts"] == len(_part_checksums(tmp_path / "snap"))
    assert summary["bytes"] > 0
    assert summary["seconds"] >= 0.0


# ----------------------------------------------------------------------
# Hypothesis: arbitrary networks survive the round trip exactly
# ----------------------------------------------------------------------
coordinate = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def networks(draw, max_vertices=10):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = (
        draw(st.lists(st.sampled_from(pairs), unique=True, max_size=30))
        if pairs
        else []
    )
    graph = DiGraph.from_edges(n, edges)
    points = []
    for _ in range(n):
        if draw(st.booleans()):
            points.append(Point(draw(coordinate), draw(coordinate)))
        else:
            points.append(None)
    if not any(p is not None for p in points):
        points[0] = Point(draw(coordinate), draw(coordinate))
    return GeosocialNetwork(graph, points)


@st.composite
def regions(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


@given(network=networks(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_property_round_trip_matches_oracle(tmp_path_factory, network, data):
    tmp_path = tmp_path_factory.mktemp("snap")
    oracle = RangeReachOracle(network)
    context = BuildContext(network)
    build_methods(METHODS, network, context=context)
    save_context(context, tmp_path / "s")
    warm_context = load_context(tmp_path / "s")
    warm = build_methods(METHODS, context=warm_context)
    assert warm_context.labeling_builds() == []
    vertex = data.draw(
        st.integers(min_value=0, max_value=network.num_vertices - 1)
    )
    region = data.draw(regions())
    expected = oracle.query(vertex, region)
    for name in METHODS:
        assert warm[name].query(vertex, region) == expected
