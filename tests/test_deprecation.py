"""The shared deprecation funnel and the uniform region vocabulary.

``warn_deprecated`` warns once per call site however the interpreter's
filters are set; ``as_rect`` is the one coercion point that lets every
region-taking API accept a ``Rect`` or a plain 4-sequence.
"""

import warnings

import pytest

from repro.core import RangeReachOracle
from repro.core.deprecation import reset, warn_deprecated
from repro.geometry import Point, Rect, as_rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.system import GeosocialDatabase


@pytest.fixture(autouse=True)
def _fresh_seen_set():
    reset()
    yield
    reset()


# ----------------------------------------------------------------------
# warn_deprecated
# ----------------------------------------------------------------------
def test_warns_once_per_call_site():
    def hammer():
        return warn_deprecated("use shiny_new() instead")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fired = [hammer() for _ in range(5)]
    assert fired == [True, False, False, False, False]
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "shiny_new" in str(caught[0].message)


def test_distinct_call_sites_each_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_deprecated("old api", stacklevel=1)
        warn_deprecated("old api", stacklevel=1)  # different line: warns
    assert len(caught) == 2


def test_reset_forgets_seen_sites():
    def shim():
        return warn_deprecated("going away")

    def call_site():
        return shim()  # one fixed (file, line) for every invocation

    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        assert call_site() is True
        assert call_site() is False
        reset()
        assert call_site() is True


def test_warning_attributed_to_the_caller():
    def deprecated_shim():
        warn_deprecated("shim is deprecated")  # stacklevel=2 -> our caller

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        deprecated_shim()
    assert caught[0].filename == __file__


# ----------------------------------------------------------------------
# as_rect / uniform region acceptance
# ----------------------------------------------------------------------
def test_as_rect_passes_rect_through_unchanged():
    rect = Rect(0.0, 0.0, 1.0, 1.0)
    assert as_rect(rect) is rect


def test_as_rect_coerces_sequences():
    assert as_rect((0.0, 0.25, 1.0, 0.75)) == Rect(0.0, 0.25, 1.0, 0.75)
    assert as_rect([0, 0, 1, 1]) == Rect(0.0, 0.0, 1.0, 1.0)


def test_as_rect_rejects_junk():
    with pytest.raises(TypeError, match="region must be a Rect"):
        as_rect("0,0,1,1")
    with pytest.raises(TypeError, match="region must be a Rect"):
        as_rect((0.0, 0.0, 1.0))
    with pytest.raises(ValueError):
        as_rect((1.0, 0.0, 0.0, 1.0))  # degenerate, same as Rect(...)


def _two_vertex_db():
    db = GeosocialDatabase()
    user = db.add_user()
    venue = db.add_venue(0.5, 0.5)
    db.add_checkin(user, venue)
    return db, user


def test_database_accepts_tuple_regions_uniformly():
    db, user = _two_vertex_db()
    for region in (Rect(0, 0, 1, 1), (0, 0, 1, 1), [0, 0, 1, 1]):
        assert db.range_reach(user, region) is True
        assert db.count_reachable(user, region) == 1
        assert db.reachable_venues(user, region) == [1]
        assert db.reaches_at_least(user, region, 1) is True
    assert db.range_reach_many(
        [(user, (0, 0, 1, 1)), (user, Rect(0.6, 0.6, 1, 1))]
    ) == [True, False]


def test_oracle_accepts_tuple_regions():
    graph = DiGraph.from_edges(2, [(0, 1)])
    network = GeosocialNetwork(graph, [None, Point(0.5, 0.5)])
    oracle = RangeReachOracle(network)
    assert oracle.query(0, (0, 0, 1, 1)) is True
    assert oracle.witnesses(0, [0, 0, 1, 1]) == [1]
