"""Unit tests for repro.core.threedreach and threedreach_rev specifics."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import ThreeDReach, ThreeDReachRev
from repro.geometry import Rect
from repro.geosocial import condense_network
from repro.labeling import build_labeling, build_reversed_labeling


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def test_point_transformation_cardinality(condensed):
    # One 3-D point per spatial vertex (replicate mode on a DAG network).
    method = ThreeDReach(condensed)
    assert len(method.rtree) == 6
    assert method.rtree.dims == 3


def test_rev_segment_cardinality(condensed):
    # One segment per (spatial vertex, reversed label) pair.
    method = ThreeDReachRev(condensed)
    expected = sum(
        len(method.labeling.labels_of(condensed.super_of(FIG1_INDEX[n])))
        for n in "ehfgil"
    )
    assert len(method.rtree) == expected


def test_3d_points_sit_at_post_height(condensed):
    method = ThreeDReach(condensed)
    post = method.labeling.post
    for bounds, component in method.rtree.items():
        assert bounds[2] == bounds[5] == post[component]


def test_paper_example_42(condensed):
    # Example 4.2: the cuboid for L(a) = [1,10] contains vertex e's point;
    # none of the three cuboids of c contains a spatial vertex.
    method = ThreeDReach(condensed)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_paper_example_43(condensed):
    # Example 4.3: the single slab query of the line-based variant.
    method = ThreeDReachRev(condensed)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_accepts_prebuilt_labelings(condensed):
    fwd = build_labeling(condensed.dag)
    rev = build_reversed_labeling(condensed.dag)
    assert ThreeDReach(condensed, labeling=fwd).labeling is fwd
    assert ThreeDReachRev(condensed, labeling=rev).labeling is rev
    with pytest.warns(DeprecationWarning, match="labeling="):
        via_alias = ThreeDReachRev(condensed, reversed_labeling=rev)
    assert via_alias.labeling is rev


def test_invalid_scc_mode(condensed):
    with pytest.raises(ValueError):
        ThreeDReach(condensed, scc_mode="banana")
    with pytest.raises(ValueError):
        ThreeDReachRev(condensed, scc_mode="banana")


def test_names(condensed):
    assert ThreeDReach(condensed).name == "3dreach"
    assert ThreeDReach(condensed, scc_mode="mbr").name == "3dreach-mbr"
    assert ThreeDReachRev(condensed).name == "3dreach-rev"
    assert ThreeDReachRev(condensed, scc_mode="mbr").name == "3dreach-rev-mbr"


def test_query_outside_space(condensed):
    far = Rect(1000, 1000, 1001, 1001)
    assert ThreeDReach(condensed).query(FIG1_INDEX["a"], far) is False
    assert ThreeDReachRev(condensed).query(FIG1_INDEX["a"], far) is False


def test_rev_size_independent_of_scc_mode(condensed):
    # Segments and boxes occupy the same space (as the paper observes for
    # Boost's R-tree).
    replicate = ThreeDReachRev(condensed)
    mbr = ThreeDReachRev(condensed, scc_mode="mbr")
    assert replicate.size_bytes() == mbr.size_bytes()


def test_mbr_variant_costs_more_for_3dreach(condensed):
    assert (
        ThreeDReach(condensed, scc_mode="mbr").size_bytes()
        > ThreeDReach(condensed).size_bytes()
    )
