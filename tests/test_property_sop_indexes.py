"""Property-based tests for the SOP point indexes (quadtree, uniform grid)."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.spatial import LinearScanIndex, QuadTree, UniformGridIndex

UNIT = Rect(0, 0, 1, 1)

unit_coord = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
unit_points = st.lists(st.tuples(unit_coord, unit_coord), max_size=80)


@st.composite
def queries(draw):
    x1, x2 = sorted((draw(unit_coord), draw(unit_coord)))
    y1, y2 = sorted((draw(unit_coord), draw(unit_coord)))
    return (x1, y1, x2, y2)


def _entries(points):
    return [((x, y, x, y), i) for i, (x, y) in enumerate(points)]


@given(unit_points, queries())
@settings(max_examples=60, deadline=None)
def test_quadtree_matches_linear_scan(points, query):
    entries = _entries(points)
    tree = QuadTree.bulk_load(entries, UNIT, leaf_capacity=3, max_depth=10)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    assert sorted(tree.search_all(query)) == sorted(reference.search_all(query))


@given(unit_points, queries())
@settings(max_examples=60, deadline=None)
def test_uniform_grid_matches_linear_scan(points, query):
    entries = _entries(points)
    grid = UniformGridIndex.bulk_load(entries, UNIT, cells_per_side=5)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    assert sorted(grid.search_all(query)) == sorted(reference.search_all(query))


@given(unit_points)
@settings(max_examples=40, deadline=None)
def test_indexes_report_full_size(points):
    entries = _entries(points)
    tree = QuadTree.bulk_load(entries, UNIT, leaf_capacity=4)
    grid = UniformGridIndex.bulk_load(entries, UNIT)
    assert len(tree) == len(points)
    assert len(grid) == len(points)
    whole = (0.0, 0.0, 1.0, 1.0)
    assert tree.count_intersecting(whole) == len(points)
    assert grid.count_intersecting(whole) == len(points)
