"""Unit tests for repro.bench.ascii_chart."""

import pytest

from repro.bench.ascii_chart import render_series


def test_validation():
    with pytest.raises(ValueError):
        render_series("t", ["a"], {})
    with pytest.raises(ValueError):
        render_series("t", ["a", "b"], {"s": [1.0]})
    with pytest.raises(ValueError):
        render_series("t", ["a"], {"s": [1.0]}, height=1)


def test_title_and_legend_present():
    out = render_series("my chart", ["x1", "x2"], {"alpha": [1, 10], "beta": [5, 5]})
    lines = out.splitlines()
    assert lines[0] == "my chart"
    assert "o=alpha" in lines[-1]
    assert "x=beta" in lines[-1]


def test_extremes_hit_top_and_bottom_rows():
    out = render_series("t", ["a", "b"], {"s": [1.0, 1000.0]}, height=10)
    lines = out.splitlines()
    plot = [line.split("|", 1)[1] for line in lines[1:11]]
    assert "o" in plot[0]    # max lands on top row
    assert "o" in plot[-1]   # min lands on bottom row


def test_log_scale_ticks_monotonic():
    out = render_series("t", ["a"], {"s": [100.0]}, height=12)
    ticks = []
    for line in out.splitlines()[1:13]:
        head = line.split("|", 1)[0].replace("us", "").strip()
        if head:
            ticks.append(float(head.replace(",", "")))
    assert ticks == sorted(ticks, reverse=True)


def test_constant_series_renders():
    out = render_series("t", ["a", "b", "c"], {"s": [5, 5, 5]})
    assert out.count("o") >= 3


def test_overlap_marker():
    out = render_series("t", ["a"], {"s1": [7.0], "s2": [7.0]})
    assert "!" in out
    assert "(!=overlap)" in out


def test_linear_scale():
    out = render_series(
        "t", ["a", "b"], {"s": [0.0, 10.0]}, log_scale=False, height=5
    )
    lines = out.splitlines()
    assert "o" in lines[1]  # top row holds the max
    assert "o" in lines[5]


def test_deterministic():
    args = ("t", ["a", "b", "c"], {"m": [1, 50, 2500], "n": [3, 3, 3]})
    assert render_series(*args) == render_series(*args)


def test_many_series_cycle_markers():
    series = {f"s{i}": [float(i + 1)] for i in range(10)}
    out = render_series("t", ["x"], series)
    assert "#=s4" in out.splitlines()[-1]
